#include "builder/topologies.hpp"

#include <algorithm>
#include <vector>

#include "fifo/config.hpp"
#include "fifo/interface_sides.hpp"

namespace mts::builder {

namespace {

/// Twice the tighter of the two interface min-periods -- the same safety
/// margin the hand-written examples use.
sim::Time derived_period(unsigned capacity, unsigned width,
                         unsigned sync_depth) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  cfg.sync.depth = sync_depth;
  return 2 * std::max(fifo::SyncPutSide::min_period(cfg),
                      fifo::SyncGetSide::min_period(cfg));
}

/// Detuned domain period: every domain gets a distinct, mutually prime-ish
/// period so CDC crossings sweep through all phase relationships.
sim::Time detuned(sim::Time base, std::size_t index) {
  return base * (16 + 3 * index) / 16;
}

}  // namespace

Design make_mesh_noc(const MeshParams& p) {
  Design d("mesh" + std::to_string(p.cols) + "x" + std::to_string(p.rows));
  d.link_defaults().sync.depth = p.sync_depth;
  const sim::Time base =
      p.base_period != 0
          ? p.base_period
          : derived_period(p.link_capacity, p.width, p.sync_depth);
  const sim::Time settle = 4 * detuned(base, p.cols);

  // Domains: one per column (east-west links become MCRS crossings) or one
  // shared clock for the whole mesh.
  std::vector<DomainId> col_domain(p.cols);
  if (p.per_column_domains) {
    for (unsigned x = 0; x < p.cols; ++x) {
      col_domain[x] = d.domain("col" + std::to_string(x),
                               {detuned(base, x), settle, 0.5, 0});
    }
  } else {
    const DomainId only = d.domain("clk", {base, settle, 0.5, 0});
    for (unsigned x = 0; x < p.cols; ++x) col_domain[x] = only;
  }

  // Every router is a tagged destination; every source addresses all of
  // them (uniform random traffic).
  std::vector<unsigned> all_dests;
  for (unsigned y = 0; y < p.rows; ++y) {
    for (unsigned x = 0; x < p.cols; ++x) {
      all_dests.push_back(mesh_address(x, y));
    }
  }

  auto rname = [](unsigned x, unsigned y) {
    return "r" + std::to_string(x) + "_" + std::to_string(y);
  };

  std::vector<std::vector<NodeId>> router(p.cols,
                                          std::vector<NodeId>(p.rows));
  for (unsigned y = 0; y < p.rows; ++y) {
    for (unsigned x = 0; x < p.cols; ++x) {
      std::vector<std::string> ports{"l_in", "l_out"};
      if (y + 1 < p.rows) { ports.push_back("n_in"); ports.push_back("n_out"); }
      if (y > 0) { ports.push_back("s_in"); ports.push_back("s_out"); }
      if (x + 1 < p.cols) { ports.push_back("e_in"); ports.push_back("e_out"); }
      if (x > 0) { ports.push_back("w_in"); ports.push_back("w_out"); }
      router[x][y] = d.router(rname(x, y), col_domain[x], p.width,
                              {x, y, p.router_queue}, ports);
    }
  }

  // Local traffic endpoints.
  for (unsigned y = 0; y < p.rows; ++y) {
    for (unsigned x = 0; x < p.cols; ++x) {
      const std::string xy = std::to_string(x) + "_" + std::to_string(y);
      SourceAttrs sa;
      sa.rate = p.inject_rate;
      sa.tagged = true;
      sa.flow = y * p.cols + x;
      sa.dests = all_dests;
      const NodeId src = d.source(
          "src" + xy, Design::sync_out("out", col_domain[x], p.width), sa);
      SinkAttrs ka;
      ka.stall_rate = p.stall_rate;
      ka.tagged = true;
      const NodeId snk = d.sink(
          "snk" + xy, Design::sync_in("in", col_domain[x], p.width), ka);
      LinkOptions local;
      local.capacity = p.link_capacity;
      d.connect(src, "out", router[x][y], "l_in", local, "inj" + xy);
      d.connect(router[x][y], "l_out", snk, "in", local, "eje" + xy);
    }
  }

  // Mesh links. East-west crosses column domains (MCRS CDC when
  // per_column_domains); north-south stays inside one column (SRS chain).
  LinkOptions ew;
  ew.capacity = p.link_capacity;
  LinkOptions ns;
  ns.capacity = p.link_capacity;
  ns.latency_left = p.ns_latency;
  for (unsigned y = 0; y < p.rows; ++y) {
    for (unsigned x = 0; x < p.cols; ++x) {
      const std::string xy = std::to_string(x) + "_" + std::to_string(y);
      if (x + 1 < p.cols) {
        d.connect(router[x][y], "e_out", router[x + 1][y], "w_in", ew,
                  "e" + xy);
        d.connect(router[x + 1][y], "w_out", router[x][y], "e_in", ew,
                  "w" + xy);
      }
      if (y + 1 < p.rows) {
        d.connect(router[x][y], "n_out", router[x][y + 1], "s_in", ns,
                  "n" + xy);
        d.connect(router[x][y + 1], "s_out", router[x][y], "n_in", ns,
                  "s" + xy);
      }
    }
  }
  return d;
}

Design make_shared_bus(const BusParams& p) {
  Design d("bus" + std::to_string(p.producers) + "to" +
           std::to_string(p.consumers));
  d.link_defaults().sync.depth = p.sync_depth;
  const sim::Time base =
      p.base_period != 0
          ? p.base_period
          : derived_period(p.link_capacity, p.width, p.sync_depth);
  const std::size_t domains = 1 + p.producers + p.consumers;
  const sim::Time settle = 4 * detuned(base, domains);

  const DomainId bus_dom = d.domain("bus_clk", {base, settle, 0.5, 0});
  const NodeId bus = d.bus("bus", bus_dom, p.width,
                           {p.producers, p.consumers});

  std::vector<unsigned> dests;
  for (unsigned j = 0; j < p.consumers; ++j) dests.push_back(j);

  LinkOptions link;
  link.capacity = p.link_capacity;
  for (unsigned i = 0; i < p.producers; ++i) {
    const DomainId dom = d.domain("prod" + std::to_string(i),
                                  {detuned(base, 1 + i), settle, 0.5, 0});
    SourceAttrs sa;
    sa.rate = p.inject_rate;
    sa.tagged = true;
    sa.flow = i;
    sa.dests = dests;
    const NodeId src = d.source("p" + std::to_string(i),
                                Design::sync_out("out", dom, p.width), sa);
    d.connect(src, "out", bus, "in" + std::to_string(i), link,
              "feed" + std::to_string(i));
  }
  for (unsigned j = 0; j < p.consumers; ++j) {
    const DomainId dom =
        d.domain("cons" + std::to_string(j),
                 {detuned(base, 1 + p.producers + j), settle, 0.5, 0});
    SinkAttrs ka;
    ka.stall_rate = p.stall_rate;
    ka.tagged = true;
    const NodeId snk = d.sink("c" + std::to_string(j),
                              Design::sync_in("in", dom, p.width), ka);
    d.connect(bus, "out" + std::to_string(j), snk, "in", link,
              "drain" + std::to_string(j));
  }
  return d;
}

// --- campaign sweep axes -------------------------------------------------

namespace {
struct MeshCell {
  unsigned cols, rows, sync_depth;
};
constexpr MeshCell kMeshCells[] = {
    {2, 2, 2}, {3, 2, 2}, {2, 2, 3}, {3, 2, 3}};

struct BusCell {
  unsigned producers, sync_depth;
};
constexpr BusCell kBusCells[] = {{2, 2}, {3, 2}, {2, 3}, {3, 3}};
}  // namespace

std::size_t mesh_sweep_size() { return std::size(kMeshCells); }

MeshParams mesh_sweep_cell(std::size_t config) {
  const MeshCell& c = kMeshCells[config % std::size(kMeshCells)];
  MeshParams p;
  p.cols = c.cols;
  p.rows = c.rows;
  p.sync_depth = c.sync_depth;
  return p;
}

std::string mesh_sweep_label(std::size_t config) {
  const MeshCell& c = kMeshCells[config % std::size(kMeshCells)];
  return "mesh" + std::to_string(c.cols) + "x" + std::to_string(c.rows) +
         "-sync" + std::to_string(c.sync_depth);
}

std::size_t bus_sweep_size() { return std::size(kBusCells); }

BusParams bus_sweep_cell(std::size_t config) {
  const BusCell& c = kBusCells[config % std::size(kBusCells)];
  BusParams p;
  p.producers = c.producers;
  p.sync_depth = c.sync_depth;
  return p;
}

std::string bus_sweep_label(std::size_t config) {
  const BusCell& c = kBusCells[config % std::size(kBusCells)];
  return "bus" + std::to_string(c.producers) + "p-sync" +
         std::to_string(c.sync_depth);
}

}  // namespace mts::builder
