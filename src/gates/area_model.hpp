// Gate-equivalent area model.
//
// The paper's Related Work argues the Intel mixed-clock FIFO [9] pays
// "significantly greater area overhead in implementing the
// synchronization: while our design has only one synchronizer on each of
// the two global detectors (full and empty), the Intel design has two
// synchronizers per cell". This model makes such comparisons quantitative:
// every primitive gets a cost in gate equivalents (GE, the classic
// 4-transistor NAND2 unit), and each FIFO sums its bill of materials.
#pragma once

namespace mts::gates {

struct AreaModel {
  // Combinational primitives (gate equivalents).
  double ge_per_gate_input = 0.5;  ///< n-input simple gate ~ n/2 GE
  double gate_base_ge = 0.5;
  double celement_base_ge = 1.5;
  double ge_per_celement_input = 1.0;

  // Storage.
  double sr_latch_ge = 2.0;
  double dlatch_ge = 3.0;
  double flop_ge = 6.0;          ///< edge-triggered DFF
  double sync_latch_ge = 8.0;    ///< metastability-hardened synchronizer latch
  double tristate_driver_ge = 1.5;
  double buffer_ge = 1.0;

  double gate(unsigned fanin) const {
    return gate_base_ge + ge_per_gate_input * fanin;
  }
  double celement(unsigned fanin) const {
    return celement_base_ge + ge_per_celement_input * fanin;
  }
};

}  // namespace mts::gates
