#include "sim/watchdog.hpp"

#include <utility>

#include "sim/kernel_stats.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

namespace mts::sim {

void Watchdog::watch(std::string site, std::function<std::uint64_t()> in_flight,
                     std::function<std::uint64_t()> progress) {
  Probe p;
  p.site = std::move(site);
  p.in_flight = std::move(in_flight);
  p.progress = std::move(progress);
  if (p.progress) p.last_progress = p.progress();
  probes_.push_back(std::move(p));
}

void Watchdog::arm(Simulation& sim) {
  sched_ = &sim.sched();
  sched_->set_watchdog(this);
  start_ = std::chrono::steady_clock::now();
  last_progress_time_ = sim.now();
  events_since_poll_ = 0;
}

void Watchdog::disarm(Simulation& sim) { sim.sched().set_watchdog(nullptr); }

std::string Watchdog::stuck_sites() const {
  std::string s;
  for (const Probe& p : probes_) {
    if (!p.in_flight) continue;
    const std::uint64_t n = p.in_flight();
    if (n == 0) continue;
    if (!s.empty()) s += ", ";
    s += p.site + " (" + std::to_string(n) + " in flight)";
  }
  return s.empty() ? std::string("none identified") : s;
}

std::string Watchdog::kernel_suffix() const {
  if (sched_ == nullptr) return "";
  const KernelStats ks = sched_->stats();
  return "; kernel: " + std::to_string(ks.events_executed) +
         " events executed, peak queue depth " +
         std::to_string(ks.peak_queue_depth);
}

void Watchdog::poll(Time now) {
  ++polls_;
  if (cfg_.wall_deadline_sec > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (elapsed > cfg_.wall_deadline_sec) {
      throw DeadlineError(
          "wall-clock deadline: run exceeded " +
          std::to_string(cfg_.wall_deadline_sec) + "s (elapsed " +
          std::to_string(elapsed) + "s) at t=" + format_time(now) +
          "; in-flight sites: " + stuck_sites() + kernel_suffix());
    }
  }
  if (cfg_.progress_window == 0 || probes_.empty()) return;

  bool moved = false;
  std::uint64_t in_flight = 0;
  for (Probe& p : probes_) {
    if (p.progress) {
      const std::uint64_t v = p.progress();
      if (v != p.last_progress) {
        p.last_progress = v;
        moved = true;
      }
    }
    if (p.in_flight) in_flight += p.in_flight();
  }
  if (moved) {
    last_progress_time_ = now;
    return;
  }
  if (in_flight > 0 && now - last_progress_time_ >= cfg_.progress_window) {
    throw LivelockError(
        "livelock: events executing but no token movement for " +
        format_time(now - last_progress_time_) + " (window " +
        format_time(cfg_.progress_window) + ") at t=" + format_time(now) +
        "; stuck sites: " + stuck_sites() + kernel_suffix());
  }
}

void Watchdog::on_drain(Time now) {
  std::uint64_t in_flight = 0;
  for (const Probe& p : probes_) {
    if (p.in_flight) in_flight += p.in_flight();
  }
  if (in_flight == 0) return;
  throw DeadlockError("deadlock: event queue drained at t=" +
                      format_time(now) + " with " +
                      std::to_string(in_flight) +
                      " transaction(s) in flight; stuck sites: " +
                      stuck_sites() + kernel_suffix());
}

}  // namespace mts::sim
