#include "fifo/sync_async_fifo.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "sync/clock.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

FifoConfig small_cfg(unsigned capacity = 4, unsigned width = 8) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

struct Harness {
  sim::Simulation sim{1};
  FifoConfig cfg;
  Time put_p;
  sync::Clock clk_put;
  SyncAsyncFifo dut;
  bfm::Scoreboard sb{sim, "sb"};
  bfm::PutMonitor put_mon;

  explicit Harness(const FifoConfig& c)
      : cfg(c),
        put_p(2 * SyncPutSide::min_period(c)),
        clk_put(sim, "clk_put", {put_p, 4 * put_p, 0.5, 0}),
        dut(sim, "dut", c, clk_put.out()),
        put_mon(sim, clk_put.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                sb) {}

  Time start() const { return 4 * put_p; }
};

TEST(SyncAsyncFifo, StartsEmpty) {
  Harness h(small_cfg());
  h.sim.run_until(h.start() + 4 * h.put_p);
  EXPECT_EQ(h.dut.occupancy(), 0u);
  EXPECT_FALSE(h.dut.full().read());
  EXPECT_FALSE(h.dut.get_ack().read());
}

TEST(SyncAsyncFifo, SyncPutAsyncGetRoundTrip) {
  Harness h(small_cfg());
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::AsyncGetDriver get(h.sim, "get", h.dut.get_req(), h.dut.get_ack(),
                          h.dut.get_data(), h.cfg.dm, 0, &h.sb);
  h.sim.run_until(h.start() + 300 * h.put_p);
  EXPECT_GT(get.completed(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(SyncAsyncFifo, AckWithheldWhenEmpty) {
  Harness h(small_cfg());
  bfm::AsyncGetDriver get(h.sim, "get", h.dut.get_req(), h.dut.get_ack(),
                          h.dut.get_data(), h.cfg.dm, 0, &h.sb);
  h.sim.run_until(h.start() + 20 * h.put_p);
  // No data ever enqueued: the receiver's request hangs unacknowledged.
  EXPECT_EQ(get.completed(), 0u);
  EXPECT_TRUE(h.dut.get_req().read());
  EXPECT_FALSE(h.dut.get_ack().read());

  // A put arrives: the pending get completes.
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  h.sim.run_until(h.start() + 40 * h.put_p);
  EXPECT_GT(get.completed(), 0u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(SyncAsyncFifo, FullStallsTheSynchronousSender) {
  Harness h(small_cfg(4));
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  h.sim.run_until(h.start() + 40 * h.put_p);
  EXPECT_TRUE(h.dut.full().read());
  EXPECT_EQ(h.dut.occupancy(), 4u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
}

TEST(SyncAsyncFifo, SlowReaderBackpressure) {
  Harness h(small_cfg(4));
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::AsyncGetDriver get(h.sim, "get", h.dut.get_req(), h.dut.get_ack(),
                          h.dut.get_data(), h.cfg.dm, 6 * h.put_p, &h.sb);
  h.sim.run_until(h.start() + 400 * h.put_p);
  EXPECT_GT(get.completed(), 30u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(SyncAsyncFifo, RelayStationVariantRejected) {
  sim::Simulation sim;
  sync::Clock clk(sim, "clk", {1000, 0, 0.5, 0});
  FifoConfig cfg = small_cfg();
  cfg.controller = ControllerKind::kRelayStation;
  EXPECT_THROW(SyncAsyncFifo(sim, "f", cfg, clk.out()), ConfigError);
}

}  // namespace
}  // namespace mts::fifo
