#include "gates/combinational.hpp"

#include <algorithm>
#include <utility>

#include "sim/error.hpp"

namespace mts::gates {

Gate::Gate(sim::Simulation& sim, std::string name, std::vector<sim::Wire*> inputs,
           sim::Wire& out, Func fn, Time delay)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      out_(out),
      fn_(std::move(fn)),
      delay_(delay) {
  MTS_ASSERT(!inputs_.empty(), "gate '" + name_ + "' has no inputs");
  for (sim::Wire* in : inputs_) {
    MTS_ASSERT(in != nullptr, "gate '" + name_ + "' has a null input");
    in->on_change([this](bool, bool) { evaluate(); });
  }
  sim.sched().after(0, [this] { evaluate(); });
}

void Gate::evaluate() {
  std::vector<bool> values;
  values.reserve(inputs_.size());
  for (const sim::Wire* in : inputs_) values.push_back(in->read());
  out_.write(fn_(values), delay_, sim::DelayKind::kInertial);
}

Gate::Func gate_func(GateOp op) {
  switch (op) {
    case GateOp::kNot:
      return [](const std::vector<bool>& v) { return !v[0]; };
    case GateOp::kBuf:
      return [](const std::vector<bool>& v) { return v[0]; };
    case GateOp::kAnd:
      return [](const std::vector<bool>& v) {
        for (bool b : v)
          if (!b) return false;
        return true;
      };
    case GateOp::kOr:
      return [](const std::vector<bool>& v) {
        for (bool b : v)
          if (b) return true;
        return false;
      };
    case GateOp::kNand:
      return [](const std::vector<bool>& v) {
        for (bool b : v)
          if (!b) return true;
        return false;
      };
    case GateOp::kNor:
      return [](const std::vector<bool>& v) {
        for (bool b : v)
          if (b) return false;
        return true;
      };
    case GateOp::kXor:
      return [](const std::vector<bool>& v) {
        bool acc = false;
        for (bool b : v) acc = acc != b;
        return acc;
      };
    case GateOp::kAndNotLast:
      return [](const std::vector<bool>& v) {
        for (std::size_t i = 0; i + 1 < v.size(); ++i)
          if (!v[i]) return false;
        return !v.back();
      };
    case GateOp::kOrNotLast:
      return [](const std::vector<bool>& v) {
        for (std::size_t i = 0; i + 1 < v.size(); ++i)
          if (v[i]) return true;
        return !v.back();
      };
  }
  throw ConfigError("unknown GateOp");
}

Time gate_delay(GateOp op, std::size_t fanin, const DelayModel& dm, unsigned fanout) {
  // Inverting inputs (kAndNotLast/kOrNotLast) cost one extra input's slope.
  unsigned effective = static_cast<unsigned>(fanin);
  if (op == GateOp::kAndNotLast || op == GateOp::kOrNotLast) ++effective;
  return dm.gate(effective, fanout);
}

sim::Wire& make_gate(Netlist& nl, const std::string& name, GateOp op,
                     std::vector<sim::Wire*> inputs, const DelayModel& dm,
                     unsigned fanout) {
  sim::Wire& out = nl.wire(name);
  const Time delay = gate_delay(op, inputs.size(), dm, fanout);
  gate_into(nl, name, op, std::move(inputs), out, delay);
  return out;
}

Gate& gate_into(Netlist& nl, const std::string& name, GateOp op,
                std::vector<sim::Wire*> inputs, sim::Wire& out, Time delay) {
  return nl.add<Gate>(nl.sim(), nl.qualified(name), std::move(inputs), out,
                      gate_func(op), delay);
}

sim::Wire& make_delay(Netlist& nl, const std::string& name, sim::Wire& in, Time delay) {
  sim::Wire& out = nl.wire(name);
  nl.add<Gate>(nl.sim(), nl.qualified(name), std::vector<sim::Wire*>{&in}, out,
               gate_func(GateOp::kBuf), delay);
  return out;
}

namespace {

sim::Wire& make_tree(Netlist& nl, const std::string& name, GateOp op,
                     std::vector<sim::Wire*> inputs, const DelayModel& dm,
                     unsigned arity) {
  MTS_ASSERT(!inputs.empty(), "tree '" + name + "' has no inputs");
  MTS_ASSERT(arity >= 2, "tree '" + name + "' needs arity >= 2");
  unsigned level = 0;
  while (inputs.size() > 1) {
    std::vector<sim::Wire*> next;
    next.reserve((inputs.size() + arity - 1) / arity);
    for (std::size_t i = 0; i < inputs.size(); i += arity) {
      const std::size_t group = std::min<std::size_t>(arity, inputs.size() - i);
      if (group == 1) {
        next.push_back(inputs[i]);  // leftover passes through
        continue;
      }
      std::vector<sim::Wire*> node_inputs(inputs.begin() + static_cast<std::ptrdiff_t>(i),
                                          inputs.begin() + static_cast<std::ptrdiff_t>(i + group));
      const std::string node =
          name + ".l" + std::to_string(level) + "n" + std::to_string(i / arity);
      next.push_back(&make_gate(nl, node, op, std::move(node_inputs), dm));
    }
    inputs = std::move(next);
    ++level;
  }
  if (level == 0) {
    // Single input: still isolate through a buffer so the tree always owns
    // its root wire (callers may attach further logic or rename it).
    return make_delay(nl, name + ".root", *inputs[0], dm.gate(1));
  }
  return *inputs[0];
}

}  // namespace

unsigned tree_depth(unsigned leaves, unsigned arity) {
  unsigned depth = 0;
  unsigned reach = 1;
  while (reach < leaves) {
    reach *= arity;
    ++depth;
  }
  return depth;
}

sim::Wire& make_or_tree(Netlist& nl, const std::string& name,
                        std::vector<sim::Wire*> inputs, const DelayModel& dm,
                        unsigned arity) {
  return make_tree(nl, name, GateOp::kOr, std::move(inputs), dm, arity);
}

sim::Wire& make_and_tree(Netlist& nl, const std::string& name,
                         std::vector<sim::Wire*> inputs, const DelayModel& dm,
                         unsigned arity) {
  return make_tree(nl, name, GateOp::kAnd, std::move(inputs), dm, arity);
}

WordMux::WordMux(sim::Simulation& sim, std::string name, sim::Wire& sel,
                 sim::Word& a, sim::Word& b, sim::Word& out, Time delay)
    : sel_(sel), a_(a), b_(b), out_(out), delay_(delay) {
  (void)name;
  sel_.on_change([this](bool, bool) { evaluate(); });
  a_.on_change([this](std::uint64_t, std::uint64_t) { evaluate(); });
  b_.on_change([this](std::uint64_t, std::uint64_t) { evaluate(); });
  sim.sched().after(0, [this] { evaluate(); });
}

void WordMux::evaluate() {
  out_.write(sel_.read() ? a_.read() : b_.read(), delay_,
             sim::DelayKind::kInertial);
}

WordBuf::WordBuf(sim::Simulation& sim, std::string name, sim::Word& in,
                 sim::Word& out, Time delay)
    : in_(in), out_(out), delay_(delay) {
  (void)name;
  in_.on_change([this](std::uint64_t, std::uint64_t now) {
    out_.write(now, delay_, sim::DelayKind::kInertial);
  });
  sim.sched().after(0, [this] {
    out_.write(in_.read(), delay_, sim::DelayKind::kInertial);
  });
}

}  // namespace mts::gates
