# Empty compiler generated dependencies file for bench_detector_ablation.
# This may be replaced when dependencies are built.
