// Lossless JSON snapshots of the campaign fold inputs.
//
// A campaignd worker executes a run and ships its outputs -- RunResult,
// per-run Report, the body's registry delta, the workload's coverage delta
// and the sampled timeline -- to the coordinator, which folds them with the
// same merge() machinery the in-process engine uses. The checkpoint file
// stores the identical records. Both therefore need EXACT round-trips: a
// restored snapshot must merge and re-render byte-identically to the
// original object, which is what makes a resumed or multi-process campaign
// byte-identical to the sequential in-process run.
//
// These snapshots are deliberately separate from the repo's human-facing
// to_json() emitters: those are summaries (sparse histogram buckets, no
// exact sum, default float precision) and are NOT invertible. Snapshot
// doubles travel as %.17g (exact for binary64); uint64 seeds travel as
// integral tokens (json.hpp keeps them out of double entirely).
//
// Every from_* throws json::ProtocolError on malformed input -- snapshot
// consumers (wire handler, checkpoint loader) reject rather than guess.
#pragma once

#include <string>

#include "campaignd/json.hpp"
#include "metrics/coverage.hpp"
#include "metrics/registry.hpp"
#include "metrics/timeseries.hpp"
#include "sim/campaign.hpp"
#include "sim/report.hpp"

namespace mts::campaignd {

// -- sim::Report ------------------------------------------------------------

json::Value report_to_json(const sim::Report& r);
/// Replaces `out`'s recorded state (Report::restore); the entry cap and
/// metrics binding are untouched.
void report_from_json(const json::Value& v, sim::Report& out);

// -- metrics::Registry ------------------------------------------------------

json::Value registry_to_json(const metrics::Registry& r);
/// Restores into `out` (merge-or-create per metric): counters add their
/// snapshot value onto a fresh registry's zeros, gauges set, histograms are
/// created with the snapshot's exact bucket layout and restored. Call on a
/// fresh (or cleared) registry for an exact copy.
void registry_from_json(const json::Value& v, metrics::Registry& out);

// -- metrics::Coverage ------------------------------------------------------

json::Value coverage_to_json(const metrics::Coverage& c);
/// Defines and hits `out`'s bins to mirror the snapshot (zero-hit bins stay
/// declared-but-missed). Coverage is non-copyable; call on a fresh object.
void coverage_from_json(const json::Value& v, metrics::Coverage& out);

// -- metrics::TimeSeriesStore -----------------------------------------------

json::Value timeline_to_json(const metrics::TimeSeriesStore& ts);
void timeline_from_json(const json::Value& v, metrics::TimeSeriesStore& out);

// -- sim::RunResult ---------------------------------------------------------

json::Value run_result_to_json(const sim::RunResult& r);
sim::RunResult run_result_from_json(const json::Value& v);

// -- sim::CampaignOptions (job shipping; process-local knobs excluded) ------

/// Serializes the run-visible options: seeds, retry/deadline/violation
/// knobs, telemetry and SLO configuration, artifact directories. The
/// process-local members (workers, progress sink, health cadence) do not
/// transit -- each process owns its own.
json::Value options_to_json(const sim::CampaignOptions& opt);
sim::CampaignOptions options_from_json(const json::Value& v);

// -- run records (wire run_done payload == checkpoint entry) ----------------

/// Packs one completed run's snapshots into the canonical record the
/// worker ships and the checkpoint stores: {"result", "report",
/// "registry", "coverage"?, "timeline"?}. `coverage` may be nullptr; the
/// timeline is included only when non-empty.
json::Value make_run_record(const sim::RunResult& result,
                            const sim::Report& report,
                            const metrics::Registry& registry,
                            const metrics::Coverage* coverage,
                            const metrics::TimeSeriesStore& timeline);

/// FNV-1a/64 of a canonical dump, as 16 hex digits: the checkpoint header's
/// job-compatibility digest (resuming under a different matrix, seed or
/// option set must be rejected, not silently folded).
std::string job_digest(std::size_t configs, std::size_t reps,
                       const sim::CampaignOptions& opt,
                       const std::string& workload,
                       const std::string& params_json);

}  // namespace mts::campaignd
