#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sync/clock.hpp"

namespace mts::metrics {
namespace {

TEST(OccupancySampler, CountsSamplesAndLevels) {
  sim::Simulation sim;
  sync::Clock clk(sim, "clk", {1000, 500, 0.5, 0});
  unsigned level = 0;
  OccupancySampler sampler(sim, clk.out(), 4, [&level] { return level; });

  // Levels 0,1,2,2 across four edges.
  sim.sched().at(600, [&] { level = 1; });
  sim.sched().at(1600, [&] { level = 2; });
  sim.run_until(3600);  // edges at 500, 1500, 2500, 3500

  EXPECT_EQ(sampler.samples(), 4u);
  EXPECT_EQ(sampler.histogram()[0], 1u);
  EXPECT_EQ(sampler.histogram()[1], 1u);
  EXPECT_EQ(sampler.histogram()[2], 2u);
  EXPECT_EQ(sampler.max_seen(), 2u);
  EXPECT_DOUBLE_EQ(sampler.mean(), (0 + 1 + 2 + 2) / 4.0);
  EXPECT_DOUBLE_EQ(sampler.fraction_at(2), 0.5);
  EXPECT_DOUBLE_EQ(sampler.fraction_at(4), 0.0);
}

TEST(OccupancySampler, EmptyIsZero) {
  sim::Simulation sim;
  sync::Clock clk(sim, "clk", {1000, 500, 0.5, 0});
  OccupancySampler sampler(sim, clk.out(), 4, [] { return 0u; });
  EXPECT_DOUBLE_EQ(sampler.mean(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.fraction_at(0), 0.0);
}

TEST(OccupancySampler, TracksARealFifo) {
  sim::Simulation sim(1);
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  const sim::Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const sim::Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  OccupancySampler sampler(sim, cg.out(), cfg.capacity,
                           [&dut] { return dut.occupancy(); });
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  sim.run_until(4 * pp + 300 * pp);

  EXPECT_GT(sampler.samples(), 100u);
  EXPECT_GT(sampler.mean(), 0.0);
  EXPECT_LE(sampler.max_seen(), cfg.capacity);
  double total = 0;
  for (unsigned lvl = 0; lvl <= cfg.capacity; ++lvl) {
    total += sampler.fraction_at(lvl);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace mts::metrics
