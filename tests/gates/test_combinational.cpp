#include "gates/combinational.hpp"

#include <gtest/gtest.h>

#include "gates/netlist.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {
namespace {

using sim::Simulation;
using sim::Wire;

struct Fixture {
  Simulation sim;
  Netlist nl{sim, "t"};
  DelayModel dm = DelayModel::hp06();
};

TEST(GateFunc, TruthTables) {
  auto v = [](std::initializer_list<bool> bits) { return std::vector<bool>(bits); };
  EXPECT_TRUE(gate_func(GateOp::kNot)(v({false})));
  EXPECT_FALSE(gate_func(GateOp::kNot)(v({true})));
  EXPECT_TRUE(gate_func(GateOp::kBuf)(v({true})));
  EXPECT_TRUE(gate_func(GateOp::kAnd)(v({true, true, true})));
  EXPECT_FALSE(gate_func(GateOp::kAnd)(v({true, false, true})));
  EXPECT_TRUE(gate_func(GateOp::kOr)(v({false, true})));
  EXPECT_FALSE(gate_func(GateOp::kOr)(v({false, false})));
  EXPECT_TRUE(gate_func(GateOp::kNand)(v({true, false})));
  EXPECT_FALSE(gate_func(GateOp::kNand)(v({true, true})));
  EXPECT_TRUE(gate_func(GateOp::kNor)(v({false, false})));
  EXPECT_FALSE(gate_func(GateOp::kNor)(v({true, false})));
  EXPECT_TRUE(gate_func(GateOp::kXor)(v({true, false, false})));
  EXPECT_FALSE(gate_func(GateOp::kXor)(v({true, true})));
  // a & b & !c
  EXPECT_TRUE(gate_func(GateOp::kAndNotLast)(v({true, true, false})));
  EXPECT_FALSE(gate_func(GateOp::kAndNotLast)(v({true, true, true})));
  // a | b | !c
  EXPECT_TRUE(gate_func(GateOp::kOrNotLast)(v({false, false, false})));
  EXPECT_FALSE(gate_func(GateOp::kOrNotLast)(v({false, false, true})));
}

TEST(Gate, EvaluatesAfterDelay) {
  Fixture f;
  Wire& a = f.nl.wire("a");
  Wire& b = f.nl.wire("b");
  Wire& out = make_gate(f.nl, "and", GateOp::kAnd, {&a, &b}, f.dm);
  f.sim.run_until(1000);  // settle initial evaluation
  EXPECT_FALSE(out.read());

  a.set(true);
  b.set(true);
  const sim::Time d = f.dm.gate(2);
  f.sim.run_until(1000 + d - 1);
  EXPECT_FALSE(out.read());
  f.sim.run_until(1000 + d);
  EXPECT_TRUE(out.read());
}

TEST(Gate, InitialEvaluationPropagatesInitialInputs) {
  Fixture f;
  Wire& a = f.nl.wire("a", true);
  Wire& out = make_gate(f.nl, "inv", GateOp::kNot, {&a}, f.dm);
  EXPECT_FALSE(out.read());  // before settling
  f.sim.run_until(1000);
  EXPECT_FALSE(out.read());
  a.set(false);
  f.sim.run_until(2000);
  EXPECT_TRUE(out.read());
}

TEST(Gate, InertialFiltersGlitch) {
  Fixture f;
  Wire& a = f.nl.wire("a");
  Wire& out = make_gate(f.nl, "buf", GateOp::kBuf, {&a}, f.dm);
  f.sim.run_until(1000);
  int changes = 0;
  out.on_change([&](bool, bool) { ++changes; });
  // Pulse much shorter than the gate delay: filtered.
  f.sim.sched().at(2000, [&] { a.set(true); });
  f.sim.sched().at(2010, [&] { a.set(false); });
  f.sim.run();
  EXPECT_EQ(changes, 0);
}

TEST(Gate, NoInputsRejected) {
  Fixture f;
  Wire& out = f.nl.wire("o");
  EXPECT_THROW(f.nl.add<Gate>(f.sim, "bad", std::vector<Wire*>{}, out,
                              gate_func(GateOp::kAnd), 10),
               AssertionError);
}

TEST(OrTree, WideOrComputesAnyAndScalesDepth) {
  Fixture f;
  std::vector<Wire*> leaves;
  for (int i = 0; i < 16; ++i) leaves.push_back(&f.nl.wire("l" + std::to_string(i)));
  Wire& root = make_or_tree(f.nl, "or16", leaves, f.dm);
  f.sim.run_until(5000);
  EXPECT_FALSE(root.read());
  leaves[11]->set(true);
  f.sim.run_until(10000);
  EXPECT_TRUE(root.read());
  leaves[11]->set(false);
  f.sim.run_until(15000);
  EXPECT_FALSE(root.read());
}

TEST(AndTree, SingleInputActsAsBuffer) {
  Fixture f;
  Wire& a = f.nl.wire("a");
  Wire& root = make_and_tree(f.nl, "and1", {&a}, f.dm);
  f.sim.run_until(1000);
  a.set(true);
  f.sim.run_until(2000);
  EXPECT_TRUE(root.read());
}

TEST(AndTree, OddInputCount) {
  Fixture f;
  std::vector<Wire*> leaves;
  for (int i = 0; i < 5; ++i)
    leaves.push_back(&f.nl.wire("l" + std::to_string(i), true));
  Wire& root = make_and_tree(f.nl, "and5", leaves, f.dm);
  f.sim.run_until(5000);
  EXPECT_TRUE(root.read());
  leaves[4]->set(false);
  f.sim.run_until(10000);
  EXPECT_FALSE(root.read());
}

TEST(WordBuf, ForwardsWordsWithDelay) {
  Fixture f;
  sim::Word& in = f.nl.word("in", 3);
  sim::Word& out = f.nl.word("out");
  f.nl.add<WordBuf>(f.sim, "wb", in, out, 50);
  f.sim.run_until(100);
  EXPECT_EQ(out.read(), 3u);
  in.set(99);
  f.sim.run_until(149);
  EXPECT_EQ(out.read(), 3u);
  f.sim.run_until(200);
  EXPECT_EQ(out.read(), 99u);
}

TEST(MakeDelay, PureDelayLine) {
  Fixture f;
  Wire& a = f.nl.wire("a");
  Wire& out = make_delay(f.nl, "d", a, 123);
  f.sim.run_until(500);
  a.set(true);
  f.sim.run_until(622);
  EXPECT_FALSE(out.read());
  f.sim.run_until(623);
  EXPECT_TRUE(out.read());
}

}  // namespace
}  // namespace mts::gates
