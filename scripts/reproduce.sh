#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every
# table/figure in EXPERIMENTS.md. All outputs (logs, VCD traces,
# BENCH_kernel.json, latency-histogram JSON, Perfetto traces) land in out/,
# which is gitignored.
#
# Usage: reproduce.sh [--jobs N]
#   --jobs N   worker threads for the sim::Campaign-driven sweeps (Table 1
#              latency histograms, sync-depth soaks, matrix extension, the
#              fuzz/soak test campaigns via MTS_CAMPAIGN_JOBS). Default:
#              nproc. Campaign results are bit-identical for any N; only
#              wall time changes.
set -euo pipefail
cd "$(dirname "$0")/.."
repo="$PWD"

jobs="$(nproc 2>/dev/null || echo 1)"
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      jobs="$2"
      shift 2
      ;;
    *)
      echo "unknown argument: $1 (usage: reproduce.sh [--jobs N])" >&2
      exit 2
      ;;
  esac
done
echo "campaign workers: $jobs"

cmake -B build -G Ninja
cmake --build build

mkdir -p out
# Fuzz campaigns and MTBF soaks shard across MTS_CAMPAIGN_JOBS workers
# (tests/integration/test_fuzz_campaign.cpp, tests/faults/...soak.cpp).
MTS_CAMPAIGN_JOBS="$jobs" ctest --test-dir build 2>&1 | tee out/test_output.txt

# Benchmarks run from out/ so that generated artifacts (fig3_*.vcd from
# bench_fig3_protocols, BENCH_kernel.json from bench_kernel_perf,
# BENCH_campaign.json from bench_campaign_scaling) are written there
# instead of the repository root. Campaign-driven sweeps take --jobs.
campaign_benches="bench_table1_latency bench_sync_depth bench_matrix_extension"
(
  cd out
  for b in "$repo"/build/bench/bench_*; do
    name="$(basename "$b")"
    echo "===================================================================="
    echo "== $name"
    echo "===================================================================="
    case " $campaign_benches " in
      *" $name "*) "$b" --jobs "$jobs" ;;
      *) "$b" ;;
    esac
    echo
  done
) 2>&1 | tee out/bench_output.txt

# Forward-latency distributions (metrics registry): one histogram per
# Table-1 configuration under saturated traffic, fanned across the
# campaign pool, with a one-screen p50/p99 summary on stdout and the full
# per-instance JSON in out/.
(
  cd out
  echo "===================================================================="
  echo "== latency histograms (saturated, per Table-1 configuration)"
  echo "===================================================================="
  "$repo"/build/bench/bench_table1_latency --jobs "$jobs" \
    --hist-json latency_histograms.json
) 2>&1 | tee out/latency_histograms.txt

# End-to-end observability artifacts: the mixed-timing SoC example's
# Perfetto trace (open soc_trace.json at https://ui.perfetto.dev) with the
# telemetry counter tracks merged in, its full report (metrics +
# hottest-callbacks kernel profile), and the sampled timeline JSONL.
(
  cd out
  "$repo"/build/examples/example_latency_insensitive_soc
) 2>&1 | tee out/soc_example.txt

# Backpressure-timeline figure (EXPERIMENTS.md): the deterministic
# stop-storm on a relay chain. storm_trace.json carries the stall-duty and
# occupancy counter tracks next to the transaction spans;
# storm_timeline.jsonl is the raw series for the mts_timeline CLI.
(
  cd out
  echo "===================================================================="
  echo "== backpressure storm timeline (relay chain under stop bursts)"
  echo "===================================================================="
  "$repo"/build/examples/example_backpressure_storm
  echo
  "$repo"/build/tools/mts_timeline storm_timeline.jsonl --series stall_duty
) 2>&1 | tee out/backpressure_storm.txt

# Kernel perf gate: dormant-path and 1-worker-campaign throughput plus the
# armed-profiler overhead ceiling, vs the recorded baseline; the telemetry
# pair adds the disarmed-sampler 5% gate and the armed-sampler ceiling.
python3 scripts/check_kernel_perf.py BENCH_kernel.json out/BENCH_kernel.json \
  0.15 BENCH_telemetry.json out/BENCH_telemetry.json

echo "done: see out/test_output.txt, out/bench_output.txt, out/*.vcd,"
echo "      out/latency_histograms.json, out/BENCH_campaign.json,"
echo "      out/soc_trace.json, out/soc_report.json, out/soc_timeline.jsonl,"
echo "      out/storm_trace.json, out/storm_timeline.jsonl,"
echo "      out/campaign_health.json, out/BENCH_telemetry.json"
