// Bundled-data timing violations on the asynchronous put interface.
//
// The 4-phase bundling convention (Fig. 3b) promises data stable before
// req+; the matched-delay margin is the latch-transparency interval
// documented by fifo::async_put_data_margin(). A BundlingFault lags the
// data behind the request; the protocol must absorb any lag below the
// margin and must corrupt once the lag clearly exceeds it -- there is no
// graceful degradation past the documented bound, which is the paper's
// argument for why bundled data needs timing validation while the
// handshake itself is delay-insensitive.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/async_sync_fifo.hpp"
#include "fifo/async_timing.hpp"
#include "fifo/interface_sides.hpp"
#include "sim/fault.hpp"
#include "sync/clock.hpp"

#include "fault_test_util.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

struct BundleHarness {
  FifoConfig cfg;
  sim::Simulation sim;
  Time gp;
  sync::Clock cg;
  AsyncSyncFifo dut;
  bfm::Scoreboard sb;
  bfm::AsyncPutDriver put;
  bfm::SyncGetDriver get;
  bfm::GetMonitor gm;

  static FifoConfig make_cfg() {
    FifoConfig cfg;
    cfg.capacity = 4;
    cfg.width = 8;
    return cfg;
  }

  explicit BundleHarness(std::uint64_t seed)
      : cfg(make_cfg()),
        sim(seed),
        gp(2 * SyncGetSide::min_period(cfg)),
        cg(sim, "cg", {gp, 4 * gp, 0.5, 0}),
        dut(sim, "dut", cfg, cg.out()),
        sb(sim, "sb"),
        put(sim, "put", dut.put_req(), dut.put_ack(), dut.put_data(), cfg.dm,
            gp / 2, 0xFF, &sb),
        get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1}),
        gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb) {}

  void soak(unsigned cycles) { sim.run_until(4 * gp + cycles * gp); }
};

TEST(BundledData, MarginIsPositiveAndStructural) {
  const FifoConfig cfg = BundleHarness::make_cfg();
  const Time margin = async_put_data_margin(cfg);
  EXPECT_GT(margin, 0);
  // The margin spans at least one full request forward path; it must grow
  // with capacity (wider broadcast + deeper ack tree) and width (heavier
  // we load).
  FifoConfig big = cfg;
  big.capacity = 16;
  EXPECT_GT(async_put_data_margin(big), margin);
  big = cfg;
  big.width = 64;
  EXPECT_GT(async_put_data_margin(big), margin);
}

TEST(BundledData, LagWithinMarginIsAbsorbed) {
  const std::uint64_t seed = faulttest::fault_seed(0xB0D1);
  BundleHarness h(seed);
  const Time margin = async_put_data_margin(h.cfg);
  sim::FaultPlan plan(seed);
  plan.inject_bundling("put", sim::BundlingFault{margin / 2});
  h.sim.arm_faults(&plan);
  h.soak(200);
  EXPECT_GT(h.gm.dequeued(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u)
      << plan.describe() << "\n"
      << faulttest::repro_hint("BundledData.LagWithinMarginIsAbsorbed", seed);
  EXPECT_GT(plan.count("bundling.lag"), 0u);
}

TEST(BundledData, LagJustBelowMarginIsAbsorbed) {
  const std::uint64_t seed = faulttest::fault_seed(0xB0D2);
  BundleHarness h(seed);
  const Time margin = async_put_data_margin(h.cfg);
  // One latch d-to-q inside the bound: the last lag the latch still
  // captures before we- cuts it off.
  sim::FaultPlan plan(seed);
  plan.inject_bundling("put", sim::BundlingFault{margin - h.cfg.dm.latch_d_to_q});
  h.sim.arm_faults(&plan);
  h.soak(200);
  EXPECT_GT(h.gm.dequeued(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u)
      << plan.describe() << "\n"
      << faulttest::repro_hint("BundledData.LagJustBelowMarginIsAbsorbed",
                               seed);
}

TEST(BundledData, LagPastMarginCorruptsEveryItem) {
  const std::uint64_t seed = faulttest::fault_seed(0xB0D3);
  BundleHarness h(seed);
  const Time margin = async_put_data_margin(h.cfg);
  // Two gate delays past the bound: the latch has provably closed.
  sim::FaultPlan plan(seed);
  plan.inject_bundling("put",
                       sim::BundlingFault{margin + 2 * h.cfg.dm.gate(1)});
  h.sim.arm_faults(&plan);
  h.soak(200);
  ASSERT_GT(h.gm.dequeued(), 50u);
  // Every item whose predecessor differed arrives stale: the scoreboard
  // flags (nearly) all of them, not an occasional glitch.
  EXPECT_GT(h.sb.errors(), h.gm.dequeued() / 2)
      << plan.describe() << "\n"
      << faulttest::repro_hint("BundledData.LagPastMarginCorruptsEveryItem",
                               seed);
}

TEST(BundledData, UnarmedSimulationIsUnaffectedByTheHook) {
  // Same harness, no plan armed: the hook's branch must not change
  // behaviour (the golden-waveform test pins bit-identical traces; this
  // pins the protocol outcome).
  BundleHarness h(1);
  h.soak(200);
  EXPECT_GT(h.gm.dequeued(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

}  // namespace
}  // namespace mts::fifo
