// Visited-state set for the explicit-state checker.
//
// States are fixed-size byte records; the store interns them into a flat
// arena (ids are allocation order, so every traversal that walks ids is
// deterministic) with an open-addressed hash index on top. FNV-1a 64 over
// the record bytes; collisions resolve by byte comparison, so two runs of
// the same product always assign identical ids -- the determinism
// guarantee the byte-identical-counterexample test pins down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mts::mc {

/// FNV-1a 64-bit over `n` bytes.
std::uint64_t fnv64(const std::uint8_t* data, std::size_t n);

class StateStore {
 public:
  explicit StateStore(std::size_t record_size);

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Interns `rec` (record_size bytes). Returns (id, inserted): inserted is
  /// false when an identical record was already present.
  std::pair<std::uint32_t, bool> intern(const std::uint8_t* rec);

  /// Bytes of record `id`; invalidated by the next intern().
  const std::uint8_t* bytes(std::uint32_t id) const {
    return arena_.data() + static_cast<std::size_t>(id) * record_size_;
  }

  std::size_t size() const noexcept { return count_; }
  std::size_t record_size() const noexcept { return record_size_; }

 private:
  void grow();

  static constexpr std::uint32_t kEmpty = 0xFFFF'FFFFu;

  std::size_t record_size_;
  std::size_t count_ = 0;
  std::vector<std::uint8_t> arena_;
  std::vector<std::uint32_t> table_;  ///< open addressing, kEmpty = free
  std::size_t mask_ = 0;
};

}  // namespace mts::mc
