// Campaign run supervision: failure capture with exception types, same-seed
// retry classification (deterministic vs flaky), config quarantine, repro
// bundles, per-run deadlines, violation collection and the merged failure
// manifest.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/campaign.hpp"
#include "sim/error.hpp"
#include "sim/watchdog.hpp"
#include "verify/hub.hpp"

namespace mts::sim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CampaignSupervision, FailureCapturesTypeConfigAndSeed) {
  CampaignOptions opt;
  opt.workers = 2;
  opt.seed = 0xC0DE;
  Campaign campaign(2, 2, opt);
  campaign.run([](CampaignContext& ctx) {
    if (ctx.spec().config == 1 && ctx.spec().rep == 0) {
      throw SimulationError("bus conflict on cell 3");
    }
    ctx.set("done", 1.0);
  });
  ASSERT_EQ(campaign.failed(), 1u);
  const RunResult& bad = campaign.results()[2];  // config 1, rep 0
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, "bus conflict on cell 3");
  // The demangled exception TYPE is captured alongside what(): the repro
  // needs to know a DeadlineError from a ProtocolViolationError.
  EXPECT_NE(bad.error_type.find("SimulationError"), std::string::npos)
      << bad.error_type;
  EXPECT_EQ(bad.seed, campaign_run_seed(0xC0DE, 2));
  EXPECT_EQ(bad.attempts, 1u);
  EXPECT_TRUE(bad.classification.empty());  // no retries requested
  // The sibling runs completed untouched (failure isolation).
  EXPECT_TRUE(campaign.results()[0].ok);
  EXPECT_TRUE(campaign.results()[3].ok);
  // And the campaign JSON carries the typed failure.
  const std::string j = campaign.to_json(false);
  EXPECT_NE(j.find("SimulationError"), std::string::npos);
}

TEST(CampaignSupervision, EventualPassUnderRetryClassifiesFlaky) {
  CampaignOptions opt;
  opt.workers = 1;
  opt.max_attempts = 3;
  Campaign campaign(1, 1, opt);
  campaign.run([](CampaignContext& ctx) {
    // Host-dependent failure: vanishes on the same-seed re-run.
    if (ctx.attempt() == 1) throw SimulationError("transient");
    ctx.set("attempt", static_cast<double>(ctx.attempt()));
  });
  const RunResult& r = campaign.results()[0];
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.classification, "flaky");
  EXPECT_TRUE(r.error.empty());  // the healed run reports no error
  EXPECT_EQ(r.scalars.at("attempt"), 2.0);
  EXPECT_EQ(campaign.failed(), 0u);
}

TEST(CampaignSupervision, IdenticalRepeatedFailuresClassifyDeterministic) {
  CampaignOptions opt;
  opt.workers = 1;
  opt.max_attempts = 3;
  Campaign campaign(1, 1, opt);
  unsigned executions = 0;
  campaign.run([&executions](CampaignContext&) {
    ++executions;  // workers=1: no data race
    throw SimulationError("token ring corrupted");
  });
  const RunResult& r = campaign.results()[0];
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(executions, 3u);  // every attempt really ran
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.classification, "deterministic");
  EXPECT_EQ(r.error, "token ring corrupted");
}

TEST(CampaignSupervision, DifferingFailuresClassifyFlaky) {
  CampaignOptions opt;
  opt.workers = 1;
  opt.max_attempts = 2;
  Campaign campaign(1, 1, opt);
  campaign.run([](CampaignContext& ctx) {
    throw SimulationError("failure variant " +
                          std::to_string(ctx.attempt()));
  });
  const RunResult& r = campaign.results()[0];
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.classification, "flaky");
  EXPECT_EQ(r.error, "failure variant 2");  // last attempt's failure
}

TEST(CampaignSupervision, QuarantineSkipsABudgetBlownConfig) {
  CampaignOptions opt;
  opt.workers = 1;  // quarantine is placement-dependent; pin the order
  opt.quarantine_after = 2;
  Campaign campaign(2, 5, opt);
  unsigned config0_executions = 0;
  campaign.run([&config0_executions](CampaignContext& ctx) {
    if (ctx.spec().config == 0) {
      ++config0_executions;
      throw SimulationError("config 0 is broken");
    }
  });
  // Two failures burn the budget; the remaining three cells are skipped.
  EXPECT_EQ(config0_executions, 2u);
  ASSERT_TRUE(campaign.config_quarantined(0));
  EXPECT_FALSE(campaign.config_quarantined(1));
  ASSERT_EQ(campaign.quarantined().size(), 1u);
  EXPECT_EQ(campaign.quarantined()[0], 0u);
  unsigned skipped = 0;
  for (const RunResult& r : campaign.results()) {
    const std::size_t config = r.index / 5;
    if (config == 1) {
      EXPECT_TRUE(r.ok);
      continue;
    }
    EXPECT_FALSE(r.ok);
    if (r.classification == "quarantined") {
      ++skipped;
      EXPECT_EQ(r.attempts, 0u);  // never executed
      EXPECT_NE(r.error.find("quarantined after 2 failed runs"),
                std::string::npos);
    }
  }
  EXPECT_EQ(skipped, 3u);
  EXPECT_NE(campaign.to_json(false).find("\"quarantined_configs\": [0]"),
            std::string::npos);
}

TEST(CampaignSupervision, ReproBundleIsSelfContained) {
  const std::string dir = "campaign_supervision_repro";
  std::filesystem::remove_all(dir);
  CampaignOptions opt;
  opt.workers = 1;
  opt.seed = 0xBADC;
  opt.max_attempts = 2;
  opt.repro_dir = dir;
  Campaign campaign(1, 2, opt);
  campaign.run([](CampaignContext& ctx) {
    if (ctx.spec().rep == 1) throw SimulationError("underflow at cell 2");
    ctx.set("throughput", 0.5);
  });
  const RunResult& good = campaign.results()[0];
  const RunResult& bad = campaign.results()[1];
  EXPECT_TRUE(good.repro_path.empty());  // passing runs write nothing
  ASSERT_FALSE(bad.repro_path.empty());
  ASSERT_TRUE(std::filesystem::exists(bad.repro_path));
  const std::string bundle = slurp(bad.repro_path);
  // Coordinates + seeds + typed failure: everything a re-run needs.
  EXPECT_NE(bundle.find("\"index\": 1"), std::string::npos) << bundle;
  EXPECT_NE(bundle.find("\"seed\": " + std::to_string(bad.seed)),
            std::string::npos)
      << bundle;
  EXPECT_NE(bundle.find("\"campaign_seed\": " + std::to_string(0xBADC)),
            std::string::npos)
      << bundle;
  EXPECT_NE(bundle.find("SimulationError"), std::string::npos) << bundle;
  EXPECT_NE(bundle.find("underflow at cell 2"), std::string::npos) << bundle;
  EXPECT_NE(bundle.find("\"classification\": \"deterministic\""),
            std::string::npos)
      << bundle;
  std::filesystem::remove_all(dir);
}

TEST(CampaignSupervision, RunDeadlineKillsAHungBody) {
  CampaignOptions opt;
  opt.workers = 1;
  opt.run_deadline_sec = 1e-9;  // every poll is already too late
  Campaign campaign(1, 1, opt);
  campaign.run([](CampaignContext& ctx) {
    // A "hung" run: plenty of scheduler events (the engine's per-attempt
    // watchdog polls every 4096) that never finish the protocol.
    for (Time t = 1; t <= 20'000; ++t) ctx.sim().sched().after(t, [] {});
    ctx.sim().run_until(30'000);
  });
  const RunResult& r = campaign.results()[0];
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error_type.find("DeadlineError"), std::string::npos)
      << r.error_type;
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
}

TEST(CampaignSupervision, CollectedViolationsLandInResultAndManifest) {
  CampaignOptions opt;
  opt.workers = 1;
  opt.collect_violations = true;
  Campaign campaign(1, 2, opt);
  campaign.run([](CampaignContext& ctx) {
    if (ctx.spec().rep == 0) {
      verify::Violation v;
      v.time = 7;
      v.invariant = verify::Invariant::kTokenRing;
      v.site = "dut.ptok";
      v.observed = "0 tokens";
      v.expected = "exactly 1 circulating token";
      ctx.monitors()->report(std::move(v));  // recorded, not thrown
    }
  });
  ASSERT_EQ(campaign.failed(), 0u);  // record-and-continue
  const RunResult& flagged = campaign.results()[0];
  EXPECT_EQ(flagged.violations, 1u);
  EXPECT_NE(flagged.violations_json.find("token-ring"), std::string::npos)
      << flagged.violations_json;
  EXPECT_EQ(campaign.results()[1].violations, 0u);
  // The hub mirrored the violation into the run's report, which the engine
  // reduces into the campaign-level manifest.
  EXPECT_EQ(campaign.merged_report().count("verify-token-ring"), 1u);
  EXPECT_NE(campaign.to_json(false).find("\"violations\""),
            std::string::npos);
}

TEST(CampaignSupervision, FailureManifestSummarizesEveryFailedRun) {
  CampaignOptions opt;
  opt.workers = 2;
  opt.max_attempts = 2;
  Campaign campaign(3, 1, opt);
  campaign.run([](CampaignContext& ctx) {
    if (ctx.spec().config == 2) throw SimulationError("detector stuck");
  });
  ASSERT_EQ(campaign.failed(), 1u);
  const Report& merged = campaign.merged_report();
  ASSERT_EQ(merged.count("campaign-failure"), 1u);
  std::string line;
  for (const ReportEntry& e : merged.entries()) {
    if (e.category == "campaign-failure") line = e.message;
  }
  // One line names everything: coordinates, seed, classification, type.
  EXPECT_NE(line.find("run 2 (config 2, rep 0, seed "), std::string::npos)
      << line;
  EXPECT_NE(line.find("[deterministic]"), std::string::npos) << line;
  EXPECT_NE(line.find("SimulationError"), std::string::npos) << line;
  EXPECT_NE(line.find("detector stuck"), std::string::npos) << line;
}

}  // namespace
}  // namespace mts::sim
