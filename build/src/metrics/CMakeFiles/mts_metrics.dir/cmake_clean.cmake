file(REMOVE_RECURSE
  "CMakeFiles/mts_metrics.dir/activity.cpp.o"
  "CMakeFiles/mts_metrics.dir/activity.cpp.o.d"
  "CMakeFiles/mts_metrics.dir/experiments.cpp.o"
  "CMakeFiles/mts_metrics.dir/experiments.cpp.o.d"
  "CMakeFiles/mts_metrics.dir/stats.cpp.o"
  "CMakeFiles/mts_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/mts_metrics.dir/table.cpp.o"
  "CMakeFiles/mts_metrics.dir/table.cpp.o.d"
  "CMakeFiles/mts_metrics.dir/waveform.cpp.o"
  "CMakeFiles/mts_metrics.dir/waveform.cpp.o.d"
  "libmts_metrics.a"
  "libmts_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
