// Sync-async FIFO: synchronous put interface, asynchronous get interface.
//
// The paper states (Section 2) that this fourth combination "has also been
// designed, and will be described in a forthcoming technical report"; we
// assemble it from the same parts, following the composition rules the
// paper establishes:
//
//   - put side: the mixed-clock design's put half verbatim (SyncPutPart
//     cells + full detector + synchronizer + put controller);
//   - get side: the token-ring asynchronous get half of [4] (ObtainGetToken
//     machine + asymmetric C-element), 4-phase bundled data;
//   - DV: the serialized net (dv_linear_net) -- f_i may only rise once the
//     data is provably latched (we-), because an asynchronous reader reacts
//     to f_i immediately rather than a synchronizer-delayed cycle later.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fifo/cell_parts.hpp"
#include "fifo/config.hpp"
#include "gates/netlist.hpp"
#include "gates/timing.hpp"
#include "sim/observe.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"
#include "verify/checkers.hpp"

namespace mts::fifo {

class SyncAsyncFifo {
 public:
  SyncAsyncFifo(sim::Simulation& sim, const std::string& name,
                const FifoConfig& cfg, sim::Wire& clk_put);

  SyncAsyncFifo(const SyncAsyncFifo&) = delete;
  SyncAsyncFifo& operator=(const SyncAsyncFifo&) = delete;

  // --- put interface (synchronous, CLK_put) ---
  sim::Wire& req_put() noexcept { return *req_put_; }
  sim::Word& data_put() noexcept { return *data_put_; }
  sim::Wire& full() noexcept { return *full_ext_; }

  // --- get interface (asynchronous, 4-phase bundled data) ---
  sim::Wire& get_req() noexcept { return *get_req_; }
  sim::Wire& get_ack() noexcept { return *get_ack_; }
  sim::Word& get_data() noexcept { return *get_data_; }

  // --- diagnostics / verification hooks ---
  gates::TimingDomain& put_domain() noexcept { return put_dom_; }
  std::uint64_t overflow_count() const noexcept { return overflows_; }
  std::uint64_t underflow_count() const noexcept { return underflows_; }
  unsigned occupancy() const;
  sim::Wire& cell_f(unsigned i) { return *f_.at(i); }
  sim::Wire& cell_e(unsigned i) { return *e_.at(i); }
  sim::Wire& en_put() noexcept { return *en_put_b_; }

  /// Minimum CLK_put period (same structure as the mixed-clock design).
  sim::Time put_min_period() const;

  const FifoConfig& config() const noexcept { return cfg_; }

 private:
  sim::Simulation& sim_;
  FifoConfig cfg_;
  gates::Netlist nl_;
  gates::TimingDomain put_dom_;

  sim::Wire* req_put_ = nullptr;
  sim::Word* data_put_ = nullptr;
  sim::Wire* full_ext_ = nullptr;
  sim::Wire* get_req_ = nullptr;
  sim::Wire* get_ack_ = nullptr;
  sim::Word* get_data_ = nullptr;
  sim::Wire* en_put_b_ = nullptr;

  std::vector<sim::Wire*> e_;
  std::vector<sim::Wire*> f_;

  std::uint64_t overflows_ = 0;
  std::uint64_t underflows_ = 0;
  /// Non-null only when observability was armed at construction time.
  std::unique_ptr<sim::TransitObserver> obs_;
  /// Non-null only when a verify::Hub was armed at construction time.
  std::unique_ptr<verify::MonitorSet> mon_;
};

}  // namespace mts::fifo
