// Result-table rendering for the benchmark harnesses: aligned ASCII output
// plus optional CSV, so every bench can print rows in the same layout the
// paper's Table 1 uses.
#pragma once

#include <string>
#include <vector>

namespace mts::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders aligned ASCII (with a header underline).
  std::string to_string() const;

  /// Renders CSV (no quoting: callers keep cells comma-free).
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 1);

}  // namespace mts::metrics
