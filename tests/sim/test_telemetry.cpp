#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "sim/observe.hpp"
#include "sim/simulation.hpp"
#include "sim/trace_session.hpp"
#include "verify/hub.hpp"

namespace mts::sim {
namespace {

/// Self-rescheduling tick chain: keeps the queue non-empty for `limit`
/// ticks of `period` so the periodic probe has something to ride along.
void tick_chain(Simulation& sim, Time period, std::uint64_t* count,
                std::uint64_t limit) {
  if (++*count < limit) {
    sim.sched().after(period, [&sim, period, count, limit] {
      tick_chain(sim, period, count, limit);
    });
  }
}

TEST(Telemetry, SamplesEveryIntervalWhileEventsPend) {
  Simulation sim;
  TelemetryConfig cfg;
  cfg.interval = 10 * kNanosecond;
  Telemetry tel(cfg);
  tel.start(sim);
  std::uint64_t ticks = 0;
  sim.sched().after(kNanosecond,
                    [&] { tick_chain(sim, kNanosecond, &ticks, 200); });
  sim.run();
  EXPECT_EQ(ticks, 200u);
  // Ticks end at t = 200 ns; probes fire at 10, 20, ... until the queue
  // drains, so ~20 samples with at most one probe of slack either way.
  EXPECT_GE(tel.samples(), 19u);
  EXPECT_LE(tel.samples(), 21u);
  EXPECT_FALSE(tel.active());  // probe retired: the queue drained
  EXPECT_TRUE(sim.sched().empty());
}

TEST(Telemetry, ProbeRetiresAfterOneSampleOnAnIdleQueue) {
  Simulation sim;
  TelemetryConfig cfg;
  cfg.interval = 10 * kNanosecond;
  Telemetry tel(cfg);
  tel.start(sim);
  sim.run();  // only the probe is pending: one sample, then retirement
  EXPECT_EQ(tel.samples(), 1u);
  EXPECT_FALSE(tel.active());
  EXPECT_EQ(sim.now(), 10 * kNanosecond);  // drained one interval after start
}

TEST(Telemetry, SourcesSampleIntoSeriesAndDomainRollups) {
  Simulation sim;
  TelemetryConfig cfg;
  cfg.interval = kNanosecond;
  Telemetry tel(cfg);
  tel.add_source("f0", "bus", "occupancy", [] { return 2.0; });
  tel.add_source("f1", "bus", "occupancy", [] { return 3.0; });
  tel.add_source("g0", "disp", "occupancy", [] { return 5.0; });
  tel.start(sim);
  sim.run();
  ASSERT_EQ(tel.samples(), 1u);
  const metrics::TimeSeriesStore& st = tel.store();
  ASSERT_NE(st.find("f0.occupancy"), nullptr);
  EXPECT_DOUBLE_EQ(st.find("f0.occupancy")->last(), 2.0);
  EXPECT_DOUBLE_EQ(st.find("f1.occupancy")->last(), 3.0);
  // Rollup: sum over the domain's sources of one kind.
  ASSERT_NE(st.find("domain.bus.occupancy"), nullptr);
  EXPECT_DOUBLE_EQ(st.find("domain.bus.occupancy")->last(), 5.0);
  ASSERT_NE(st.find("domain.disp.occupancy"), nullptr);
  EXPECT_DOUBLE_EQ(st.find("domain.disp.occupancy")->last(), 5.0);
}

TEST(Telemetry, KernelSeriesPresentAndHostSeriesOptIn) {
  Simulation sim;
  TelemetryConfig cfg;
  cfg.interval = 10 * kNanosecond;
  Telemetry tel(cfg);
  tel.start(sim);
  std::uint64_t ticks = 0;
  sim.sched().after(kNanosecond,
                    [&] { tick_chain(sim, kNanosecond, &ticks, 100); });
  sim.run();
  const metrics::TimeSeriesStore& st = tel.store();
  ASSERT_NE(st.find("kernel.events_per_us"), nullptr);
  EXPECT_GT(st.find("kernel.events_per_us")->last(), 0.0);
  ASSERT_NE(st.find("kernel.queue_depth"), nullptr);
  // Host-dependent series stay out of the default export (campaign
  // timelines must be worker-count independent).
  EXPECT_EQ(st.find("kernel.pool_high_water"), nullptr);

  Simulation sim2;
  cfg.include_host_series = true;
  Telemetry tel2(cfg);
  tel2.start(sim2);
  std::uint64_t ticks2 = 0;
  sim2.sched().after(kNanosecond,
                     [&] { tick_chain(sim2, kNanosecond, &ticks2, 100); });
  sim2.run();
  EXPECT_NE(tel2.store().find("kernel.pool_high_water"), nullptr);
}

TEST(Telemetry, RegistrySnapshotCoversCountersGaugesAndWindowPercentiles) {
  Simulation sim;
  metrics::Registry reg;
  reg.set_default_window(128);  // all 100 observations fit the window
  reg.counter("dut", "puts").inc(7);
  reg.gauge("dut", "fill").set(0.5);
  metrics::Histogram& h = reg.histogram("dut", "latency_ps", {1e6});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));

  TelemetryConfig cfg;
  cfg.interval = kNanosecond;
  Telemetry tel(cfg);
  tel.set_registry(&reg);
  tel.start(sim);
  sim.run();
  const metrics::TimeSeriesStore& st = tel.store();
  ASSERT_NE(st.find("dut.puts"), nullptr);
  EXPECT_DOUBLE_EQ(st.find("dut.puts")->last(), 7.0);
  ASSERT_NE(st.find("dut.fill"), nullptr);
  EXPECT_DOUBLE_EQ(st.find("dut.fill")->last(), 0.5);
  // Windowed nearest-rank percentiles of the raw recent samples 1..100.
  ASSERT_NE(st.find("dut.latency_ps.p50"), nullptr);
  EXPECT_DOUBLE_EQ(st.find("dut.latency_ps.p50")->last(), 50.0);
  ASSERT_NE(st.find("dut.latency_ps.p999"), nullptr);
  EXPECT_DOUBLE_EQ(st.find("dut.latency_ps.p999")->last(), 100.0);
}

TEST(Telemetry, ViolationSeriesAppearOnlyWithAnArmedHub) {
  Simulation sim;
  TelemetryConfig cfg;
  cfg.interval = kNanosecond;
  Telemetry tel(cfg);
  tel.start(sim);
  sim.run();
  EXPECT_EQ(tel.store().find("verify.violations"), nullptr);

  Simulation sim2;
  verify::Hub hub;
  hub.set_policy(verify::Policy::kCount);
  hub.arm(sim2);
  Telemetry tel2(cfg);
  tel2.start(sim2);
  sim2.run();
  ASSERT_NE(tel2.store().find("verify.violations"), nullptr);
  EXPECT_DOUBLE_EQ(tel2.store().find("verify.violations")->last(), 0.0);
}

TEST(Telemetry, CounterTracksMergeIntoTraceSessionJson) {
  Simulation sim;
  TraceSession trace;
  TelemetryConfig cfg;
  cfg.interval = kNanosecond;
  Telemetry tel(cfg);
  tel.add_source("dut", "bus", "occupancy", [] { return 4.0; });
  tel.attach_trace(&trace);
  tel.start(sim);
  sim.run();
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("dut.occupancy"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  // Still a well-formed traceEvents document after the splice.
  EXPECT_NE(json.rfind("]}"), std::string::npos);
}

TEST(Telemetry, ObservabilityArmWiresRegistryWindowAndStartsProbe) {
  Simulation sim;
  metrics::Registry reg;
  TelemetryConfig cfg;
  cfg.interval = kNanosecond;
  cfg.histogram_window = 77;
  Telemetry tel(cfg);
  Observability obs;
  obs.metrics = &reg;
  obs.telemetry = &tel;
  obs.arm(sim);
  EXPECT_TRUE(tel.active());
  EXPECT_EQ(reg.default_window(), 77u);  // windows armed before construction
  sim.run();
  EXPECT_EQ(tel.samples(), 1u);
}

TEST(Telemetry, ResetDropsSourcesSeriesAndSamplerState) {
  Simulation sim;
  TelemetryConfig cfg;
  cfg.interval = kNanosecond;
  Telemetry tel(cfg);
  tel.add_source("dut", "bus", "occupancy", [] { return 1.0; });
  tel.start(sim);
  sim.run();
  EXPECT_GT(tel.samples(), 0u);
  tel.reset();
  EXPECT_EQ(tel.source_count(), 0u);
  EXPECT_EQ(tel.samples(), 0u);
  EXPECT_TRUE(tel.store().empty());
  EXPECT_FALSE(tel.active());
  // reset() keeps the config: the campaign engine re-arms the same object.
  EXPECT_EQ(tel.config().interval, kNanosecond);
}

TEST(Telemetry, DisarmedRunRegistersNoSourcesViaObservability) {
  // The zero-cost contract at the API level: with no Telemetry in the
  // bundle, arm() leaves nothing behind for components to find.
  Simulation sim;
  Observability obs;
  obs.arm(sim);
  ASSERT_NE(sim.observability(), nullptr);
  EXPECT_EQ(sim.observability()->telemetry, nullptr);
}

}  // namespace
}  // namespace mts::sim
