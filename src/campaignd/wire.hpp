// Length-prefixed message framing for the campaignd TCP protocol.
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by that many payload bytes (a JSON document, but the framing layer is
// byte-agnostic). The decoder is a pure incremental state machine with no
// I/O, so the fuzz suite can drive it with truncated / oversized / garbage
// prefixes byte-by-byte under ASan/UBSan and assert structured rejection
// (FramingError) rather than UB.
//
// Hard limits: a zero-length frame is invalid (no campaignd message is
// empty -- an empty payload means a peer bug or a desynchronized stream),
// and payloads beyond kMaxFramePayload (16 MiB) are rejected WITHOUT
// buffering -- the length prefix alone condemns the stream, so a hostile
// or corrupt 4-byte header cannot make the coordinator allocate gigabytes.
// After any error the decoder latches failed() and discards further input:
// framing errors are not recoverable within one stream (the byte position
// of the next frame is unknowable); the connection must be dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mts::campaignd {

/// Structured framing rejection: oversized, empty or truncated frames.
class FramingError : public std::runtime_error {
 public:
  explicit FramingError(const std::string& msg)
      : std::runtime_error("framing: " + msg) {}
};

/// Largest accepted frame payload. Generous for run snapshots (a worker's
/// biggest message is one run's report + registry + timeline, well under a
/// megabyte in practice) while bounding what a corrupt prefix can demand.
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

/// Encodes one frame: 4-byte big-endian length + payload. Throws
/// FramingError on empty or oversized payloads (the encoder enforces the
/// same limits the decoder does -- a conforming sender never emits a frame
/// its peer must reject).
std::string encode_frame(const std::string& payload);

/// Incremental frame decoder. feed() consumes an arbitrary byte chunk and
/// appends every completed payload to `out`. Malformed input throws
/// FramingError and latches failed(); subsequent feeds throw immediately.
class FrameDecoder {
 public:
  /// `max_payload` caps accepted frame sizes (tests shrink it to exercise
  /// the oversize path without 16 MiB inputs).
  explicit FrameDecoder(std::uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Consumes `len` bytes at `data`; completed payloads append to `out`.
  void feed(const char* data, std::size_t len, std::vector<std::string>& out);

  /// Bytes of an incomplete frame (header or payload) currently buffered.
  /// Non-zero at end-of-stream means the peer died mid-message.
  std::size_t pending_bytes() const noexcept {
    return header_fill_ + partial_.size();
  }

  /// True once any feed() threw: the stream is desynchronized for good.
  bool failed() const noexcept { return failed_; }

 private:
  std::uint32_t max_payload_;
  unsigned char header_[4] = {0, 0, 0, 0};
  std::size_t header_fill_ = 0;  ///< header bytes received (< 4: in header)
  std::uint32_t expect_ = 0;     ///< payload length from a complete header
  std::string partial_;          ///< payload bytes received so far
  bool in_payload_ = false;
  bool failed_ = false;
};

}  // namespace mts::campaignd
