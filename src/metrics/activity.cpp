#include "metrics/activity.hpp"

#include <bit>

namespace mts::metrics {

void ActivityMeter::watch(sim::Wire& w, double weight) {
  w.on_change([this, weight](bool, bool) {
    ++transitions_;
    weighted_ += weight;
  });
}

void ActivityMeter::watch(sim::Word& d, double weight_per_bit) {
  d.on_change([this, weight_per_bit](std::uint64_t old_v, std::uint64_t new_v) {
    const auto flipped =
        static_cast<std::uint64_t>(std::popcount(old_v ^ new_v));
    transitions_ += flipped;
    weighted_ += weight_per_bit * static_cast<double>(flipped);
  });
}

}  // namespace mts::metrics
