// Lossless snapshot round-trips: a restored Report/Registry/Coverage/
// timeline must re-render byte-identically and merge exactly like the
// original -- the property that makes multi-process and resumed campaigns
// byte-identical to the sequential in-process run.
#include "campaignd/snapshots.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaignd/json.hpp"
#include "metrics/coverage.hpp"
#include "metrics/registry.hpp"
#include "metrics/timeseries.hpp"
#include "sim/campaign.hpp"
#include "sim/report.hpp"

namespace campaignd = mts::campaignd;
namespace json = mts::campaignd::json;
namespace sim = mts::sim;
namespace metrics = mts::metrics;

namespace {

sim::Report sample_report() {
  sim::Report r;
  r.add(10, sim::Severity::kInfo, "scoreboard", "put 0xAB");
  r.add(25, sim::Severity::kWarning, "coverage-miss", "bin \"x\"\nnot hit");
  r.add(40, sim::Severity::kViolation, "setup", "margin -3 @ dut.cp");
  r.add(41, sim::Severity::kError, "bus-conflict", "two drivers\ton d[1]");
  sim::KernelStats ks;
  ks.events_executed = 123456;
  ks.peak_queue_depth = 77;
  ks.pool_high_water = 256;
  ks.hot_sites.push_back({"fifo.cpp:42", 999, 55555});
  ks.hot_sites.push_back({"clock rise", 500, 1234});
  r.set_kernel(ks);
  return r;
}

void fill_registry(metrics::Registry& reg) {
  reg.counter("dut", "puts").inc(41);
  reg.counter("dut", "gets").inc(40);
  reg.counter("sb", "errors");  // zero-valued counter must survive
  reg.gauge("dut", "occupancy").set(3.5);
  metrics::Histogram& h =
      reg.histogram("dut", "latency", {1.0, 2.0, 5.0, 10.0});
  for (double v : {0.5, 1.5, 1.5, 4.0, 9.0, 100.0}) h.observe(v);
}

}  // namespace

// -- Report -----------------------------------------------------------------

TEST(CampaigndSnapshots, ReportRoundTripExact) {
  const sim::Report orig = sample_report();
  const json::Value snap = campaignd::report_to_json(orig);

  sim::Report restored;
  campaignd::report_from_json(snap, restored);
  EXPECT_EQ(campaignd::report_to_json(restored).dump(), snap.dump());
  EXPECT_EQ(restored.to_json(), orig.to_json());
  EXPECT_EQ(restored.failure_count(), orig.failure_count());
  EXPECT_EQ(restored.total_added(), orig.total_added());
  EXPECT_EQ(restored.categories(), orig.categories());
}

TEST(CampaigndSnapshots, ReportRoundTripPreservesPastCapCounts) {
  // Entries dropped past the cap leave only counters behind; replaying
  // add() could never reconstruct that -- restore() must.
  sim::Report orig;
  orig.set_max_entries(2);
  for (int i = 0; i < 5; ++i) {
    orig.add(static_cast<sim::Time>(i), sim::Severity::kViolation, "setup",
             "v" + std::to_string(i));
  }
  ASSERT_EQ(orig.entries().size(), 2u);
  ASSERT_EQ(orig.total_added(), 5u);
  ASSERT_EQ(orig.failure_count(), 5u);

  const json::Value snap = campaignd::report_to_json(orig);
  sim::Report restored;
  campaignd::report_from_json(snap, restored);
  EXPECT_EQ(restored.total_added(), 5u);
  EXPECT_EQ(restored.failure_count(), 5u);
  EXPECT_EQ(restored.entries().size(), 2u);
  EXPECT_EQ(campaignd::report_to_json(restored).dump(), snap.dump());
}

TEST(CampaigndSnapshots, RestoredReportsMergeLikeOriginals) {
  sim::Report a = sample_report();
  sim::Report b;
  b.add(99, sim::Severity::kError, "setup", "late");
  sim::KernelStats ks;
  ks.events_executed = 10;
  ks.peak_queue_depth = 200;  // max should win in the merge
  b.set_kernel(ks);

  sim::Report merged_orig;
  merged_orig.merge(a);
  merged_orig.merge(b);

  sim::Report ra, rb, merged_restored;
  campaignd::report_from_json(campaignd::report_to_json(a), ra);
  campaignd::report_from_json(campaignd::report_to_json(b), rb);
  merged_restored.merge(ra);
  merged_restored.merge(rb);

  EXPECT_EQ(merged_restored.to_json(), merged_orig.to_json());
}

// -- Registry ---------------------------------------------------------------

TEST(CampaigndSnapshots, RegistryRoundTripExact) {
  metrics::Registry orig;
  fill_registry(orig);
  const json::Value snap = campaignd::registry_to_json(orig);

  metrics::Registry restored;
  campaignd::registry_from_json(snap, restored);
  EXPECT_EQ(campaignd::registry_to_json(restored).dump(), snap.dump());
  EXPECT_EQ(restored.to_json(), orig.to_json());
}

TEST(CampaigndSnapshots, PerRunDeltasMergeLikeLifetimeAccumulation) {
  // The distributed worker clears its registry before every run and ships
  // the whole thing as that run's delta; the in-process engine accumulates
  // over a worker's lifetime. For counters and histograms the two must
  // fold to the same bytes.
  metrics::Registry lifetime;
  metrics::Registry folded;
  for (int run = 0; run < 3; ++run) {
    metrics::Registry delta;
    for (metrics::Registry* reg : {&lifetime, &delta}) {
      reg->counter("dut", "puts").inc(static_cast<std::uint64_t>(10 + run));
      metrics::Histogram& h = reg->histogram("dut", "lat", {1.0, 4.0});
      h.observe(0.5 * (run + 1));
      h.observe(3.0 + run);
    }
    metrics::Registry fresh;
    campaignd::registry_from_json(campaignd::registry_to_json(delta), fresh);
    folded.merge(fresh);
  }
  EXPECT_EQ(campaignd::registry_to_json(folded).dump(),
            campaignd::registry_to_json(lifetime).dump());
}

TEST(CampaigndSnapshots, RegistryHistogramLayoutMismatchRejected) {
  metrics::Registry orig;
  orig.histogram("i", "h", {1.0, 2.0}).observe(1.5);
  const json::Value snap = campaignd::registry_to_json(orig);

  metrics::Registry target;
  target.histogram("i", "h", {5.0});  // conflicting pre-existing layout
  EXPECT_THROW(campaignd::registry_from_json(snap, target),
               json::ProtocolError);
}

// -- Coverage ---------------------------------------------------------------

TEST(CampaigndSnapshots, CoverageRoundTripKeepsMissedBins) {
  metrics::Coverage orig("fifo_soak");
  orig.define("dut.full.rise");  // declared but never hit
  orig.hit("dut.ne.rise", 7);
  orig.hit("dut.wrap.put", 2);
  const json::Value snap = campaignd::coverage_to_json(orig);

  metrics::Coverage restored("fifo_soak");
  campaignd::coverage_from_json(snap, restored);
  EXPECT_EQ(campaignd::coverage_to_json(restored).dump(), snap.dump());
  EXPECT_EQ(restored.bins(), orig.bins());
  EXPECT_EQ(restored.missing(), orig.missing());
  EXPECT_EQ(restored.summary(), orig.summary());
}

TEST(CampaigndSnapshots, CoverageDeltasMergeLikeAccumulation) {
  metrics::Coverage lifetime("c");
  metrics::Coverage folded("c");
  for (int run = 0; run < 3; ++run) {
    metrics::Coverage delta("c");
    for (metrics::Coverage* c : {&lifetime, &delta}) {
      c->define("never");
      c->hit("a", static_cast<std::uint64_t>(run + 1));
      if (run == 1) c->hit("b");
    }
    metrics::Coverage fresh("c");
    campaignd::coverage_from_json(campaignd::coverage_to_json(delta), fresh);
    folded.merge(fresh);
  }
  EXPECT_EQ(campaignd::coverage_to_json(folded).dump(),
            campaignd::coverage_to_json(lifetime).dump());
}

// -- Timeline ---------------------------------------------------------------

TEST(CampaigndSnapshots, TimelineRoundTripExact) {
  metrics::TimeSeriesStore orig(/*max_points=*/8);
  for (std::uint64_t t = 0; t < 20; ++t) {
    orig.append("dut.occ", t * 10, static_cast<double>(t % 4));
  }
  orig.append("sb.errors", 5, 0.0);
  const json::Value snap = campaignd::timeline_to_json(orig);

  metrics::TimeSeriesStore restored(/*max_points=*/8);
  campaignd::timeline_from_json(snap, restored);
  EXPECT_EQ(campaignd::timeline_to_json(restored).dump(), snap.dump());
  EXPECT_EQ(restored.to_jsonl(), orig.to_jsonl());

  // Decimation state (appended counts) must survive so a restored series
  // keeps merging deterministically.
  const metrics::TimeSeries* s = restored.find("dut.occ");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->appended(), orig.find("dut.occ")->appended());
}

// -- RunResult --------------------------------------------------------------

TEST(CampaigndSnapshots, RunResultRoundTripAllFields) {
  sim::RunResult r;
  r.index = 11;
  r.seed = 0xDEADBEEFCAFEF00Dull;
  r.ok = false;
  r.error = "injected failure at run 11";
  r.error_type = "mts::SimulationError";
  r.scalars = {{"errors", 2.0}, {"throughput", 0.125}};
  r.report_json = "{\"x\":1}";
  r.artifact = "{\"y\":[1,2]}";
  r.attempts = 3;
  r.classification = "flaky";
  r.repro_path = "/tmp/run-11.json";
  r.violations = 4;
  r.violations_json = "[{\"kind\":\"setup\"}]";
  r.timeline_path = "/tmp/run-11.jsonl";
  r.timeline_jsonl = "{\"t\":0}\n";
  r.telemetry_samples = 17;
  r.slo_worst = 9.75;
  r.slo_worst_instance = "dut";
  r.slo_breaches = 1;

  const json::Value snap = campaignd::run_result_to_json(r);
  const sim::RunResult back = campaignd::run_result_from_json(snap);
  EXPECT_EQ(campaignd::run_result_to_json(back).dump(), snap.dump());
  EXPECT_EQ(back.index, r.index);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.ok, r.ok);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.error_type, r.error_type);
  EXPECT_EQ(back.scalars, r.scalars);
  EXPECT_EQ(back.attempts, r.attempts);
  EXPECT_EQ(back.classification, r.classification);
  EXPECT_EQ(back.violations, r.violations);
  EXPECT_EQ(back.slo_worst, r.slo_worst);
  EXPECT_EQ(back.telemetry_samples, r.telemetry_samples);
}

// -- Options / run records / digest ----------------------------------------

TEST(CampaigndSnapshots, OptionsRoundTrip) {
  sim::CampaignOptions opt;
  opt.seed = 0xFFFFFFFFFFFFFFFFull;  // must survive as exact u64
  opt.max_attempts = 3;
  opt.quarantine_after = 2;
  opt.repro_dir = "/tmp/repro";
  opt.run_deadline_sec = 1.5;
  opt.collect_violations = true;
  opt.telemetry_interval = 50;
  opt.telemetry_max_points = 128;
  opt.telemetry_window = 64;
  opt.capture_run_reports = true;

  const json::Value snap = campaignd::options_to_json(opt);
  const sim::CampaignOptions back = campaignd::options_from_json(snap);
  EXPECT_EQ(campaignd::options_to_json(back).dump(), snap.dump());
  EXPECT_EQ(back.seed, opt.seed);
  EXPECT_EQ(back.max_attempts, opt.max_attempts);
  EXPECT_EQ(back.quarantine_after, opt.quarantine_after);
  EXPECT_EQ(back.repro_dir, opt.repro_dir);
  EXPECT_EQ(back.run_deadline_sec, opt.run_deadline_sec);
  EXPECT_EQ(back.collect_violations, opt.collect_violations);
  EXPECT_EQ(back.telemetry_interval, opt.telemetry_interval);
}

TEST(CampaigndSnapshots, MakeRunRecordShape) {
  sim::RunResult res;
  res.index = 3;
  res.ok = true;
  sim::Report rep;
  metrics::Registry reg;
  metrics::Coverage cov("c");
  cov.hit("a");
  metrics::TimeSeriesStore empty_tl;
  metrics::TimeSeriesStore tl;
  tl.append("s", 1, 2.0);

  const json::Value with_all =
      campaignd::make_run_record(res, rep, reg, &cov, tl);
  EXPECT_TRUE(with_all.has("result"));
  EXPECT_TRUE(with_all.has("report"));
  EXPECT_TRUE(with_all.has("registry"));
  EXPECT_TRUE(with_all.has("coverage"));
  EXPECT_TRUE(with_all.has("timeline"));

  const json::Value minimal =
      campaignd::make_run_record(res, rep, reg, nullptr, empty_tl);
  EXPECT_FALSE(minimal.has("coverage"));
  EXPECT_FALSE(minimal.has("timeline"));
}

TEST(CampaigndSnapshots, JobDigestSensitivity) {
  sim::CampaignOptions opt;
  opt.seed = 42;
  const std::string base =
      campaignd::job_digest(3, 2, opt, "fifo_soak", "{\"cycles\":8}");
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, campaignd::job_digest(3, 2, opt, "fifo_soak",
                                        "{\"cycles\":8}"));  // stable

  EXPECT_NE(base, campaignd::job_digest(4, 2, opt, "fifo_soak",
                                        "{\"cycles\":8}"));
  EXPECT_NE(base, campaignd::job_digest(3, 3, opt, "fifo_soak",
                                        "{\"cycles\":8}"));
  EXPECT_NE(base, campaignd::job_digest(3, 2, opt, "chaos_soak",
                                        "{\"cycles\":8}"));
  EXPECT_NE(base, campaignd::job_digest(3, 2, opt, "fifo_soak",
                                        "{\"cycles\":9}"));
  sim::CampaignOptions opt2 = opt;
  opt2.seed = 43;
  EXPECT_NE(base, campaignd::job_digest(3, 2, opt2, "fifo_soak",
                                        "{\"cycles\":8}"));
}

TEST(CampaigndSnapshots, MalformedSnapshotsRejected) {
  sim::Report rep;
  metrics::Registry reg;
  metrics::Coverage cov("c");
  metrics::TimeSeriesStore tl;
  const json::Value not_an_object = json::parse("[1,2,3]");
  EXPECT_THROW(campaignd::report_from_json(not_an_object, rep),
               json::ProtocolError);
  EXPECT_THROW(campaignd::registry_from_json(not_an_object, reg),
               json::ProtocolError);
  EXPECT_THROW(campaignd::coverage_from_json(not_an_object, cov),
               json::ProtocolError);
  EXPECT_THROW(campaignd::timeline_from_json(not_an_object, tl),
               json::ProtocolError);
  EXPECT_THROW(campaignd::run_result_from_json(not_an_object),
               json::ProtocolError);
  EXPECT_THROW(campaignd::options_from_json(not_an_object),
               json::ProtocolError);

  // Wrong member kinds inside an otherwise plausible object.
  EXPECT_THROW(campaignd::run_result_from_json(
                   json::parse("{\"index\":\"three\"}")),
               json::ProtocolError);
}
