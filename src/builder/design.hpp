// Declarative system builder: a design is a typed graph of module nodes
// whose ports carry clock-domain, timing-style and data-width annotations.
//
// The graph is pure data -- nothing is simulated until builder::elaborate()
// (elaborate.hpp) validates it and lowers every edge onto the correct
// mixed-timing primitive from the paper's toolbox:
//
//   producer style   consumer style   inserted primitive
//   --------------   --------------   -------------------------------------
//   sync, domain A   sync, domain A   SRS relay chain (latency stations)
//   sync, domain A   sync, domain B   SRS* + mixed-clock FIFO (MCRS) + SRS*
//   async            sync, domain B   ARS micropipeline + ASRS + SRS*
//   sync, domain A   sync->async      SRS* + sync-async FIFO
//   async            async            micropipeline (latency stages)
//
// (relay-station controller; with ControllerKind::kFifo the same domain
// pairs select the on-demand MixedClock/AsyncSync/SyncAsync/AsyncAsync
// FIFO instead, exposing req/full-style interfaces). Width mismatches are
// gearboxed: a wide producer bus is serialized down to the link width in
// the producer's domain and deserialized back up in the consumer's domain,
// provided the ratios are integral.
//
// Graph errors -- dangling ports, double-driven inputs, width mismatches
// with no integer gearbox ratio, same-domain edges forcing a CDC
// primitive -- are reported by check() as ConfigError naming the offending
// node and port, never as asserts or undefined behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fifo/config.hpp"
#include "sim/time.hpp"
#include "sync/clock.hpp"

namespace mts::builder {

using NodeId = std::size_t;
using EdgeId = std::size_t;
using DomainId = std::size_t;

/// Domain annotation of asynchronous (self-timed) ports.
inline constexpr DomainId kNoDomain = static_cast<DomainId>(-1);

enum class TimingStyle { kSync, kAsync };
enum class PortDir { kOut, kIn };

/// What a node is lowered to at elaboration time.
enum class NodeKind {
  kExternal,  ///< ports exposed as raw signals for caller-supplied logic
  kSource,    ///< generated traffic source (RsSource / AsyncPutDriver / tagged)
  kSink,      ///< generated checking sink (RsSink / drivers / tagged)
  kRepeater,  ///< same-domain pass-through junction (buffered wires)
  kRouter,    ///< 2D-mesh router with XY routing (router.hpp)
  kBus,       ///< multi-drop shared bus with round-robin arbitration (bus.hpp)
};

const char* to_string(TimingStyle s) noexcept;
const char* to_string(PortDir d) noexcept;
const char* to_string(NodeKind k) noexcept;

struct PortDecl {
  std::string name;
  PortDir dir = PortDir::kOut;
  TimingStyle style = TimingStyle::kSync;
  DomainId domain = kNoDomain;  ///< required for kSync, kNoDomain for kAsync
  unsigned width = 8;           ///< data bits, 1..64
};

/// Traffic attributes of kSource nodes. Sync sources emit one packet per
/// cycle with probability `rate`; async sources run 4-phase handshakes
/// separated by `gap`. Tagged sources emit builder packets (traffic.hpp)
/// carrying a destination address, a flow id and a per-flow sequence
/// number -- the self-checking format routers and buses switch on.
struct SourceAttrs {
  double rate = 1.0;
  sim::Time gap = 0;
  std::uint64_t mask = 0xFF;
  bool tagged = false;
  unsigned flow = 0;
  std::vector<unsigned> dests;  ///< tagged: destination addresses to cycle
};

/// Traffic attributes of kSink nodes. Sync sinks stall `stall_rate` of
/// cycles (back-pressure); tagged sinks check per-flow sequence order
/// instead of scoreboard FIFO order.
struct SinkAttrs {
  double stall_rate = 0.0;
  sim::Time gap = 0;  ///< async consumer handshake gap
  bool tagged = false;
};

/// Mesh coordinates and buffering of kRouter nodes.
struct RouterAttrs {
  unsigned x = 0;
  unsigned y = 0;
  unsigned queue = 4;  ///< per-input packet queue depth (>= 2)
};

/// Port counts of kBus nodes (in0..inN-1 / out0..outM-1 are auto-declared).
struct BusAttrs {
  unsigned inputs = 1;
  unsigned outputs = 1;
};

/// Per-edge primitive override; kAuto selects by the table above.
enum class Primitive {
  kAuto,
  kWire,            ///< buffered wires only (same domain, latency 0)
  kSrsChain,        ///< synchronous relay chain (same domain)
  kMixedClockFifo,  ///< MCRS / mixed-clock FIFO (requires distinct domains)
  kAsyncSyncFifo,   ///< ASRS / async-sync FIFO
  kSyncAsyncFifo,   ///< sync-async FIFO
  kAsyncAsyncFifo,  ///< fully asynchronous FIFO (kFifo controller)
  kMicropipeline,   ///< ARS chain (async both sides)
};

/// The primitive an edge resolves to under the selection table (kAuto
/// resolved; never returns kAuto). Pure function of the annotations.
Primitive resolve_primitive(TimingStyle from_style, DomainId from_domain,
                            TimingStyle to_style, DomainId to_domain,
                            fifo::ControllerKind controller, unsigned latency);

const char* to_string(Primitive p) noexcept;

/// Per-edge link annotations: CDC capacity, timing-style controller,
/// latency (relay stations inserted on each side of the crossing) and the
/// physical link width (0: the narrower endpoint; narrower than both
/// endpoints inserts a serializer/deserializer gearbox pair).
struct LinkOptions {
  unsigned capacity = 8;
  fifo::ControllerKind controller = fifo::ControllerKind::kRelayStation;
  unsigned latency_left = 0;   ///< producer-domain relay stations
  unsigned latency_right = 0;  ///< consumer-domain relay stations
  unsigned link_width = 0;     ///< 0: min(producer, consumer) port width
  Primitive primitive = Primitive::kAuto;
  /// Detector/synchronizer/delay-model template for inserted primitives;
  /// capacity, width and controller above override its fields. Unset (the
  /// default) uses Design::link_defaults().
  fifo::FifoConfig base{};
  bool base_set = false;
};

struct Node {
  NodeId id = 0;
  std::string name;
  NodeKind kind = NodeKind::kExternal;
  std::vector<PortDecl> ports;
  SourceAttrs source{};
  SinkAttrs sink{};
  RouterAttrs router{};
  BusAttrs bus{};
};

struct Edge {
  EdgeId id = 0;
  std::string name;
  NodeId from = 0;
  std::size_t from_port = 0;
  NodeId to = 0;
  std::size_t to_port = 0;
  LinkOptions opt{};
};

struct DomainDecl {
  std::string name;
  sync::ClockConfig clock{};
};

class Design {
 public:
  explicit Design(std::string name = "design") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  // --- port declaration shorthands -------------------------------------
  static PortDecl sync_out(std::string name, DomainId d, unsigned width) {
    return {std::move(name), PortDir::kOut, TimingStyle::kSync, d, width};
  }
  static PortDecl sync_in(std::string name, DomainId d, unsigned width) {
    return {std::move(name), PortDir::kIn, TimingStyle::kSync, d, width};
  }
  static PortDecl async_out(std::string name, unsigned width) {
    return {std::move(name), PortDir::kOut, TimingStyle::kAsync, kNoDomain,
            width};
  }
  static PortDecl async_in(std::string name, unsigned width) {
    return {std::move(name), PortDir::kIn, TimingStyle::kAsync, kNoDomain,
            width};
  }

  // --- graph construction ----------------------------------------------
  /// Declares a clock domain; elaboration constructs one sync::Clock per
  /// domain, in declaration order.
  DomainId domain(const std::string& name, const sync::ClockConfig& clock);

  /// A node whose ports are exposed as raw signals after elaboration, for
  /// caller-supplied custom logic (a DSP, an accelerator, a testbench).
  NodeId external(const std::string& name, std::vector<PortDecl> ports);

  /// Generated traffic source with one out port.
  NodeId source(const std::string& name, PortDecl out, SourceAttrs a = {});

  /// Generated checking sink with one in port.
  NodeId sink(const std::string& name, PortDecl in, SinkAttrs a = {});

  /// Same-domain pass-through junction ("in"/"out" ports): the seam where
  /// two edges meet inside one domain (e.g. between two CDC links).
  NodeId repeater(const std::string& name, DomainId d, unsigned width);

  /// 2D-mesh router at (x, y); declare only the ports that exist with
  /// router_port() ("n_in"/"n_out"/.../"l_in"/"l_out").
  NodeId router(const std::string& name, DomainId d, unsigned width,
                RouterAttrs a, const std::vector<std::string>& ports);

  /// Multi-drop shared bus with ports in0../out0.. auto-declared.
  NodeId bus(const std::string& name, DomainId d, unsigned width, BusAttrs a);

  /// Connects `from_node.from_port` (a kOut port) to `to_node.to_port`
  /// (a kIn port). `edge_name` defaults to "e<index>" and prefixes the
  /// names of every primitive the edge inserts.
  EdgeId connect(NodeId from_node, const std::string& from_port,
                 NodeId to_node, const std::string& to_port,
                 LinkOptions opt = {}, std::string edge_name = {});

  /// Template FifoConfig for inserted primitives (detector kinds, sync
  /// depth, delay model); per-edge LinkOptions::base overrides it.
  fifo::FifoConfig& link_defaults() noexcept { return link_defaults_; }
  const fifo::FifoConfig& link_defaults() const noexcept {
    return link_defaults_;
  }

  // --- inspection -------------------------------------------------------
  const std::vector<DomainDecl>& domains() const noexcept { return domains_; }
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }
  const Node& node(NodeId id) const;
  const Edge& edge(EdgeId id) const;
  /// Port index by name; throws ConfigError naming the node when absent.
  std::size_t port_index(NodeId node, const std::string& port) const;
  const PortDecl& port(NodeId node, const std::string& name) const;

  /// Edge attached to `node.port`, or kNoEdge when dangling.
  static constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);
  EdgeId edge_at(NodeId node, std::size_t port) const;

  /// Validates the whole graph: every port connected exactly once, edge
  /// directions legal, widths gearboxable, domains consistent, forced
  /// primitives applicable. Throws ConfigError naming the offending node
  /// and port on the first failure. elaborate() calls this first.
  void check() const;

  /// The physical link width of an edge (LinkOptions::link_width or the
  /// narrower endpoint).
  unsigned link_width_of(const Edge& e) const;

  /// The FifoConfig an edge's inserted primitives are built from.
  fifo::FifoConfig edge_fifo_config(const Edge& e) const;

  /// Machine-readable netlist: domains, nodes with annotated ports, edges
  /// with link options. Elaborated::to_json() embeds this and adds the
  /// inserted-primitive list.
  std::string to_json() const;

  /// Graphviz dot: one record node per module, domains as fill colors,
  /// edges labelled with their link options.
  std::string to_dot() const;

 private:
  void check_edge(const Edge& e) const;
  std::string port_ref(NodeId n, std::size_t p) const;
  NodeId add_node(Node n);

  std::string name_;
  std::vector<DomainDecl> domains_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  fifo::FifoConfig link_defaults_{};
};

}  // namespace mts::builder
