file(REMOVE_RECURSE
  "CMakeFiles/mts_test_lip.dir/lip/test_chain.cpp.o"
  "CMakeFiles/mts_test_lip.dir/lip/test_chain.cpp.o.d"
  "CMakeFiles/mts_test_lip.dir/lip/test_micropipeline.cpp.o"
  "CMakeFiles/mts_test_lip.dir/lip/test_micropipeline.cpp.o.d"
  "CMakeFiles/mts_test_lip.dir/lip/test_relay_property.cpp.o"
  "CMakeFiles/mts_test_lip.dir/lip/test_relay_property.cpp.o.d"
  "CMakeFiles/mts_test_lip.dir/lip/test_relay_station.cpp.o"
  "CMakeFiles/mts_test_lip.dir/lip/test_relay_station.cpp.o.d"
  "CMakeFiles/mts_test_lip.dir/lip/test_relay_structural.cpp.o"
  "CMakeFiles/mts_test_lip.dir/lip/test_relay_structural.cpp.o.d"
  "CMakeFiles/mts_test_lip.dir/lip/test_stations.cpp.o"
  "CMakeFiles/mts_test_lip.dir/lip/test_stations.cpp.o.d"
  "mts_test_lip"
  "mts_test_lip.pdb"
  "mts_test_lip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_lip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
