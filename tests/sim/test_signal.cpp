#include "sim/signal.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mts::sim {
namespace {

TEST(Signal, InitialValue) {
  Simulation sim;
  Wire w(sim, "w", true);
  EXPECT_TRUE(w.read());
  Word d(sim, "d", 42);
  EXPECT_EQ(d.read(), 42u);
}

TEST(Signal, SetNotifiesOnChangeOnly) {
  Simulation sim;
  Wire w(sim, "w");
  int changes = 0;
  w.on_change([&](bool, bool) { ++changes; });
  w.set(false);  // no change
  EXPECT_EQ(changes, 0);
  w.set(true);
  EXPECT_EQ(changes, 1);
  w.set(true);  // no change
  EXPECT_EQ(changes, 1);
}

TEST(Signal, ListenerSeesOldAndNewValues) {
  Simulation sim;
  Word d(sim, "d", 7);
  std::uint64_t seen_old = 0, seen_new = 0;
  d.on_change([&](const std::uint64_t& o, const std::uint64_t& n) {
    seen_old = o;
    seen_new = n;
  });
  d.set(9);
  EXPECT_EQ(seen_old, 7u);
  EXPECT_EQ(seen_new, 9u);
}

TEST(Signal, TransportWritesAllCommitInOrder) {
  Simulation sim;
  Wire w(sim, "w");
  std::vector<bool> history;
  w.on_change([&](bool, bool n) { history.push_back(n); });
  w.write(true, 10, DelayKind::kTransport);
  w.write(false, 20, DelayKind::kTransport);
  w.write(true, 30, DelayKind::kTransport);
  sim.run();
  EXPECT_EQ(history, (std::vector<bool>{true, false, true}));
}

TEST(Signal, InertialWriteCancelsPending) {
  Simulation sim;
  Wire w(sim, "w");
  int changes = 0;
  w.on_change([&](bool, bool) { ++changes; });
  w.write(true, 100, DelayKind::kInertial);
  // Before the first commits, the driver changes its mind: pulse filtered.
  sim.run_until(50);
  w.write(false, 100, DelayKind::kInertial);
  sim.run();
  EXPECT_EQ(changes, 0);
  EXPECT_FALSE(w.read());
}

TEST(Signal, InertialGlitchFilteredButSteadyValuePasses) {
  Simulation sim;
  Wire w(sim, "w");
  w.write(true, 100, DelayKind::kInertial);
  sim.run();
  EXPECT_TRUE(w.read());
}

TEST(Signal, PendingWritesTracked) {
  Simulation sim;
  Wire w(sim, "w");
  w.write(true, 10, DelayKind::kTransport);
  w.write(true, 20, DelayKind::kTransport);
  EXPECT_EQ(w.pending_writes(), 2u);
  sim.run();
  EXPECT_EQ(w.pending_writes(), 0u);
}

TEST(Signal, EdgeHelpers) {
  Simulation sim;
  Wire w(sim, "w");
  int rises = 0, falls = 0;
  on_rise(w, [&] { ++rises; });
  on_fall(w, [&] { ++falls; });
  w.set(true);
  w.set(false);
  w.set(true);
  EXPECT_EQ(rises, 2);
  EXPECT_EQ(falls, 1);
}

TEST(Signal, ListenersAddedDuringNotificationMissThatEvent) {
  Simulation sim;
  Wire w(sim, "w");
  int second_listener_hits = 0;
  w.on_change([&](bool, bool) {
    w.on_change([&](bool, bool) { ++second_listener_hits; });
  });
  w.set(true);
  EXPECT_EQ(second_listener_hits, 0);
  w.set(false);
  EXPECT_EQ(second_listener_hits, 1);
}

TEST(Signal, NameAndSimulationAccessors) {
  Simulation sim;
  Wire w(sim, "top.sub.w");
  EXPECT_EQ(w.name(), "top.sub.w");
  EXPECT_EQ(&w.simulation(), &sim);
}

}  // namespace
}  // namespace mts::sim
