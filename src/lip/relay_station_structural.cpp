#include "lip/relay_station_structural.hpp"

#include "gates/combinational.hpp"
#include "gates/flops.hpp"

namespace mts::lip {

StructuralRelayStation::StructuralRelayStation(
    sim::Simulation& sim, const std::string& name, sim::Wire& clk,
    sim::Word& in_data, sim::Wire& in_valid, sim::Wire& stop_out,
    sim::Word& out_data, sim::Wire& out_valid, sim::Wire& stop_in,
    const gates::DelayModel& dm, gates::TimingDomain* domain)
    : nl_(sim, name) {
  // Control state: AUX occupancy simply tracks stopIn (see header).
  aux_occ_ = &nl_.wire("aux_occ");
  nl_.add<gates::Etdff>(sim, nl_.qualified("auxOccFf"), clk, stop_in, nullptr,
                        *aux_occ_, dm.flop, domain, false);
  gates::gate_into(nl_, "stopOutBuf", gates::GateOp::kBuf, {aux_occ_}, stop_out,
                   dm.gate(1));

  sim::Wire& not_stop = gates::make_gate(nl_, "notStop", gates::GateOp::kNot,
                                         {&stop_in}, dm, 3);
  // AUX captures the in-flight packet at the stall onset.
  sim::Wire& aux_cap =
      gates::make_gate(nl_, "auxCap", gates::GateOp::kAndNotLast,
                       {&stop_in, aux_occ_}, dm, 2);

  sim::Word& aux_q = nl_.word("aux");
  sim::Wire& aux_v = nl_.wire("aux_v");
  nl_.add<gates::WordRegister>(sim, nl_.qualified("auxReg"), clk, in_data,
                               &aux_cap, aux_q, dm.flop, domain);
  nl_.add<gates::Etdff>(sim, nl_.qualified("auxVFf"), clk, in_valid, &aux_cap,
                        aux_v, dm.flop, domain, false);

  // MR refills from AUX while draining a stall, from the input otherwise.
  sim::Word& mr_d = nl_.word("mr_d");
  nl_.add<gates::WordMux>(sim, nl_.qualified("mrMux"), *aux_occ_, aux_q,
                          in_data, mr_d, dm.gate(2));
  sim::Wire& mr_v_d = nl_.wire("mr_v_d");
  nl_.add<gates::Gate>(
      sim, nl_.qualified("mrVMux"),
      std::vector<sim::Wire*>{aux_occ_, &aux_v, &in_valid}, mr_v_d,
      [](const std::vector<bool>& v) { return v[0] ? v[1] : v[2]; },
      dm.gate(3));

  sim::Word& mr_q = nl_.word("mr");
  sim::Wire& mr_v = nl_.wire("mr_v");
  nl_.add<gates::WordRegister>(sim, nl_.qualified("mrReg"), clk, mr_d,
                               &not_stop, mr_q, dm.flop, domain);
  nl_.add<gates::Etdff>(sim, nl_.qualified("mrVFf"), clk, mr_v_d, &not_stop,
                        mr_v, dm.flop, domain, false);

  // Registered output stage.
  nl_.add<gates::WordRegister>(sim, nl_.qualified("outReg"), clk, mr_q,
                               &not_stop, out_data, dm.flop, domain);
  nl_.add<gates::Etdff>(sim, nl_.qualified("outVFf"), clk, mr_v, &not_stop,
                        out_valid, dm.flop, domain, false);
}

}  // namespace mts::lip
