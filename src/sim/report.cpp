#include "sim/report.hpp"

#include <utility>

namespace mts::sim {

void Report::add(Time t, Severity sev, std::string category, std::string message) {
  ++per_category_[category];
  if (sev == Severity::kViolation || sev == Severity::kError) ++failures_;
  if (entries_.size() < max_entries_) {
    entries_.push_back(ReportEntry{t, sev, std::move(category), std::move(message)});
  }
}

std::size_t Report::count(const std::string& category) const {
  auto it = per_category_.find(category);
  return it == per_category_.end() ? 0 : it->second;
}

void Report::clear() {
  entries_.clear();
  per_category_.clear();
  failures_ = 0;
  kernel_ = KernelStats{};
}

}  // namespace mts::sim
