// Simulation context: one object owning the scheduler, the diagnostics
// report and the random source. Every component takes a Simulation& and
// keeps it for its lifetime; the Simulation must outlive all components.
#pragma once

#include <cstdint>
#include <random>

#include "sim/report.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/watchdog.hpp"

namespace mts::verify {
class Hub;
}  // namespace mts::verify

namespace mts::sim {

class FaultPlan;
struct Observability;

class Simulation {
 public:
  /// `seed` drives every stochastic element (jitter, metastability
  /// resolution, random stimulus) so runs are reproducible.
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Scheduler& sched() noexcept { return sched_; }
  Report& report() noexcept { return report_; }
  std::mt19937_64& rng() noexcept { return rng_; }

  /// Returns this Simulation to the state of a freshly constructed
  /// `Simulation(seed)` -- time 0, empty queues, cleared report, reseeded
  /// RNG, faults and observability disarmed -- while keeping the
  /// scheduler's grown event arenas, so back-to-back runs on one object
  /// stay allocation-free (the campaign engine's per-run hook; see
  /// sim/campaign.hpp). Components built against the previous run must be
  /// destroyed first: their listeners and pending events are dropped.
  void reset(std::uint64_t seed) {
    sched_.reset();
    sched_.set_profiler(nullptr);
    sched_.set_watchdog(nullptr);
    report_.clear();
    rng_.seed(seed);
    faults_ = nullptr;
    obs_ = nullptr;
    monitors_ = nullptr;
  }

  /// Arms (or, with nullptr, disarms) a fault-injection plan. Components
  /// consult the plan at their hazard points (flop sampling windows, clock
  /// period generation, bundled-data launches); with no plan armed those
  /// paths cost one branch on this pointer and behave nominally. The plan
  /// must outlive the simulation or be disarmed first.
  void arm_faults(FaultPlan* plan) noexcept { faults_ = plan; }
  FaultPlan* faults() const noexcept { return faults_; }

  /// Arms (nullptr: disarms) an observability bundle (trace session +
  /// metrics registry + kernel profiler; see sim/observe.hpp). Components
  /// check this ONCE, at construction, to decide whether to attach their
  /// tracing/metrics hooks -- arm before building the design; components
  /// built while disarmed stay on the seed fast path for their lifetime.
  /// Prefer Observability::arm(sim), which also arms the profiler.
  void set_observability(Observability* o) noexcept { obs_ = o; }
  Observability* observability() const noexcept { return obs_; }

  /// Arms (nullptr: disarms) a runtime protocol-monitor hub (see
  /// verify/hub.hpp). Same contract as observability: components check
  /// this ONCE, at construction, to decide whether to attach their
  /// invariant checkers; arm before building the design. Prefer
  /// verify::Hub::arm(sim), which also wires the Report sink.
  void arm_monitors(verify::Hub* hub) noexcept { monitors_ = hub; }
  verify::Hub* monitors() const noexcept { return monitors_; }

  Time now() const noexcept { return sched_.now(); }
  void run_until(Time t) {
    sched_.run_until(t);
    report_.set_kernel(sched_.stats());
    notify_drain();
  }
  std::size_t run(std::size_t max_events = Scheduler::kDefaultRunBudget) {
    const std::size_t n = sched_.run(max_events);
    report_.set_kernel(sched_.stats());
    notify_drain();
    return n;
  }

 private:
  /// Deadlock hook: an armed watchdog inspects its probes whenever a run
  /// leaves the queue empty -- a drained queue with transactions still in
  /// flight can never complete (throws DeadlockError; sim/watchdog.hpp).
  void notify_drain() {
    Watchdog* wd = sched_.watchdog();
    if (wd != nullptr && sched_.empty()) wd->on_drain(sched_.now());
  }

  Scheduler sched_;
  Report report_;
  std::mt19937_64 rng_;
  FaultPlan* faults_ = nullptr;
  Observability* obs_ = nullptr;
  verify::Hub* monitors_ = nullptr;
};

}  // namespace mts::sim
