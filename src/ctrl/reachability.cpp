#include "ctrl/reachability.hpp"

#include <map>
#include <queue>
#include <set>

#include "sim/error.hpp"

namespace mts::ctrl {

namespace {

using Marking = std::uint64_t;

Marking to_bits(const std::vector<unsigned>& places) {
  Marking m = 0;
  for (unsigned p : places) m |= Marking{1} << p;
  return m;
}

bool enabled(const PnTransition& t, Marking m) {
  const Marking pre = to_bits(t.pre);
  return (m & pre) == pre;
}

/// Fires t from m. Returns false (and leaves `out` untouched) on a
/// 1-safety violation.
bool fire(const PnTransition& t, Marking m, Marking& out) {
  const Marking pre = to_bits(t.pre);
  const Marking post = to_bits(t.post);
  const Marking after_consume = m & ~pre;
  if ((after_consume & post) != 0) return false;  // token already present
  out = after_consume | post;
  return true;
}

}  // namespace

ReachabilityResult analyze(const PetriNet& net, std::size_t max_markings) {
  if (net.num_places > 64) {
    throw ConfigError("reachability: nets with more than 64 places are not "
                      "supported");
  }
  ReachabilityResult r;
  r.one_safe = true;

  const Marking initial = to_bits(net.initial_marking);
  std::set<Marking> seen{initial};
  // successors[m] = markings reachable in one firing; fired_from[m] =
  // indices of transitions enabled at m.
  std::map<Marking, std::vector<Marking>> successors;
  std::map<Marking, std::vector<std::size_t>> enabled_at;

  std::queue<Marking> frontier;
  frontier.push(initial);
  while (!frontier.empty()) {
    const Marking m = frontier.front();
    frontier.pop();
    auto& succ = successors[m];
    auto& en = enabled_at[m];
    for (std::size_t ti = 0; ti < net.transitions.size(); ++ti) {
      const PnTransition& t = net.transitions[ti];
      if (!enabled(t, m)) continue;
      en.push_back(ti);
      Marking next = 0;
      if (!fire(t, m, next)) {
        r.one_safe = false;
        if (r.violation.empty()) {
          r.violation = "firing '" + t.label + "' violates 1-safety";
        }
        continue;
      }
      succ.push_back(next);
      if (seen.insert(next).second) {
        if (seen.size() > max_markings) {
          throw ConfigError("reachability: marking explosion, more than "
                            "max_markings = " + std::to_string(max_markings) +
                            " reachable markings (net is likely unbounded or "
                            "too large)");
        }
        frontier.push(next);
      }
    }
  }
  r.reachable_markings = seen.size();

  // Deadlock freedom: every reachable marking enables something.
  r.deadlock_free = true;
  for (const Marking m : seen) {
    if (enabled_at[m].empty()) {
      r.deadlock_free = false;
      if (r.violation.empty()) r.violation = "reachable deadlock marking";
      break;
    }
  }

  // Liveness + reversibility via the strongly-reachable check: compute, for
  // each marking, the set reachable from it (transitive closure over this
  // small graph); every transition must be enabled somewhere in every
  // closure, and the initial marking must appear in every closure.
  r.live = true;
  r.reversible = true;
  for (const Marking start : seen) {
    std::set<Marking> closure{start};
    std::queue<Marking> q;
    q.push(start);
    while (!q.empty()) {
      const Marking m = q.front();
      q.pop();
      for (const Marking next : successors[m]) {
        if (closure.insert(next).second) q.push(next);
      }
    }
    if (closure.count(initial) == 0) {
      r.reversible = false;
      if (r.violation.empty()) {
        r.violation = "initial marking unreachable from some state";
      }
    }
    std::vector<bool> can_fire(net.transitions.size(), false);
    for (const Marking m : closure) {
      for (std::size_t ti : enabled_at[m]) can_fire[ti] = true;
    }
    for (std::size_t ti = 0; ti < can_fire.size(); ++ti) {
      if (!can_fire[ti]) {
        r.live = false;
        if (r.violation.empty()) {
          r.violation = "transition '" + net.transitions[ti].label +
                        "' is not live";
        }
      }
    }
    if (!r.live && !r.reversible) break;  // nothing more to learn
  }
  return r;
}

}  // namespace mts::ctrl
