#include "sim/trace.hpp"

#include <bitset>
#include <utility>

namespace mts::sim {

VcdWriter::VcdWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw ConfigError("VcdWriter: cannot open '" + path + "' for writing");
  }
}

VcdWriter::~VcdWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; a failed flush loses the trace tail only.
  }
}

std::string VcdWriter::next_id() {
  // Identifier codes are base-94 strings over the printable ASCII range.
  std::string id;
  std::uint64_t code = next_code_++;
  do {
    id.push_back(static_cast<char>('!' + code % 94));
    code /= 94;
  } while (code != 0);
  return id;
}

void VcdWriter::watch(Wire& w, std::string display_name) {
  if (started_) throw ConfigError("VcdWriter: watch() after start()");
  Var var{next_id(), display_name.empty() ? w.name() : std::move(display_name),
          1, w.read() ? 1u : 0u};
  vars_.push_back(var);
  const std::size_t index = vars_.size() - 1;
  w.on_change([this, index, &w](bool, bool now) {
    record(vars_[index], now ? 1u : 0u, w.simulation().now());
  });
}

void VcdWriter::watch(Word& w, unsigned width, std::string display_name) {
  if (started_) throw ConfigError("VcdWriter: watch() after start()");
  if (width == 0 || width > 64) throw ConfigError("VcdWriter: width must be 1..64");
  Var var{next_id(), display_name.empty() ? w.name() : std::move(display_name),
          width, w.read()};
  vars_.push_back(var);
  const std::size_t index = vars_.size() - 1;
  w.on_change([this, index, &w](std::uint64_t, std::uint64_t now) {
    record(vars_[index], now, w.simulation().now());
  });
}

void VcdWriter::start() {
  if (started_ || finished_) return;
  started_ = true;
  out_ << "$timescale 1ps $end\n$scope module mts $end\n";
  for (const auto& var : vars_) {
    out_ << "$var wire " << var.width << ' ' << var.id << ' ' << var.name
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (const auto& var : vars_) {
    if (var.width == 1) {
      out_ << (var.initial ? '1' : '0') << var.id << '\n';
    } else {
      out_ << 'b';
      for (unsigned b = var.width; b-- > 0;) out_ << ((var.initial >> b) & 1u);
      out_ << ' ' << var.id << '\n';
    }
  }
  out_ << "$end\n";
}

void VcdWriter::finish() {
  if (finished_) return;
  finished_ = true;
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

void VcdWriter::advance_time(Time t) {
  // time_emitted_, not `last_time_ == 0`: the latter re-emitted `#0` for
  // every value change at time zero.
  if (!time_emitted_ || t != last_time_) {
    out_ << '#' << t << '\n';
    last_time_ = t;
    time_emitted_ = true;
  }
}

void VcdWriter::record(const Var& var, std::uint64_t value, Time t) {
  if (!started_ || finished_) return;
  advance_time(t);
  if (var.width == 1) {
    out_ << (value ? '1' : '0') << var.id << '\n';
  } else {
    out_ << 'b';
    for (unsigned b = var.width; b-- > 0;) out_ << ((value >> b) & 1u);
    out_ << ' ' << var.id << '\n';
  }
}

}  // namespace mts::sim
