#include "sim/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace mts::sim {

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kViolation: return "violation";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Report::add(Time t, Severity sev, std::string category, std::string message) {
  ++per_category_[category];
  ++total_added_;
  if (sev == Severity::kViolation || sev == Severity::kError) ++failures_;
  if (entries_.size() < max_entries_) {
    entries_.push_back(ReportEntry{t, sev, std::move(category), std::move(message)});
  }
}

std::size_t Report::count(const std::string& category) const {
  auto it = per_category_.find(category);
  return it == per_category_.end() ? 0 : it->second;
}

void Report::merge(const Report& other) {
  for (const auto& [cat, n] : other.per_category_) per_category_[cat] += n;
  failures_ += other.failures_;
  total_added_ += other.total_added_;
  for (const ReportEntry& e : other.entries_) {
    if (entries_.size() >= max_entries_) break;
    entries_.push_back(e);
  }
  kernel_.events_executed += other.kernel_.events_executed;
  kernel_.pool_high_water += other.kernel_.pool_high_water;
  kernel_.peak_queue_depth =
      std::max(kernel_.peak_queue_depth, other.kernel_.peak_queue_depth);
  // Hot-site rows: concatenate by label, summing duplicates, hottest first.
  if (!other.kernel_.hot_sites.empty()) {
    for (const KernelSiteStat& s : other.kernel_.hot_sites) {
      bool found = false;
      for (KernelSiteStat& mine : kernel_.hot_sites) {
        if (mine.label == s.label) {
          mine.events += s.events;
          mine.wall_ns += s.wall_ns;
          found = true;
          break;
        }
      }
      if (!found) kernel_.hot_sites.push_back(s);
    }
    std::sort(kernel_.hot_sites.begin(), kernel_.hot_sites.end(),
              [](const KernelSiteStat& a, const KernelSiteStat& b) {
                return a.wall_ns != b.wall_ns ? a.wall_ns > b.wall_ns
                                              : a.events > b.events;
              });
  }
}

void Report::restore(std::vector<ReportEntry> entries,
                     std::map<std::string, std::size_t> per_category,
                     std::size_t failures, std::uint64_t total_added,
                     KernelStats kernel) {
  entries_ = std::move(entries);
  per_category_ = std::move(per_category);
  failures_ = failures;
  total_added_ = total_added;
  kernel_ = std::move(kernel);
}

void Report::clear() {
  entries_.clear();
  per_category_.clear();
  failures_ = 0;
  total_added_ = 0;
  kernel_ = KernelStats{};
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"failures\": " << failures_ << ",\n";
  os << "  \"entries_total\": " << total_added_ << ",\n";
  os << "  \"entries_recorded\": " << entries_.size() << ",\n";
  os << "  \"categories\": {";
  bool first = true;
  for (const auto& [cat, n] : per_category_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(cat) << "\": " << n;
  }
  os << "},\n";
  os << "  \"entries\": [";
  first = true;
  for (const auto& e : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"t\": " << e.time << ", \"severity\": \""
       << severity_name(e.severity) << "\", \"category\": \""
       << json_escape(e.category) << "\", \"message\": \""
       << json_escape(e.message) << "\"}";
  }
  os << (first ? "]" : "\n  ]") << ",\n";
  os << "  \"kernel\": {\"events_executed\": " << kernel_.events_executed
     << ", \"peak_queue_depth\": " << kernel_.peak_queue_depth
     << ", \"pool_high_water\": " << kernel_.pool_high_water;
  if (!kernel_.hot_sites.empty()) {
    os << ", \"hot_sites\": [";
    first = true;
    for (const auto& s : kernel_.hot_sites) {
      if (!first) os << ",";
      first = false;
      os << "\n    {\"site\": \"" << json_escape(s.label)
         << "\", \"events\": " << s.events << ", \"wall_ns\": " << s.wall_ns
         << "}";
    }
    os << "\n  ]";
  }
  os << "}";
  if (metrics_provider_) {
    os << ",\n  \"metrics\": " << metrics_provider_();
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace mts::sim
