# Empty dependencies file for bench_fig3_protocols.
# This may be replaced when dependencies are built.
