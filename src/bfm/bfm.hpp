// Umbrella header for the bus-functional models and checkers.
#pragma once

#include "bfm/async_drivers.hpp"  // IWYU pragma: export
#include "bfm/rs_drivers.hpp"     // IWYU pragma: export
#include "bfm/scoreboard.hpp"     // IWYU pragma: export
#include "bfm/sync_drivers.hpp"   // IWYU pragma: export
