// check_ring() end-to-end: clean proofs, search-mode fallbacks, budget
// truncation, and counterexample JSON shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "mc/checker.hpp"
#include "mc/mutations.hpp"
#include "mc/property.hpp"
#include "mc/ring_model.hpp"

namespace mts::mc {
namespace {

bool proves(const CheckResult& res, const std::string& prop) {
  return std::find(res.proved.begin(), res.proved.end(), prop) !=
         res.proved.end();
}

TEST(Checker, CleanRingCapacity4ProvesEverything) {
  const CheckResult res = check_ring(default_ring(4), {});
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(res.exhaustive);
  EXPECT_FALSE(res.cex.has_value());
  EXPECT_EQ(res.capacity, 4u);
  // State-space sizes are part of the determinism contract (EXPERIMENTS.md).
  EXPECT_EQ(res.macro_states, 80u);
  EXPECT_EQ(res.states, 2412u);
  EXPECT_EQ(res.edges, 4396u);
  EXPECT_EQ(res.proved.size(), 9u);
  for (const char* p : {"token-ring", "overflow", "underflow",
                        "handshake-order", "full-detector", "empty-detector",
                        "one-safety", "deadlock", "livelock"}) {
    EXPECT_TRUE(proves(res, p)) << p;
  }
}

TEST(Checker, CleanRingCapacity2Proves) {
  const CheckResult res = check_ring(default_ring(2), {});
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(res.exhaustive);
  EXPECT_GT(res.macro_states, 0u);
  EXPECT_GT(res.states, res.macro_states);
}

TEST(Checker, DfsFallbackIsBoundedAndNotExhaustive) {
  ExploreOptions opts;
  opts.dfs_depth = 40;
  const CheckResult res = check_ring(default_ring(4), opts);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.exhaustive);  // bounded search never claims a proof
  EXPECT_TRUE(res.proved.empty());
  EXPECT_GT(res.states, 0u);
}

TEST(Checker, MaxStatesBudgetTruncatesWithoutProof) {
  ExploreOptions opts;
  opts.max_states = 100;
  const CheckResult res = check_ring(default_ring(4), opts);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.exhaustive);
  EXPECT_TRUE(res.proved.empty());
  EXPECT_LE(res.states, 100u + 8u);  // budget plus at most one frontier batch
}

TEST(Checker, MacroOnlySearchSkipsTheFullPass) {
  ExploreOptions opts;
  opts.full_interleaving = false;
  const CheckResult res = check_ring(default_ring(4), opts);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.exhaustive);
  EXPECT_EQ(res.states, 0u);
  EXPECT_EQ(res.macro_states, 80u);
}

TEST(Checker, CounterexampleJsonIsStructured) {
  // The dropped get-side C-element guard lets re+ fire into an empty cell.
  RingConfig cfg = default_ring(4);
  cfg.name = "mutant";
  cfg.drop_get_guard = true;
  const CheckResult res = check_ring(cfg, {});
  ASSERT_FALSE(res.ok);
  ASSERT_TRUE(res.cex.has_value());
  EXPECT_EQ(res.cex->property, Property::kUnderflow);
  EXPECT_TRUE(res.cex->replayable);
  EXPECT_GT(res.cex->trace.size(), 0u);
  const std::string json = res.cex->to_json();
  EXPECT_NE(json.find("\"property\": \"underflow\""), std::string::npos);
  EXPECT_NE(json.find("\"replayable\": true"), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  const std::string full = res.to_json();
  EXPECT_NE(full.find("\"cex\""), std::string::npos);
  EXPECT_NE(full.find("\"exhaustive\""), std::string::npos);
}

TEST(Checker, PropertyNamesMapToRuntimeInvariants) {
  EXPECT_STREQ(property_name(Property::kTokenRing), "token-ring");
  EXPECT_EQ(to_invariant(Property::kOverflow), verify::Invariant::kOverflow);
  EXPECT_EQ(to_invariant(Property::kDeadlock), verify::Invariant::kDeadlock);
}

}  // namespace
}  // namespace mts::mc
