#include "mc/checker.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "mc/state_store.hpp"
#include "sim/error.hpp"
#include "sim/report.hpp"

namespace mts::mc {

namespace {

/// Ids from the root (inclusive) to `id` (inclusive), following parents.
std::vector<std::uint32_t> path_to(const std::vector<std::uint32_t>& parent,
                                   std::uint32_t id) {
  std::vector<std::uint32_t> path{id};
  while (parent[path.back()] != path.back()) path.push_back(parent[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

/// Label of taking `a` out of `s` without running apply(): env actions are
/// their own names; a commit flips the queue head.
std::string step_label(const RingModel& model, const RingState& s,
                       ActionKind a) {
  if (a != ActionKind::kCommit) return action_name(a);
  const unsigned wire = s.queue.front();
  return model.wire_name(wire) + (s.wires[wire] ? "-" : "+");
}

}  // namespace

std::string Counterexample::to_json() const {
  std::string s = "{\"property\": \"" + std::string(property_name(property)) +
                  "\", \"site\": \"" + sim::json_escape(site) +
                  "\", \"detail\": \"" + sim::json_escape(detail) +
                  "\", \"env_step\": " + std::to_string(env_step) +
                  ", \"replayable\": " + (replayable ? "true" : "false") +
                  ", \"trace\": [";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) s += ", ";
    s += "{\"label\": \"" + sim::json_escape(trace[i].label) + "\", \"env\": " +
         (trace[i].env ? "true" : "false") + "}";
  }
  s += "]}";
  return s;
}

std::string CheckResult::to_json() const {
  std::string s = "{\"name\": \"" + sim::json_escape(name) +
                  "\", \"capacity\": " + std::to_string(capacity) +
                  ", \"ok\": " + (ok ? "true" : "false") +
                  ", \"exhaustive\": " + (exhaustive ? "true" : "false") +
                  ", \"macro_states\": " + std::to_string(macro_states) +
                  ", \"states\": " + std::to_string(states) +
                  ", \"edges\": " + std::to_string(edges) +
                  ", \"peak_frontier\": " + std::to_string(peak_frontier) +
                  ", \"proved\": [";
  for (std::size_t i = 0; i < proved.size(); ++i) {
    if (i != 0) s += ", ";
    s += "\"" + proved[i] + "\"";
  }
  s += "], \"cex\": ";
  s += cex ? cex->to_json() : "null";
  s += "}";
  return s;
}

namespace {

/// Macro pass: quiescent-state BFS, deterministic drain per env action.
/// Returns true when a counterexample was found (written to *result.cex).
void macro_pass(const RingModel& model, const ExploreOptions& opts,
                CheckResult& result) {
  StateStore store(model.record_size());
  std::vector<std::uint8_t> rec(model.record_size());
  std::vector<std::uint32_t> parent;
  std::vector<ActionKind> via;
  std::vector<std::uint32_t> depth;

  const RingState init = model.initial();
  model.pack(init, rec.data());
  store.intern(rec.data());
  parent.push_back(0);
  via.push_back(ActionKind::kCommit);  // unused for the root
  depth.push_back(0);

  auto make_cex = [&](std::uint32_t from, std::optional<ActionKind> act,
                      Property prop, std::string site, std::string detail) {
    Counterexample cex;
    cex.property = prop;
    cex.site = std::move(site);
    cex.detail = std::move(detail);
    cex.replayable = true;
    const std::vector<std::uint32_t> path = path_to(parent, from);
    for (std::size_t i = 1; i < path.size(); ++i) {
      cex.env_actions.push_back(via[path[i]]);
      cex.trace.push_back({action_name(via[path[i]]), true});
    }
    if (act) {
      cex.env_actions.push_back(*act);
      cex.trace.push_back({action_name(*act), true});
    }
    cex.env_step = cex.trace.size();
    result.cex = std::move(cex);
  };

  std::deque<std::uint32_t> frontier{0};
  while (!frontier.empty() && !result.cex) {
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    const RingState s = model.unpack(store.bytes(id));
    const std::vector<ActionKind> actions = model.enabled_actions(s, true);
    if (actions.empty()) {
      make_cex(id, std::nullopt, Property::kDeadlock, "mc.env",
               "quiescent state with both interfaces blocked: no pending "
               "event and req != ack on each side");
      break;
    }
    for (ActionKind a : actions) {
      RingState cur;
      StepResult r = model.apply(s, a, &cur);
      if (!r.violations.empty()) {
        const McViolation& v = r.violations.front();
        make_cex(id, a, v.property, v.site, v.detail);
        break;
      }
      std::size_t drain = 0;
      bool bad = false;
      while (!cur.queue.empty()) {
        if (++drain > opts.max_drain) {
          make_cex(id, a, Property::kLivelock, "mc.env",
                   "internal activity did not quiesce within " +
                       std::to_string(opts.max_drain) + " commits after " +
                       action_name(a));
          bad = true;
          break;
        }
        RingState nxt;
        StepResult rc = model.apply(cur, ActionKind::kCommit, &nxt);
        if (!rc.violations.empty()) {
          const McViolation& v = rc.violations.front();
          make_cex(id, a, v.property, v.site, v.detail);
          bad = true;
          break;
        }
        cur = std::move(nxt);
      }
      if (bad) break;
      model.pack(cur, rec.data());
      const auto [nid, inserted] = store.intern(rec.data());
      if (inserted) {
        parent.push_back(id);
        via.push_back(a);
        depth.push_back(depth[id] + 1);
        frontier.push_back(nid);
      }
    }
  }
  result.macro_states = store.size();
}

/// Full pass: every interleaving of commits and env edges. BFS by default;
/// bounded-depth DFS when opts.dfs_depth > 0.
void full_pass(const RingModel& model, const ExploreOptions& opts,
               CheckResult& result) {
  StateStore store(model.record_size());
  std::vector<std::uint8_t> rec(model.record_size());
  std::vector<std::uint32_t> parent;
  std::vector<std::uint8_t> via;
  std::vector<std::uint32_t> depth;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::uint32_t> progress_src;
  const bool dfs = opts.dfs_depth > 0;

  const RingState init = model.initial();
  model.pack(init, rec.data());
  store.intern(rec.data());
  parent.push_back(0);
  via.push_back(0);
  depth.push_back(0);

  auto make_cex = [&](std::uint32_t from, std::optional<ActionKind> act,
                      const std::string& final_label, Property prop,
                      std::string site, std::string detail) {
    Counterexample cex;
    cex.property = prop;
    cex.site = std::move(site);
    cex.detail = std::move(detail);
    cex.replayable = false;
    const std::vector<std::uint32_t> path = path_to(parent, from);
    for (std::size_t i = 1; i < path.size(); ++i) {
      const RingState ps = model.unpack(store.bytes(path[i - 1]));
      const auto a = static_cast<ActionKind>(via[path[i]]);
      const bool env = a != ActionKind::kCommit;
      cex.trace.push_back({step_label(model, ps, a), env});
      if (env) cex.env_actions.push_back(a);
    }
    if (act) {
      const bool env = *act != ActionKind::kCommit;
      cex.trace.push_back({final_label, env});
      if (env) cex.env_actions.push_back(*act);
    }
    cex.env_step = cex.env_actions.size();
    result.cex = std::move(cex);
  };

  std::deque<std::uint32_t> frontier{0};
  bool truncated = false;
  while (!frontier.empty() && !result.cex) {
    std::uint32_t id;
    if (dfs) {
      id = frontier.back();
      frontier.pop_back();
    } else {
      id = frontier.front();
      frontier.pop_front();
    }
    const RingState s = model.unpack(store.bytes(id));
    const std::vector<ActionKind> actions = model.enabled_actions(s, false);
    if (actions.empty()) {
      make_cex(id, std::nullopt, "", Property::kDeadlock, "mc.env",
               "state with no enabled action: no pending event and req != "
               "ack on each side");
      break;
    }
    if (dfs && depth[id] >= opts.dfs_depth) {
      truncated = true;
      continue;
    }
    for (ActionKind a : actions) {
      RingState next;
      StepResult r = model.apply(s, a, &next);
      ++result.edges;
      if (!r.violations.empty()) {
        const McViolation& v = r.violations.front();
        make_cex(id, a, r.label, v.property, v.site, v.detail);
        break;
      }
      model.pack(next, rec.data());
      const auto [nid, inserted] = store.intern(rec.data());
      if (inserted) {
        parent.push_back(id);
        via.push_back(static_cast<std::uint8_t>(a));
        depth.push_back(depth[id] + 1);
        frontier.push_back(nid);
        result.peak_frontier = std::max(result.peak_frontier, frontier.size());
      }
      if (opts.check_liveness) {
        edges.emplace_back(id, nid);
        if (r.progress_put || r.progress_get) progress_src.push_back(id);
      }
      if (store.size() >= opts.max_states) {
        truncated = true;
        break;
      }
    }
    if (truncated && store.size() >= opts.max_states) break;
  }
  result.states = store.size();
  result.exhaustive = !truncated && frontier.empty() && !dfs;

  if (result.cex || !result.exhaustive || !opts.check_liveness) return;

  // Livelock: a state is live iff a progress edge (one that completes a
  // transaction) is reachable from it. Compute the backward closure of the
  // progress-edge sources over the full edge relation; any state outside it
  // can run forever without ever completing a put or a get.
  const std::size_t n = store.size();
  std::vector<std::uint32_t> head(n + 1, 0);
  for (const auto& e : edges) ++head[e.second + 1];
  for (std::size_t i = 1; i <= n; ++i) head[i] += head[i - 1];
  std::vector<std::uint32_t> rev(edges.size());
  {
    std::vector<std::uint32_t> at(head.begin(), head.end() - 1);
    for (const auto& e : edges) rev[at[e.second]++] = e.first;
  }
  std::vector<char> live(n, 0);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t src : progress_src) {
    if (!live[src]) {
      live[src] = 1;
      stack.push_back(src);
    }
  }
  while (!stack.empty()) {
    const std::uint32_t t = stack.back();
    stack.pop_back();
    for (std::uint32_t i = head[t]; i < head[t + 1]; ++i) {
      const std::uint32_t s2 = rev[i];
      if (!live[s2]) {
        live[s2] = 1;
        stack.push_back(s2);
      }
    }
  }
  for (std::uint32_t id = 0; id < n; ++id) {
    if (!live[id]) {
      make_cex(id, std::nullopt, "", Property::kLivelock, "mc.liveness",
               "no completed transaction is reachable from this state");
      result.exhaustive = true;  // the proof itself is still complete
      return;
    }
  }
}

}  // namespace

CheckResult check_ring(const RingConfig& cfg, const ExploreOptions& opts) {
  RingModel model(cfg);
  CheckResult result;
  result.name = cfg.name;
  result.capacity = cfg.capacity;

  macro_pass(model, opts, result);
  if (!result.cex && opts.full_interleaving) {
    full_pass(model, opts, result);
  }

  result.ok = !result.cex;
  if (result.ok && result.exhaustive) {
    result.proved = {"token-ring",    "overflow",  "underflow",
                     "handshake-order", "full-detector", "empty-detector",
                     "one-safety",    "deadlock"};
    if (opts.check_liveness) result.proved.push_back("livelock");
  }
  return result;
}

}  // namespace mts::mc
