// Run-wide diagnostics: timing violations, protocol errors, warnings.
//
// Checkers (setup/hold monitors, bus-conflict detection, scoreboards) never
// decide policy; they record findings here. Harness code inspects the counts
// to decide pass/fail -- e.g. the max-frequency search treats any "setup" or
// "hold" violation in the measured clock domain as a failed trial.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/kernel_stats.hpp"
#include "sim/time.hpp"

namespace mts::sim {

enum class Severity { kInfo, kWarning, kViolation, kError };

struct ReportEntry {
  Time time = 0;
  Severity severity = Severity::kInfo;
  std::string category;  ///< e.g. "setup", "hold", "bus-conflict", "scoreboard"
  std::string message;
};

class Report {
 public:
  void add(Time t, Severity sev, std::string category, std::string message);

  /// Number of entries at kViolation or kError severity, any category.
  std::size_t failure_count() const noexcept { return failures_; }

  /// Number of entries recorded under `category` (any severity).
  std::size_t count(const std::string& category) const;

  const std::vector<ReportEntry>& entries() const noexcept { return entries_; }

  /// Drops all recorded entries and counters.
  void clear();

  /// Caps stored entries to bound memory in long runs; counters keep
  /// counting past the cap.
  void set_max_entries(std::size_t n) { max_entries_ = n; }

  /// Kernel health counters, refreshed by Simulation after run()/run_until()
  /// so harnesses can report them alongside the timing findings.
  void set_kernel(const KernelStats& s) noexcept { kernel_ = s; }
  const KernelStats& kernel() const noexcept { return kernel_; }

 private:
  std::vector<ReportEntry> entries_;
  std::map<std::string, std::size_t> per_category_;
  std::size_t failures_ = 0;
  std::size_t max_entries_ = 10'000;
  KernelStats kernel_;
};

}  // namespace mts::sim
