#include "fifo/mixed_clock_fifo.hpp"

#include <utility>

#include "ctrl/specs.hpp"
#include "fifo/detectors.hpp"
#include "fifo/interface_sides.hpp"
#include "gates/combinational.hpp"
#include "gates/latch.hpp"
#include "sim/error.hpp"

namespace mts::fifo {

MixedClockFifo::MixedClockFifo(sim::Simulation& sim, const std::string& name,
                               const FifoConfig& cfg, sim::Wire& clk_put,
                               sim::Wire& clk_get)
    : sim_(sim),
      cfg_(cfg),
      nl_(sim, name),
      put_dom_(sim, name + ".put"),
      get_dom_(sim, name + ".get") {
  cfg_.validate();
  const unsigned n = cfg_.capacity;
  const gates::DelayModel& dm = cfg_.dm;

  if (sim::Observability* o = sim.observability()) {
    obs_ = std::make_unique<sim::TransitObserver>(
        *o, sim, name, clk_put.name(), clk_get.name(), n);
  }

  // --- external interface wires ---
  req_put_ = &nl_.wire("req_put");
  data_put_ = &nl_.word("data_put");
  req_get_ = &nl_.wire("req_get");
  stop_in_ = &nl_.wire("stop_in");
  data_get_ = &nl_.word("data_get");
  valid_bus_ = &nl_.wire("valid_bus");
  valid_ext_ = &nl_.wire("valid_get");
  empty_w_ = &nl_.wire("empty", true);

  // --- broadcast enables (driven by the interface sides below) ---
  en_put_b_ = &nl_.wire("en_put_b");
  en_get_b_ = &nl_.wire("en_get_b");

  // --- token rings ---
  std::vector<sim::Wire*> ptok(n);
  std::vector<sim::Wire*> gtok(n);
  for (unsigned i = 0; i < n; ++i) {
    ptok[i] = &nl_.wire("c" + std::to_string(i) + ".ptok", i == 0);
    gtok[i] = &nl_.wire("c" + std::to_string(i) + ".gtok", i == 0);
  }
  ptok_ = ptok;
  gtok_ = gtok;

  // --- shared output buses ---
  auto& data_bus = nl_.add<gates::TristateBus<std::uint64_t>>(
      sim, nl_.qualified("get_data_bus"), *data_get_,
      dm.tristate_bus(n, cfg_.width));
  auto& valid_tbus = nl_.add<gates::TristateBus<bool>>(
      sim, nl_.qualified("valid_bus_ts"), *valid_bus_, dm.tristate_bus(n, 1));

  // --- cells: sync put part + sync get part + SR-latch DV (Fig. 5) ---
  e_.resize(n);
  f_.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    const std::string ci = "c" + std::to_string(i);
    auto& put_part = nl_.add<SyncPutPart>(nl_, i, clk_put, *en_put_b_,
                                          *ptok[(i + n - 1) % n], *ptok[i],
                                          *data_put_, *req_put_, cfg_, &put_dom_,
                                          i == 0);
    auto& get_part = nl_.add<SyncGetPart>(nl_, i, clk_get, *en_get_b_,
                                          *gtok[(i + n - 1) % n], *gtok[i], cfg_,
                                          &get_dom_, i == 0);

    // Data-validity controller: the paper's SR latch (set on put, reset on
    // get, both asynchronous to the opposite clock -- Section 3.1 actions
    // (b)), or the serialized conservative net (see DvKind).
    e_[i] = &nl_.wire(ci + ".e", true);
    f_[i] = &nl_.wire(ci + ".f", false);
    if (cfg_.dv_kind == DvKind::kSrLatch) {
      nl_.add<gates::SrLatch>(sim, nl_.qualified(ci + ".dv"), put_part.we(),
                              get_part.re(), *f_[i], *e_[i], dm.sr_latch, false);
    } else {
      nl_.add<ctrl::PetriEngine>(
          sim, nl_.qualified(ci + ".dv"), ctrl::dv_linear_net(),
          std::vector<sim::Wire*>{&put_part.we(), &get_part.re()},
          std::vector<sim::Wire*>{e_[i], f_[i]}, dm.sr_latch);
    }

    data_bus.attach_driver(get_part.re(), put_part.reg_q());
    valid_tbus.attach_driver(get_part.re(), put_part.v_q());

    // Over/underflow monitors: an enabled put on a full cell or an enabled
    // get on an empty cell is a protocol failure (the max-frequency search
    // and the detector ablations count these).
    sim::Wire* fw = f_[i];
    put_part.we().on_rise([this, fw] {
      ++data_moves_;  // one register write per enqueue; data never moves again
      if (fw->read()) {
        ++overflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "overflow",
                          nl_.prefix() + ": put into a full cell");
        if (mon_ != nullptr) {
          verify::Violation v;
          v.time = sim_.now();
          v.invariant = verify::Invariant::kOverflow;
          v.site = nl_.prefix();
          v.observed = "put into a full cell";
          v.expected = "puts only while a cell is empty";
          mon_->hub->report(std::move(v));
        }
      }
      // we rises mid-cycle, before the latching edge: data_put/req_put still
      // carry the committing item. Relay mode enqueues void packets every
      // cycle; only valid ones become transactions.
      if (req_put_->read()) {
        std::uint64_t txn = 0;
        if (obs_ != nullptr) {
          txn = obs_->put_committed(data_put_->read(), occupancy() + 1);
        }
        if (mon_ != nullptr) mon_->stream->put(data_put_->read(), txn);
      }
    });
    sim::Wire* vq = &put_part.v_q();
    sim::Word* rq = &put_part.reg_q();
    get_part.re().on_rise([this, fw, vq, rq] {
      if (!fw->read()) {
        ++underflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "underflow",
                          nl_.prefix() + ": get from an empty cell");
        if (mon_ != nullptr) {
          verify::Violation v;
          v.time = sim_.now();
          v.invariant = verify::Invariant::kUnderflow;
          v.site = nl_.prefix();
          v.observed = "get from an empty cell";
          v.expected = "gets only while an item is resident";
          mon_->hub->report(std::move(v));
        }
      }
      // At re-rise the cell's registered outputs hold the departing item.
      if (vq->read()) {
        std::uint64_t txn = 0;
        if (obs_ != nullptr) {
          const unsigned occ = occupancy();
          txn = obs_->get_observed(rq->read(), occ > 0 ? occ - 1 : 0);
        }
        if (mon_ != nullptr) mon_->stream->get(rq->read(), txn);
      }
    });
  }

  // --- interface sides: detectors, synchronizers, controllers ---
  auto& put_side = nl_.add<SyncPutSide>(nl_, clk_put, cfg_, put_dom_, e_,
                                        *req_put_, *en_put_b_);
  full_raw_ = &put_side.full_raw();
  full_ext_ = &put_side.full_ext();

  auto& get_side = nl_.add<SyncGetSide>(nl_, clk_get, cfg_, get_dom_, f_,
                                        *req_get_, *stop_in_, *valid_bus_,
                                        *valid_ext_, *empty_w_, *en_get_b_);
  ne_raw_ = &get_side.ne_raw();
  oe_raw_ = &get_side.oe_raw();

  if (obs_ != nullptr) {
    // The synchronized empty flag falling is the moment the oldest item
    // becomes visible to the get clock domain -- the sync-crossing span.
    empty_w_->on_fall([this] { obs_->sync_crossed(); });
    if (cfg_.controller == ControllerKind::kRelayStation) {
      // Relay-station mode: a cycle where stopIn holds back a resident item
      // is a back-pressure stall (the chain stall spans of Section 5.2).
      clk_get.on_rise([this] {
        if (stop_in_->read() && !empty_w_->read()) obs_->stalled_by_stop_in();
      });
    }
  }

  // --- protocol-invariant monitors (armed runs only) ---
  // Built last so the we/re listeners above (which test mon_ at run time)
  // and all checked wires already exist. Every checker is read-only and
  // draws from no RNG: an armed run's waveforms match the unarmed run.
  if (verify::Hub* hub = sim.monitors()) {
    mon_ = std::make_unique<verify::MonitorSet>();
    mon_->hub = hub;
    const unsigned full_win = cfg_.full_kind == FullDetectorKind::kAnticipating
                                  ? anticipation_window(cfg_.sync.depth)
                                  : 1;
    const unsigned ne_win = anticipation_window(cfg_.sync.depth);
    // Worst-case detector tree latency after a DV-latch commit, plus one
    // 2-input gate of margin: a mismatch older than this is a real fault.
    const sim::Time settle =
        dm.sr_latch + detector_delay(n, ne_win, dm) + dm.gate(2);
    mon_->rings.push_back(std::make_unique<verify::TokenRingMonitor>(
        *hub, sim, nl_.prefix() + ".ptok", ptok_, clk_put));
    mon_->rings.push_back(std::make_unique<verify::TokenRingMonitor>(
        *hub, sim, nl_.prefix() + ".gtok", gtok_, clk_get));
    mon_->detectors.push_back(std::make_unique<verify::DetectorMonitor>(
        *hub, sim, nl_.prefix() + ".full", verify::Invariant::kFullDetector,
        e_, *full_raw_, full_win, clk_put, settle));
    mon_->detectors.push_back(std::make_unique<verify::DetectorMonitor>(
        *hub, sim, nl_.prefix() + ".ne", verify::Invariant::kEmptyDetector,
        f_, *ne_raw_, ne_win, clk_get, settle));
    mon_->detectors.push_back(std::make_unique<verify::DetectorMonitor>(
        *hub, sim, nl_.prefix() + ".oe", verify::Invariant::kEmptyDetector,
        f_, *oe_raw_, 1, clk_get, settle));
    mon_->stream = std::make_unique<verify::StreamMonitor>(*hub, sim,
                                                           nl_.prefix());
  }
}

unsigned MixedClockFifo::occupancy() const {
  unsigned count = 0;
  for (const sim::Wire* f : f_) count += f->read() ? 1u : 0u;
  return count;
}

sim::Time MixedClockFifo::put_min_period() const {
  return SyncPutSide::min_period(cfg_);
}

sim::Time MixedClockFifo::get_min_period() const {
  return SyncGetSide::min_period(cfg_);
}

}  // namespace mts::fifo
