// Self-checking tagged packet traffic for generated topologies.
//
// Routers and buses interleave flows, so the plain scoreboard (global FIFO
// order) cannot check them. Tagged packets carry their own evidence:
//
//   [63:56] dest   routing address (mesh: (x << 4) | y; bus: output index)
//   [55:48] flow   source id
//   [47:0]  seq    per-source sequence number (within the port width)
//
// A TaggedSink checks that each flow's sequence numbers arrive strictly
// increasing -- XY routing and round-robin arbitration preserve per-flow
// order, so any reordering, duplication or corruption trips the check.
// Ports must be at least 24 bits wide (Design::check() enforces this).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "gates/delay_model.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::builder {

/// Field packing shared by TaggedSource, TaggedSink, MeshRouter, BusFabric.
struct PacketFormat {
  static constexpr unsigned kDestShift = 56;
  static constexpr unsigned kFlowShift = 48;

  static std::uint64_t pack(unsigned dest, unsigned flow, std::uint64_t seq,
                            unsigned width) {
    const std::uint64_t seq_mask =
        (std::uint64_t{1} << (width - 16 > 48 ? 48 : width - 16)) - 1;
    return (std::uint64_t{dest & 0xFF} << kDestShift) |
           (std::uint64_t{flow & 0xFF} << kFlowShift) | (seq & seq_mask);
  }
  static unsigned dest(std::uint64_t packet) {
    return static_cast<unsigned>((packet >> kDestShift) & 0xFF);
  }
  static unsigned flow(std::uint64_t packet) {
    return static_cast<unsigned>((packet >> kFlowShift) & 0xFF);
  }
  static std::uint64_t seq(std::uint64_t packet) {
    return packet & ((std::uint64_t{1} << kFlowShift) - 1);
  }
};

/// Registered LI packet source: each cycle the link is unstalled it emits a
/// tagged packet with probability `rate`, cycling destinations randomly
/// from `dests` (simulation RNG, so campaigns reproduce per seed).
class TaggedSource {
 public:
  TaggedSource(sim::Simulation& sim, std::string name, sim::Wire& clk,
               sim::Word& out_data, sim::Wire& out_valid, sim::Wire& stop,
               const gates::DelayModel& dm, double rate, unsigned flow,
               std::vector<unsigned> dests, unsigned width);

  TaggedSource(const TaggedSource&) = delete;
  TaggedSource& operator=(const TaggedSource&) = delete;

  void set_enabled(bool on) noexcept { enabled_ = on; }
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  void on_edge();

  sim::Simulation& sim_;
  sim::Word& out_data_;
  sim::Wire& out_valid_;
  sim::Wire& stop_;
  sim::Time clk_to_q_;
  double rate_;
  unsigned flow_;
  std::vector<unsigned> dests_;
  unsigned width_;

  std::uint64_t next_seq_ = 1;
  std::uint64_t pending_data_ = 0;
  bool pending_valid_ = false;
  std::uint64_t sent_ = 0;
  bool enabled_ = true;
};

/// Stalling LI packet sink: consumes tagged packets, checks per-flow
/// sequence monotonicity, and raises stop with probability `stall_rate`.
class TaggedSink {
 public:
  TaggedSink(sim::Simulation& sim, std::string name, sim::Wire& clk,
             sim::Word& in_data, sim::Wire& in_valid, sim::Wire& stop,
             const gates::DelayModel& dm, double stall_rate);

  TaggedSink(const TaggedSink&) = delete;
  TaggedSink& operator=(const TaggedSink&) = delete;

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t violations() const noexcept { return violations_; }
  /// Packets received from one flow (0 when the flow never arrived here).
  std::uint64_t received_from(unsigned flow) const;

 private:
  void on_edge();

  sim::Simulation& sim_;
  std::string name_;
  sim::Word& in_data_;
  sim::Wire& in_valid_;
  sim::Wire& stop_;
  sim::Time clk_to_q_;
  double stall_rate_;

  bool prev_stop_ = false;
  std::uint64_t received_ = 0;
  std::uint64_t violations_ = 0;
  std::unordered_map<unsigned, std::uint64_t> last_seq_;
  std::unordered_map<unsigned, std::uint64_t> per_flow_;
};

}  // namespace mts::builder
