# Empty dependencies file for mts_test_ctrl.
# This may be replaced when dependencies are built.
