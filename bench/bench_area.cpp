// Area comparison (Related Work): the paper's single-global-synchronizer
// organization vs the Intel-patent per-cell-synchronizer organization [9],
// in gate equivalents, as capacity grows.
//
// Usage: bench_area [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "fifo/area.hpp"
#include "metrics/table.hpp"

int main(int argc, char** argv) {
  using namespace mts;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }

  std::printf("Synchronization area: global detectors (paper) vs per-cell "
              "synchronizers (Intel [9]); gate equivalents, 8-bit items, "
              "depth-2 synchronizers\n\n");

  metrics::Table t({"places", "sync GE (paper)", "sync GE (per-cell)",
                    "overhead", "total GE (paper)", "total GE (per-cell)"});
  for (unsigned cap : {4u, 8u, 16u, 32u}) {
    fifo::FifoConfig cfg;
    cfg.capacity = cap;
    cfg.width = 8;
    const fifo::AreaEstimate ours = fifo::area_mixed_clock(cfg);
    const fifo::AreaEstimate intel = fifo::area_per_cell_sync(cfg);
    t.add_row({std::to_string(cap), metrics::fmt(ours.synchronizer_ge, 0),
               metrics::fmt(intel.synchronizer_ge, 0),
               metrics::fmt(intel.synchronizer_ge / ours.synchronizer_ge, 1) +
                   "x",
               metrics::fmt(ours.total(), 0),
               metrics::fmt(intel.total(), 0)});
  }
  std::fputs(csv ? t.to_csv().c_str() : t.to_string().c_str(), stdout);
  std::printf("\nThe paper's synchronization cost is constant (one chain on "
              "full, two on the bi-modal empty) while the per-cell "
              "organization pays two chains per cell -- 'significantly "
              "greater area overhead' that grows linearly with capacity.\n");
  return 0;
}
