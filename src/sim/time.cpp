#include "sim/time.hpp"

#include <cstdio>

namespace mts::sim {

std::string format_time(Time t) {
  char buf[48];
  if (t < kNanosecond) {
    std::snprintf(buf, sizeof buf, "%llu ps", static_cast<unsigned long long>(t));
  } else if (t < kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.3f ns", to_ns(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(t) / 1e6);
  }
  return buf;
}

}  // namespace mts::sim
