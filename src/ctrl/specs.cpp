#include "ctrl/specs.hpp"

namespace mts::ctrl {

const BmSpec& opt_spec() {
  static const BmSpec spec = [] {
    BmSpec s;
    s.name = "OPT";
    s.num_states = 4;
    s.input_names = {"we1", "we"};
    s.output_names = {"ptok"};
    const unsigned kWe1 = 0;
    const unsigned kWe = 1;
    const unsigned kPtok = 0;
    s.transitions = {
        {0, {{kWe1, true}}, {}, 1},
        {1, {{kWe1, false}}, {{kPtok, true}}, 2},
        {2, {{kWe, true}}, {{kPtok, false}}, 3},
        {3, {{kWe, false}}, {}, 0},
    };
    s.validate();
    return s;
  }();
  return spec;
}

const PetriNet& dv_as_net() {
  static const PetriNet net = [] {
    PetriNet n;
    n.name = "DV_as";
    // Places: 0 p_empty (ready for a put), 1 p_set (e- pending),
    // 2 p_set2 (f+ pending), 3 p_full, 4 p_rd (f- pending),
    // 5 p_rd2 (awaiting re-), 6 p_rd3 (e+ pending),
    // 7 p_we_high (awaiting we-), 8 p_we_done.
    n.num_places = 9;
    n.initial_marking = {0, 8};
    const unsigned kWe = 0;
    const unsigned kRe = 1;
    const unsigned kEi = 0;
    const unsigned kFi = 1;
    n.transitions = {
        {"we+", true, kWe, true, {0, 8}, {1, 7}},
        {"e_i-", false, kEi, false, {1}, {2}},
        {"f_i+", false, kFi, true, {2}, {3}},
        {"we-", true, kWe, false, {7}, {8}},
        {"re+", true, kRe, true, {3}, {4}},
        {"f_i-", false, kFi, false, {4}, {5}},
        {"re-", true, kRe, false, {5}, {6}},
        {"e_i+", false, kEi, true, {6}, {0}},
    };
    return n;
  }();
  return net;
}

const PetriNet& dv_linear_net() {
  static const PetriNet net = [] {
    PetriNet n;
    n.name = "DV_linear";
    // Fully serialized ring: we+ -> e_i- -> we- -> f_i+ -> re+ -> f_i- ->
    // re- -> e_i+ -> (back to start).
    n.num_places = 8;
    n.initial_marking = {0};
    const unsigned kWe = 0;
    const unsigned kRe = 1;
    const unsigned kEi = 0;
    const unsigned kFi = 1;
    n.transitions = {
        {"we+", true, kWe, true, {0}, {1}},
        {"e_i-", false, kEi, false, {1}, {2}},
        {"we-", true, kWe, false, {2}, {3}},
        {"f_i+", false, kFi, true, {3}, {4}},
        {"re+", true, kRe, true, {4}, {5}},
        {"f_i-", false, kFi, false, {5}, {6}},
        {"re-", true, kRe, false, {6}, {7}},
        {"e_i+", false, kEi, true, {7}, {0}},
    };
    return n;
  }();
  return net;
}

}  // namespace mts::ctrl
