#include "sim/trace_session.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/error.hpp"

namespace mts::sim {
namespace {

TEST(TraceSession, TracksAndStreamsResolveIdempotently) {
  TraceSession ts;
  const auto clk_a = ts.track("clk_a");
  const auto clk_b = ts.track("clk_b");
  EXPECT_NE(clk_a, clk_b);
  EXPECT_EQ(ts.track("clk_a"), clk_a);

  const auto s0 = ts.stream("fifo0", clk_a, clk_b);
  const auto s1 = ts.stream("fifo1", clk_b, clk_b);
  EXPECT_NE(s0, s1);
  // Same instance name resolves to the same stream; the tracks of the
  // first registration win.
  EXPECT_EQ(ts.stream("fifo0", clk_b, clk_a), s0);
}

TEST(TraceSession, PutMintsMonotonicIds) {
  TraceSession ts;
  const auto s = ts.stream("dut", ts.track("put"), ts.track("get"));
  EXPECT_EQ(ts.transactions(), 0u);
  EXPECT_EQ(ts.put_committed(s, 100, 0xAA), 1u);
  EXPECT_EQ(ts.put_committed(s, 200, 0xBB), 2u);
  EXPECT_EQ(ts.put_committed(s, 300, 0xCC), 3u);
  EXPECT_EQ(ts.transactions(), 3u);
}

TEST(TraceSession, GetPopsInFifoOrderWithPutTimestamps) {
  TraceSession ts;
  const auto s = ts.stream("dut", ts.track("put"), ts.track("get"));
  ts.put_committed(s, 100, 1);
  ts.put_committed(s, 250, 2);

  const auto d0 = ts.get_observed(s, 900, 1);
  EXPECT_EQ(d0.id, 1u);
  EXPECT_EQ(d0.put_time, 100u);
  const auto d1 = ts.get_observed(s, 950, 2);
  EXPECT_EQ(d1.id, 2u);
  EXPECT_EQ(d1.put_time, 250u);
}

TEST(TraceSession, GetOnEmptyStreamIsAnUnderflowSentinel) {
  TraceSession ts;
  const auto s = ts.stream("dut", ts.track("put"), ts.track("get"));
  const auto d = ts.get_observed(s, 10, 0);
  EXPECT_EQ(d.id, 0u);
  EXPECT_EQ(d.put_time, 0u);
}

TEST(TraceSession, LinkedDownstreamAdoptsUpstreamIds) {
  TraceSession ts;
  const auto t = ts.track("clk");
  const auto up = ts.stream("up", t, t);
  const auto down = ts.stream("down", t, t);
  ts.link(up, down);

  const auto id_a = ts.put_committed(up, 100, 0xA);
  const auto id_b = ts.put_committed(up, 200, 0xB);
  ts.get_observed(up, 300, 0xA);
  ts.get_observed(up, 400, 0xB);

  // The downstream put adopts the handed-off ids in FIFO order instead of
  // minting fresh ones; the global count does not grow.
  EXPECT_EQ(ts.put_committed(down, 350, 0xA), id_a);
  EXPECT_EQ(ts.put_committed(down, 450, 0xB), id_b);
  EXPECT_EQ(ts.transactions(), 2u);

  // Departure latency at the chain tail runs from the *downstream* put.
  const auto d = ts.get_observed(down, 500, 0xA);
  EXPECT_EQ(d.id, id_a);
  EXPECT_EQ(d.put_time, 350u);
}

TEST(TraceSession, DownstreamWithoutHandoffStillMints) {
  TraceSession ts;
  const auto t = ts.track("clk");
  const auto up = ts.stream("up", t, t);
  const auto down = ts.stream("down", t, t);
  ts.link(up, down);
  // Nothing departed upstream yet (e.g. an injected packet): the put must
  // not stall or crash -- it mints a fresh id.
  EXPECT_EQ(ts.put_committed(down, 10, 0xF), 1u);
}

TEST(TraceSession, LinkByNameResolvesRegisteredStreams) {
  TraceSession ts;
  const auto t = ts.track("clk");
  ts.stream("a", t, t);
  ts.stream("b", t, t);
  ts.link("a", "b");

  const auto sa = ts.stream("a", t, t);
  const auto sb = ts.stream("b", t, t);
  const auto id = ts.put_committed(sa, 1, 0);
  ts.get_observed(sa, 2, 0);
  EXPECT_EQ(ts.put_committed(sb, 3, 0), id);
}

TEST(TraceSession, LinkByUnknownNameThrowsConfigError) {
  TraceSession ts;
  const auto t = ts.track("clk");
  ts.stream("known", t, t);
  EXPECT_THROW(ts.link("known", "never_built"), ConfigError);
  EXPECT_THROW(ts.link("never_built", "known"), ConfigError);
}

TEST(TraceSession, EventCapDropsRecordsButKeepsIdAccountingExact) {
  TraceSession ts;
  ts.set_max_events(4);
  const auto s = ts.stream("dut", ts.track("put"), ts.track("get"));
  // Each fresh put records two events (slice begin + instant): the cap is
  // hit after two puts.
  ts.put_committed(s, 10, 1);
  ts.put_committed(s, 20, 2);
  ts.put_committed(s, 30, 3);
  EXPECT_EQ(ts.events_recorded(), 4u);
  EXPECT_GT(ts.events_dropped(), 0u);
  EXPECT_EQ(ts.transactions(), 3u);

  // In-flight accounting is unaffected: latencies stay exact past the cap.
  EXPECT_EQ(ts.get_observed(s, 100, 1).put_time, 10u);
  EXPECT_EQ(ts.get_observed(s, 100, 2).put_time, 20u);
  EXPECT_EQ(ts.get_observed(s, 100, 3).put_time, 30u);
}

TEST(TraceSession, ToJsonEmitsChromeTraceStructure) {
  TraceSession ts;
  const auto put_t = ts.track("clk_put");
  const auto get_t = ts.track("clk_get");
  const auto s = ts.stream("dut", put_t, get_t);
  ts.put_committed(s, 1'500'000, 0x42);  // 1.5 us
  ts.sync_crossed(s, 2'000'000);
  ts.stalled_by_stop_in(s, 2'200'000);
  ts.get_observed(s, 2'500'000, 0x42);

  const std::string json = ts.to_json();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Named thread per track.
  EXPECT_NE(json.find("\"name\": \"clk_put\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"clk_get\""), std::string::npos);
  // Async slice open/close with matched id, instants for each span kind.
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"put_committed\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sync_crossed\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stalled_by_stopIn\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"get_observed\""), std::string::npos);
  // Picosecond timestamps rendered as microseconds with full resolution.
  EXPECT_NE(json.find("\"ts\": 1.500000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 2.500000"), std::string::npos);
}

TEST(TraceSession, WriteJsonThrowsWhenPathUnwritable) {
  TraceSession ts;
  EXPECT_THROW(ts.write_json("/nonexistent-dir-mts/trace.json"), ConfigError);
}

}  // namespace
}  // namespace mts::sim
