// Opt-in kernel profiling: per-listener-site wall-time and event-count
// attribution.
//
// A *site* is a labeled origin of scheduled work -- a clock's tick loop, an
// asynchronous driver's handshake engine, a testbench stimulus process --
// registered once via KernelProfiler::site() (or the MTS_PROFILE_SITE macro,
// which appends the registration file:line). Attribution is inherited:
// every event records the site that was current when it was scheduled, and
// while an event executes its site becomes current, so a clock tick's whole
// cascade (edge commits, flop updates, detector gates, synchronizers) is
// attributed to that clock unless a nested ProfileScope claims a more
// specific site. Events scheduled outside any site (testbench main, before
// arming) land in site 0, "(unattributed)".
//
// Cost model: with no profiler armed the scheduler pays one branch per
// scheduled event and one per executed event, and a 4-byte site id rides in
// each queued event -- the soak test in tests/sim/test_observability_soak.cpp
// holds this dormant path to within noise of the PR-2 kernel.
//
// Armed fast path (PR 4): the scheduler no longer brackets every callback
// with two steady_clock reads. Instead each executed event appends its raw
// site id to a fixed ring of samples (`sample()` -- one store, one branch)
// and the wall clock is read once per kSampleBlock events. At each flush the
// block's elapsed wall time is split evenly across its samples ("coarsened
// timestamping"): per-site event counts stay exact, per-site wall time is
// accurate to the block granularity, and the grand total is preserved to
// the nanosecond. This cut the armed overhead from ~455% to well under 100%
// of the dormant path (see BENCH_kernel.json "observability").
//
// The block clock also absorbs kernel dispatch time between callbacks,
// which the old two-reads-per-event scheme silently dropped -- armed wall
// totals are now inclusive of dispatch, i.e. closer to what a host profiler
// would report. Scheduler::run/run_until flush on exit so host time spent
// outside the kernel is never charged to a site; call flush() manually when
// driving step() in a loop.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/kernel_stats.hpp"

namespace mts::sim {

class KernelProfiler {
 public:
  using SiteId = std::uint32_t;

  /// Rows surfaced through KernelStats::hot_sites by Scheduler::stats().
  static constexpr std::size_t kTopN = 10;

  KernelProfiler() { sites_.push_back(Site{"(unattributed)", 0, 0}); }

  KernelProfiler(const KernelProfiler&) = delete;
  KernelProfiler& operator=(const KernelProfiler&) = delete;

  /// Registers (or looks up) the site named `label`; ids are stable for the
  /// profiler's lifetime.
  SiteId site(const std::string& label) {
    const auto it = index_.find(label);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<SiteId>(sites_.size());
    sites_.push_back(Site{label, 0, 0});
    index_.emplace(label, id);
    return id;
  }

  SiteId current() const noexcept { return current_; }
  void set_current(SiteId id) noexcept { current_ = id; }

  /// Samples per wall-clock read on the armed fast path. Large enough to
  /// amortize the clock read to noise, small enough that per-site wall
  /// attribution stays useful for sub-millisecond phases.
  static constexpr std::size_t kSampleBlock = 1024;

  /// Scheduler dispatch hook (fast path): one executed event at `id`.
  /// Appends to the sample ring; reads the wall clock only when a block
  /// opens or fills. Aggregation into the site table is deferred to
  /// flush().
  void sample(SiteId id) noexcept {
    if (pending_ == 0) block_t0_ = std::chrono::steady_clock::now();
    samples_[pending_++] = id;
    if (pending_ == kSampleBlock) flush();
  }

  /// Drains the sample ring into the site table: one wall-clock read; the
  /// block's elapsed time is split evenly across its samples, with the
  /// division remainder charged to the first sample so totals stay exact.
  /// Scheduler::run/run_until call this on exit (and stats() via the
  /// scheduler) -- call it manually before reading sites()/top() if you
  /// drive dispatch through Scheduler::step().
  void flush() noexcept;

  /// Direct aggregation: one executed event at `id` took `wall_ns`.
  /// Bypasses the sample ring (used by tests and external integrations
  /// that time callbacks themselves).
  void record(SiteId id, std::uint64_t wall_ns) noexcept {
    Site& s = sites_[id];
    ++s.events;
    s.wall_ns += wall_ns;
  }

  struct Site {
    std::string label;
    std::uint64_t events = 0;
    std::uint64_t wall_ns = 0;
  };
  const std::vector<Site>& sites() const noexcept { return sites_; }

  /// The n hottest sites by wall time, descending; sites with no events are
  /// omitted.
  std::vector<KernelSiteStat> top(std::size_t n = kTopN) const;

  /// Zeroes every site's counters and drops pending samples (labels and
  /// ids are kept).
  void reset();

 private:
  SiteId current_ = 0;
  std::size_t pending_ = 0;  ///< samples accumulated since the last flush
  std::chrono::steady_clock::time_point block_t0_{};  ///< current block start
  std::vector<Site> sites_;
  std::unordered_map<std::string, SiteId> index_;
  std::array<SiteId, kSampleBlock> samples_;  ///< raw site-id sample ring
};

/// RAII re-attribution: events scheduled while the scope is alive are
/// charged to `id` instead of the inherited site. Null profiler = no-op.
class ProfileScope {
 public:
  ProfileScope(KernelProfiler* p, KernelProfiler::SiteId id) noexcept : p_(p) {
    if (p_ != nullptr) {
      prev_ = p_->current();
      p_->set_current(id);
    }
  }
  ~ProfileScope() {
    if (p_ != nullptr) p_->set_current(prev_);
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  KernelProfiler* p_;
  KernelProfiler::SiteId prev_ = 0;
};

#define MTS_PROFILE_STRINGIZE_IMPL(x) #x
#define MTS_PROFILE_STRINGIZE(x) MTS_PROFILE_STRINGIZE_IMPL(x)

/// Registers `label` suffixed with the registration site's file:line;
/// evaluates to site id 0 when `profiler` is null.
#define MTS_PROFILE_SITE(profiler, label)                                   \
  ((profiler) != nullptr                                                    \
       ? (profiler)->site(std::string(label) + " @" __FILE__                \
                          ":" MTS_PROFILE_STRINGIZE(__LINE__))              \
       : ::mts::sim::KernelProfiler::SiteId{0})

}  // namespace mts::sim
