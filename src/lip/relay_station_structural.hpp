// Structural (gate-level) synchronous relay station -- Fig. 11b as an
// actual netlist, in contrast to lip::RelayStation's behavioural model.
//
// Datapath: MR and AUX word registers plus a registered output stage.
// Control reduces to remarkably little logic once the transfer convention
// is fixed (a link transfers at an edge iff its stop was low during the
// ending cycle):
//
//   aux_occupied <= stopIn                 (one flop)
//   stopOut       = aux_occupied
//   out           <= MR            when !stopIn
//   MR            <= aux_occupied ? AUX : in   when !stopIn
//   AUX           <= in            when stopIn & !aux_occupied
//
// The behavioural and structural models are proven equivalent in lockstep
// by tests/lip/test_relay_structural.cpp.
#pragma once

#include <string>

#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "gates/timing.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::lip {

class StructuralRelayStation {
 public:
  /// Same wire contract as lip::RelayStation; `domain` (optional) receives
  /// setup/hold checks for the packet registers.
  StructuralRelayStation(sim::Simulation& sim, const std::string& name,
                         sim::Wire& clk, sim::Word& in_data,
                         sim::Wire& in_valid, sim::Wire& stop_out,
                         sim::Word& out_data, sim::Wire& out_valid,
                         sim::Wire& stop_in, const gates::DelayModel& dm,
                         gates::TimingDomain* domain = nullptr);

  StructuralRelayStation(const StructuralRelayStation&) = delete;
  StructuralRelayStation& operator=(const StructuralRelayStation&) = delete;

  bool stalled() const noexcept { return aux_occ_->read(); }

 private:
  gates::Netlist nl_;
  sim::Wire* aux_occ_ = nullptr;
};

}  // namespace mts::lip
