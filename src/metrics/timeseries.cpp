// TimeSeriesStore export bodies. Compiled into mts_sim (see the header
// comment in timeseries.hpp for why not mts_metrics).
#include "metrics/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/report.hpp"

namespace mts::metrics {

namespace {

/// Finite, locale-independent decimal; integral values print without a
/// fraction so counters stay exact and artifacts diff cleanly.
std::string fmt_value(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Picoseconds -> the trace format's microseconds with 1 ps resolution
/// (same rendering as TraceSession's exporter).
std::string ts_us(sim::Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%06llu",
                static_cast<unsigned long long>(t / 1'000'000),
                static_cast<unsigned long long>(t % 1'000'000));
  return buf;
}

struct FlatPoint {
  sim::Time t;
  const std::string* name;
  double v;
};

}  // namespace

/// Flattens every series to (t, name, value) rows ordered by (t, name).
/// Series iterate in map (name) order, so a stable sort on time alone
/// yields the (t, name) order deterministically.
static std::vector<FlatPoint> flatten(
    const std::map<std::string, TimeSeries>& series) {
  std::vector<FlatPoint> rows;
  for (const auto& [name, s] : series) {
    for (const TimePoint& p : s.points()) {
      rows.push_back(FlatPoint{p.t, &name, p.v});
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const FlatPoint& a, const FlatPoint& b) {
                     return a.t < b.t;
                   });
  return rows;
}

std::string TimeSeriesStore::to_jsonl() const {
  std::ostringstream os;
  for (const FlatPoint& r : flatten(series_)) {
    os << "{\"t\": " << r.t << ", \"s\": \"" << sim::json_escape(*r.name)
       << "\", \"v\": " << fmt_value(r.v) << "}\n";
  }
  return os.str();
}

std::string TimeSeriesStore::to_csv() const {
  std::ostringstream os;
  os << "t_ps,series,value\n";
  for (const FlatPoint& r : flatten(series_)) {
    os << r.t << "," << *r.name << "," << fmt_value(r.v) << "\n";
  }
  return os.str();
}

std::string TimeSeriesStore::perfetto_events(int pid) const {
  if (series_.empty()) return "";
  std::ostringstream os;
  os << ",\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
     << ", \"args\": {\"name\": \"telemetry\"}}";
  for (const FlatPoint& r : flatten(series_)) {
    os << ",\n  {\"name\": \"" << sim::json_escape(*r.name)
       << "\", \"ph\": \"C\", \"pid\": " << pid << ", \"ts\": " << ts_us(r.t)
       << ", \"args\": {\"value\": " << fmt_value(r.v) << "}}";
  }
  return os.str();
}

bool TimeSeriesStore::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

}  // namespace mts::metrics
