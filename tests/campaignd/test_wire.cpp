// Length-prefixed framing: round-trips under arbitrary fragmentation, and
// truncated/oversized/garbage prefixes are rejected with structured errors
// (FramingError), never UB. Run under ASan/UBSan in CI.
#include "campaignd/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

using mts::campaignd::FrameDecoder;
using mts::campaignd::FramingError;
using mts::campaignd::encode_frame;
using mts::campaignd::kMaxFramePayload;

namespace {

std::vector<std::string> feed(FrameDecoder& dec, const char* data,
                              std::size_t len) {
  std::vector<std::string> out;
  dec.feed(data, len, out);
  return out;
}

}  // namespace

TEST(CampaigndWire, EncodePrependsBigEndianLength) {
  const std::string f = encode_frame("abc");
  ASSERT_EQ(f.size(), 7u);
  EXPECT_EQ(static_cast<unsigned char>(f[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(f[1]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(f[2]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(f[3]), 3u);
  EXPECT_EQ(f.substr(4), "abc");
}

TEST(CampaigndWire, RoundTripMultipleFrames) {
  const std::vector<std::string> payloads = {
      "{}", std::string(1, '\0') + "binary\xff", std::string(70000, 'x'), "a"};
  std::string stream;
  for (const std::string& p : payloads) stream += encode_frame(p);

  FrameDecoder dec;
  const std::vector<std::string> out = feed(dec, stream.data(), stream.size());
  ASSERT_EQ(out.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(out[i], payloads[i]);
  }
  EXPECT_EQ(dec.pending_bytes(), 0u);
  EXPECT_FALSE(dec.failed());
}

TEST(CampaigndWire, ByteAtATimeFeedReassembles) {
  const std::string stream =
      encode_frame("hello") + encode_frame(std::string(300, 'z'));
  FrameDecoder dec;
  std::vector<std::string> out;
  for (char c : stream) dec.feed(&c, 1, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "hello");
  EXPECT_EQ(out[1], std::string(300, 'z'));
}

TEST(CampaigndWire, SplitAtEveryBoundary) {
  const std::string stream = encode_frame("abc") + encode_frame("defg");
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder dec;
    std::vector<std::string> out;
    dec.feed(stream.data(), cut, out);
    dec.feed(stream.data() + cut, stream.size() - cut, out);
    ASSERT_EQ(out.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(out[0], "abc");
    EXPECT_EQ(out[1], "defg");
  }
}

TEST(CampaigndWire, ZeroLengthFrameRejected) {
  const char zeros[4] = {0, 0, 0, 0};
  FrameDecoder dec;
  EXPECT_THROW(feed(dec, zeros, 4), FramingError);
  EXPECT_TRUE(dec.failed());
}

TEST(CampaigndWire, OversizedPrefixRejectedWithoutBuffering) {
  // Length word claims 0xFFFFFFFF bytes; the decoder must refuse before
  // allocating anything of that order.
  const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameDecoder dec;
  EXPECT_THROW(feed(dec, reinterpret_cast<const char*>(huge), 4),
               FramingError);
  EXPECT_TRUE(dec.failed());
}

TEST(CampaigndWire, CustomCapEnforced) {
  FrameDecoder dec(/*max_payload=*/8);
  const std::string ok = encode_frame("12345678");
  EXPECT_EQ(feed(dec, ok.data(), ok.size()).size(), 1u);
  const std::string big = encode_frame("123456789");
  EXPECT_THROW(feed(dec, big.data(), big.size()), FramingError);
}

TEST(CampaigndWire, GarbagePrefixRejected) {
  // ASCII text interpreted as a length prefix exceeds the 16 MiB cap.
  const std::string garbage = "GET / HTTP/1.1\r\n";
  FrameDecoder dec;
  EXPECT_THROW(feed(dec, garbage.data(), garbage.size()), FramingError);
}

TEST(CampaigndWire, FailureIsLatched) {
  const char zeros[4] = {0, 0, 0, 0};
  FrameDecoder dec;
  EXPECT_THROW(feed(dec, zeros, 4), FramingError);
  // Even a perfectly valid frame is refused after corruption: the stream
  // position is unknowable.
  const std::string ok = encode_frame("x");
  EXPECT_THROW(feed(dec, ok.data(), ok.size()), FramingError);
  EXPECT_TRUE(dec.failed());
}

TEST(CampaigndWire, PendingBytesTracksPartialFrame) {
  const std::string f = encode_frame("abcdef");
  FrameDecoder dec;
  EXPECT_EQ(feed(dec, f.data(), 2).size(), 0u);
  EXPECT_EQ(dec.pending_bytes(), 2u);
  EXPECT_EQ(feed(dec, f.data() + 2, 5).size(), 0u);
  EXPECT_EQ(dec.pending_bytes(), 7u);
  const std::vector<std::string> out =
      feed(dec, f.data() + 7, f.size() - 7);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "abcdef");
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(CampaigndWire, EncodeRejectsInvalidPayloads) {
  EXPECT_THROW(encode_frame(""), FramingError);
  EXPECT_THROW(encode_frame(std::string(kMaxFramePayload + 1, 'x')),
               FramingError);
}

TEST(CampaigndWire, MaxPayloadBoundaryAccepted) {
  FrameDecoder dec(/*max_payload=*/16);
  const std::string f = encode_frame(std::string(16, 'y'));
  const std::vector<std::string> out = feed(dec, f.data(), f.size());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 16u);
}

TEST(CampaigndWire, TruncatedStreamLeavesPendingNotError) {
  // A frame cut off mid-payload is "peer died" territory: the decoder just
  // reports pending bytes; classifying the EOF is the transport's job.
  const std::string f = encode_frame("abcdef");
  FrameDecoder dec;
  EXPECT_EQ(feed(dec, f.data(), f.size() - 2).size(), 0u);
  EXPECT_FALSE(dec.failed());
  EXPECT_EQ(dec.pending_bytes(), f.size() - 2);
}

TEST(CampaigndWire, GarbageStreamsNeverCrash) {
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (int round = 0; round < 100; ++round) {
    FrameDecoder dec;
    std::string s;
    const std::size_t len = (x >> 5) % 128;
    for (std::size_t i = 0; i < len; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      s.push_back(static_cast<char>(x & 0xFF));
    }
    try {
      // Feed in irregular chunks.
      std::size_t off = 0;
      std::vector<std::string> out;
      while (off < s.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + (x % 7), s.size() - off);
        dec.feed(s.data() + off, n, out);
        off += n;
      }
    } catch (const FramingError&) {
    }
  }
  SUCCEED();
}
