// Runtime protocol checkers for the paper's interface invariants.
//
// Each checker is a small read-only observer a component constructs when a
// verify::Hub is armed (Simulation::monitors() non-null at construction).
// They sample wires at settled instants -- pre-edge inside clock rise
// listeners (registered outputs change clk-to-q AFTER the edge, so a rise
// listener reads the values stable over the ending cycle), or on the
// monitored handshake edges themselves -- and never write a wire or draw
// from any RNG, so an armed run's waveforms are bit-identical to the same
// seed unarmed.
//
//   TokenRingMonitor   exactly one put (get) token circulating (Section 3.1)
//   DetectorMonitor    full/ne/oe raw outputs consistent with the true cell
//                      e_i/f_i state under the detector's window definition
//                      (Fig. 6); transient mismatches re-checked after the
//                      detector tree's settle delay before being reported
//   HandshakeMonitor   4-phase req/ack edge ordering + bundled-data
//                      stability over the transparency window (Section 4)
//   StreamMonitor      scoreboard: items leave in FIFO order, none lost,
//                      duplicated or invented, tied to TraceSession txn ids
//                      when observability is also armed
//
// MonitorSet is the per-component bundle: FIFOs / relay stations own one
// and the hub outlives it (same lifetime contract as sim::Observability).
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"
#include "verify/hub.hpp"
#include "verify/violation.hpp"

namespace mts::verify {

namespace detail {
inline std::string hex(std::uint64_t v) {
  char buf[2 + 16 + 1];
  int n = std::snprintf(buf, sizeof buf, "0x%llx",
                        static_cast<unsigned long long>(v));
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}
}  // namespace detail

/// Counts the tokens resident in a ring of wires at every rising edge of
/// the ring's clock; the paper's rings carry exactly one.
class TokenRingMonitor {
 public:
  TokenRingMonitor(Hub& hub, sim::Simulation& sim, std::string site,
                   std::vector<sim::Wire*> tokens, sim::Wire& clk)
      : hub_(hub), sim_(sim), site_(std::move(site)),
        tokens_(std::move(tokens)) {
    clk.on_rise([this] { check(); });
  }

  TokenRingMonitor(const TokenRingMonitor&) = delete;
  TokenRingMonitor& operator=(const TokenRingMonitor&) = delete;

  void check() {
    unsigned count = 0;
    for (const sim::Wire* w : tokens_) count += w->read() ? 1u : 0u;
    if (count == 1) return;
    Violation v;
    v.time = sim_.now();
    v.invariant = Invariant::kTokenRing;
    v.site = site_;
    v.observed = std::to_string(count) + " tokens";
    v.expected = "exactly 1 circulating token";
    hub_.report(std::move(v));
  }

 private:
  Hub& hub_;
  sim::Simulation& sim_;
  std::string site_;
  std::vector<sim::Wire*> tokens_;
};

/// Recomputes a global-state detector's defining predicate from the true
/// cell state wires and compares it with the built detector's raw output.
///
/// `window` generalizes Fig. 6: the raw output must be asserted iff the
/// ring of `state` wires contains NO run of `window` consecutive asserted
/// cells (window 1 degenerates to "no cell asserted" -- the oe / exact
/// detectors).
///
/// A pre-edge mismatch can be a benign in-flight transition (a cell's e/f
/// commit still propagating through the AND rank and OR tree), so the
/// monitor defers: it schedules a read-only re-check `settle` later and
/// reports only if the disagreement persists -- a genuine inconsistency
/// (e.g. an injected detector corruption), not tree latency.
class DetectorMonitor {
 public:
  DetectorMonitor(Hub& hub, sim::Simulation& sim, std::string site,
                  Invariant invariant, std::vector<sim::Wire*> state,
                  sim::Wire& raw, unsigned window, sim::Wire& clk,
                  sim::Time settle)
      : hub_(hub), sim_(sim), site_(std::move(site)), invariant_(invariant),
        state_(std::move(state)), raw_(raw), window_(window),
        settle_(settle) {
    // Track when the cell state last moved: a deferred re-check only
    // convicts the detector if the state has been quiet for a full settle
    // window (otherwise the raw output may legitimately still be catching
    // up to a commit newer than the one that triggered the check).
    for (sim::Wire* w : state_) {
      w->on_change([this](const bool&, const bool&) {
        last_state_change_ = sim_.now();
      });
    }
    clk.on_rise([this] { check(); });
  }

  DetectorMonitor(const DetectorMonitor&) = delete;
  DetectorMonitor& operator=(const DetectorMonitor&) = delete;

  /// The predicate the detector implements, from the true cell state.
  bool expected() const {
    const std::size_t n = state_.size();
    if (n == 0) return true;
    unsigned run = 0;
    // Walk the ring twice so wrapping runs are seen; cap at 2n reads.
    for (std::size_t k = 0; k < 2 * n; ++k) {
      if (state_[k % n]->read()) {
        if (++run >= window_) return false;
      } else {
        run = 0;
      }
    }
    return true;
  }

  void check() {
    if (raw_.read() == expected() || pending_) return;
    pending_ = true;
    sim_.sched().after(settle_, [this] {
      pending_ = false;
      if (sim_.now() - last_state_change_ < settle_) return;  // still moving
      const bool want = expected();
      if (raw_.read() == want) return;  // transient: tree was settling
      Violation v;
      v.time = sim_.now();
      v.invariant = invariant_;
      v.site = site_;
      v.observed = std::string(raw_.read() ? "asserted" : "deasserted") +
                   " (" + raw_.name() + ")";
      v.expected = std::string(want ? "asserted" : "deasserted") +
                   ": no " + std::to_string(window_) +
                   " consecutive cells set";
      hub_.report(std::move(v));
    });
  }

 private:
  Hub& hub_;
  sim::Simulation& sim_;
  std::string site_;
  Invariant invariant_;
  std::vector<sim::Wire*> state_;
  sim::Wire& raw_;
  unsigned window_;
  sim::Time settle_;
  sim::Time last_state_change_ = 0;
  bool pending_ = false;
};

/// 4-phase req/ack ordering plus bundled-data stability (Section 4).
///
/// Legal sequence: req+ -> ack+ -> req- -> ack- (data stable from its
/// launch until the cell latches it). Any edge out of order is a
/// kHandshakeOrder violation. A data commit while a handshake is open is
/// measured against `data_slack`, the FIFO-side bundling margin FROM req+
/// (fifo::async_put_data_margin minus the driver's data-to-req offset):
/// movement beyond the slack has provably missed the transparency window
/// and is reported as kBundledData; earlier movement is still captured
/// correctly and stays silent (the fault suite pins both sides).
class HandshakeMonitor {
 public:
  HandshakeMonitor(Hub& hub, sim::Simulation& sim, std::string site,
                   sim::Wire& req, sim::Wire& ack, sim::Word& data,
                   sim::Time data_slack)
      : hub_(hub), sim_(sim), site_(std::move(site)), slack_(data_slack) {
    req.on_rise([this] { edge(Phase::kIdle, Phase::kReqUp, "req+"); });
    ack.on_rise([this] { edge(Phase::kReqUp, Phase::kAckUp, "ack+"); });
    req.on_fall([this] { edge(Phase::kAckUp, Phase::kReqDown, "req-"); });
    ack.on_fall([this] { edge(Phase::kReqDown, Phase::kIdle, "ack-"); });
    data.on_change([this](std::uint64_t, std::uint64_t now_value) {
      data_changed(now_value);
    });
  }

  HandshakeMonitor(const HandshakeMonitor&) = delete;
  HandshakeMonitor& operator=(const HandshakeMonitor&) = delete;

  std::uint64_t handshakes() const noexcept { return handshakes_; }

 private:
  enum class Phase { kIdle, kReqUp, kAckUp, kReqDown };

  static const char* phase_name(Phase p) noexcept {
    switch (p) {
      case Phase::kIdle: return "idle";
      case Phase::kReqUp: return "req-high";
      case Phase::kAckUp: return "ack-high";
      case Phase::kReqDown: return "req-released";
    }
    return "?";
  }

  void edge(Phase expect, Phase next, const char* name) {
    if (phase_ != expect) {
      Violation v;
      v.time = sim_.now();
      v.invariant = Invariant::kHandshakeOrder;
      v.site = site_;
      v.observed = std::string(name) + " in phase " + phase_name(phase_);
      v.expected = std::string(name) + " only in phase " + phase_name(expect);
      hub_.report(std::move(v));
    }
    if (next == Phase::kReqUp) t_req_ = sim_.now();
    if (next == Phase::kIdle) ++handshakes_;
    phase_ = next;
  }

  void data_changed(std::uint64_t now_value) {
    if (phase_ == Phase::kIdle) return;  // nominal launch, before req+
    const sim::Time lag = sim_.now() - t_req_;
    if (lag <= slack_) return;  // inside the transparency window
    Violation v;
    v.time = sim_.now();
    v.invariant = Invariant::kBundledData;
    v.site = site_;
    v.observed = "data -> " + detail::hex(now_value) + " moved " +
                 std::to_string(lag) + "ps after req+";
    v.expected = "stable within " + std::to_string(slack_) + "ps of req+";
    hub_.report(std::move(v));
  }

  Hub& hub_;
  sim::Simulation& sim_;
  std::string site_;
  sim::Time slack_;
  Phase phase_ = Phase::kIdle;
  sim::Time t_req_ = 0;
  std::uint64_t handshakes_ = 0;
};

/// FIFO-order scoreboard: put() on commit, get() on departure. Items must
/// leave in arrival order with unchanged payloads; a get with an empty
/// in-flight queue is spurious. When the component also has observability
/// armed, the caller passes the TraceSession txn id so violations name the
/// exact transaction; otherwise a per-instance sequence number stands in.
class StreamMonitor {
 public:
  StreamMonitor(Hub& hub, sim::Simulation& sim, std::string site)
      : hub_(hub), sim_(sim), site_(std::move(site)) {}

  StreamMonitor(const StreamMonitor&) = delete;
  StreamMonitor& operator=(const StreamMonitor&) = delete;

  void put(std::uint64_t data, std::uint64_t txn = 0) {
    q_.push_back(Entry{txn != 0 ? txn : seq_, data});
    ++seq_;
  }

  void get(std::uint64_t data, std::uint64_t txn = 0) {
    if (q_.empty()) {
      Violation v;
      v.time = sim_.now();
      v.invariant = Invariant::kPacketSpurious;
      v.site = site_;
      v.txn = txn;
      v.observed = detail::hex(data) + " departed with 0 items in flight";
      v.expected = "departures only while items are resident";
      hub_.report(std::move(v));
      return;
    }
    const Entry front = q_.front();
    q_.pop_front();
    if (front.data == data) return;
    Violation v;
    v.time = sim_.now();
    v.invariant = Invariant::kPacketOrder;
    v.site = site_;
    v.txn = txn != 0 ? txn : front.txn;
    v.observed = detail::hex(data);
    v.expected = detail::hex(front.data) + " (oldest in-flight item)";
    hub_.report(std::move(v));
  }

  std::size_t in_flight() const noexcept { return q_.size(); }

 private:
  struct Entry {
    std::uint64_t txn;
    std::uint64_t data;
  };

  Hub& hub_;
  sim::Simulation& sim_;
  std::string site_;
  std::deque<Entry> q_;
  std::uint64_t seq_ = 1;
};

/// The per-component checker bundle a FIFO / relay station owns when a hub
/// was armed at its construction; nullptr otherwise (the dormant path).
struct MonitorSet {
  Hub* hub = nullptr;
  std::vector<std::unique_ptr<TokenRingMonitor>> rings;
  std::vector<std::unique_ptr<DetectorMonitor>> detectors;
  std::unique_ptr<HandshakeMonitor> handshake;
  std::unique_ptr<StreamMonitor> stream;
};

}  // namespace mts::verify
