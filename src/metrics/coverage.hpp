// Protocol-state functional coverage for the mixed-timing interfaces.
//
// A Coverage object owns a set of named bins. Bins are declared up front
// (define) so a run that never exercises a state shows up as a MISSED bin
// rather than a silently absent one; hits are recorded either directly
// (hit) or by subscribing to signal edges via the kernel's typed
// Wire::on_rise / on_fall listeners, which cost nothing on wires nobody
// watches. The verification suites assert all_hit() after fuzz campaigns
// and surface the bin table through sim::Report so coverage travels with
// the run's other diagnostics.
//
// Attachers (cover_mixed_clock_fifo, ...) wire up the standard bin set for
// each DUT class from the paper: detector transitions (full / not-empty /
// or-empty, Figs. 5-6), put/get token ring wraps, relay-station stall x
// valid combinations (Fig. 12), and a coarse occupancy histogram.
//
// Lifetime: listeners registered by the attachers capture pointers into
// this object; the Coverage must outlive every simulation run of the
// circuit it instruments (it is non-copyable and non-movable for this
// reason).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/report.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"

namespace mts::fifo {
class MixedClockFifo;
class AsyncSyncFifo;
}  // namespace mts::fifo

namespace mts::metrics {

class Coverage {
 public:
  explicit Coverage(std::string name = "coverage") : name_(std::move(name)) {}

  Coverage(const Coverage&) = delete;
  Coverage& operator=(const Coverage&) = delete;

  /// Declares `bin` with zero hits (idempotent: re-defining keeps counts).
  void define(const std::string& bin) { (void)slot(bin); }

  /// Records `n` hits, declaring the bin on first use.
  void hit(const std::string& bin, std::uint64_t n = 1) { *slot(bin) += n; }

  std::uint64_t hits(const std::string& bin) const;
  std::size_t size() const noexcept { return bins_.size(); }

  /// Bins defined but never hit, in lexicographic order.
  std::vector<std::string> missing() const;
  bool all_hit() const;

  /// Campaign reduction: folds `other`'s bins into this object -- hit
  /// counts add, bins defined only in `other` (hit or missed) appear here.
  /// Commutative and associative, so per-worker coverage merged in any
  /// order yields identical bins; listener subscriptions are NOT copied
  /// (merge aggregates results, it does not re-instrument circuits).
  void merge(const Coverage& other);

  /// "name: 7/9 bins hit; missing: mcrs.full.rise, mcrs.occ.nearfull"
  std::string summary() const;

  /// Emits one kInfo entry per hit bin and one kWarning "coverage-miss"
  /// entry per missed bin, plus a kInfo summary line, all at time `t`.
  void report_into(sim::Report& r, sim::Time t) const;

  const std::map<std::string, std::uint64_t>& bins() const noexcept {
    return bins_;
  }

  // -- Edge subscriptions -------------------------------------------------
  // Each registers a listener on `w` that bumps `bin`. The nth_ variants
  // start counting at the nth edge (1-based): the wrap bins use n=2 because
  // the first set/clear of cell 0's flag is startup, not a ring wrap.

  void bin_rise(const std::string& bin, sim::Wire& w);
  void bin_fall(const std::string& bin, sim::Wire& w);
  void bin_nth_rise(const std::string& bin, sim::Wire& w, unsigned n);
  void bin_nth_fall(const std::string& bin, sim::Wire& w, unsigned n);

  /// Stable address of the bin's counter for hand-rolled listeners (map
  /// nodes never move); declares the bin on first use.
  std::uint64_t* counter(const std::string& bin) { return slot(bin); }

 private:
  /// Stable address of the bin's counter (map nodes never move).
  std::uint64_t* slot(const std::string& bin) { return &bins_[bin]; }

  std::string name_;
  std::map<std::string, std::uint64_t> bins_;
};

// -- Standard bin sets ------------------------------------------------------

/// Detector transitions (full / ne / oe, raw pre-synchronizer wires), token
/// ring wraps, and a coarse occupancy histogram (empty / mid / nearfull).
/// Bins are prefixed "<prefix>.".
void cover_mixed_clock_fifo(Coverage& cov, const std::string& prefix,
                            fifo::MixedClockFifo& f);

/// Same for the async-put fifo: no full detector (the put side flow-controls
/// through the handshake), otherwise the identical bin set.
void cover_async_sync_fifo(Coverage& cov, const std::string& prefix,
                           fifo::AsyncSyncFifo& f);

/// Relay-station / LIP channel bins: the four stall x valid combinations
/// sampled at each rising edge of `clk` (Fig. 12's stop/valid protocol).
void cover_stall_valid(Coverage& cov, const std::string& prefix,
                       sim::Wire& clk, sim::Wire& valid, sim::Wire& stop);

/// Full per-slot occupancy histogram "<prefix>.occ.<k>" for k in
/// [0, capacity], sampled on every cell-flag change. Heavier than the
/// coarse buckets; used by the soak tests' failure diagnostics.
void cover_occupancy_histogram(Coverage& cov, const std::string& prefix,
                               fifo::MixedClockFifo& f);

}  // namespace mts::metrics
