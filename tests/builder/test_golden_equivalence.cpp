// Golden equivalence: the elaborator's headline guarantee is that a
// declarative design is BIT-IDENTICAL to the same primitives hand-wired in
// the same order -- elaboration adds no events, draws no RNG, and renames
// nothing that matters.
//
// Three proofs, in increasing size:
//   1. the Fig. 3 protocol circuits, rebuilt through builder::Design, hash
//      to the SAME committed goldens as the hand-wired circuits in
//      tests/faults/test_golden_waveform.cpp;
//   2. the Fig. 14 SoC (async producer -> ASRS link -> repeater -> MCRS
//      link -> stalling sink) elaborated vs hand-wired, full-boundary VCD
//      hash equality on one Simulation seed;
//   3. a campaign sweeping an elaborated design is byte-identical between
//      1 and 4 workers, design-JSON artifacts included.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "builder/builder.hpp"
#include "fifo/interface_sides.hpp"
#include "gates/combinational.hpp"
#include "lip/chain.hpp"
#include "sim/campaign.hpp"
#include "sim/trace.hpp"

namespace mts {
namespace {

using builder::Design;
using builder::DomainId;
using builder::EdgeId;
using builder::LinkOptions;
using builder::NodeId;
using sim::Time;

// The committed Fig. 3 goldens -- the SAME constants as
// tests/faults/test_golden_waveform.cpp pins for the hand-wired circuits.
constexpr std::uint64_t kGoldenSyncHash = 0xaf15d04f0b975cfeull;
constexpr std::uint64_t kGoldenAsyncHash = 0xae0703a3183d1ca9ull;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// 1. Fig. 3 circuits through the builder, against the committed goldens.
// ---------------------------------------------------------------------------

TEST(BuilderGolden, Fig3SyncElaboratesToGoldenWaveform) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);

  Design d("fig3_sync");
  const DomainId put_dom = d.domain("clk_put", {pp, 4 * pp, 0.5, 0});
  const DomainId get_dom = d.domain("clk_get", {gp, 4 * pp + gp / 2, 0.5, 0});
  const NodeId prod = d.external("prod", {Design::sync_out("out", put_dom, 8)});
  const NodeId cons = d.external("cons", {Design::sync_in("in", get_dom, 8)});
  LinkOptions opt;
  opt.capacity = 4;
  opt.controller = fifo::ControllerKind::kFifo;
  d.connect(prod, "out", cons, "in", opt, "fifo");
  auto elab = builder::elaborate(sim, d);

  const builder::SyncFifoPut put = elab->fifo_put(prod, "out");
  const builder::SyncFifoGet get = elab->fifo_get(cons, "in");

  sim::VcdWriter vcd("builder_fig3_sync.vcd");
  vcd.watch(elab->clock(put_dom).out(), "clk_put");
  vcd.watch(*put.req_put, "req_put");
  vcd.watch(*put.data_put, 8, "data_put");
  vcd.watch(*put.full, "full");
  vcd.watch(elab->clock(get_dom).out(), "clk_get");
  vcd.watch(*get.req_get, "req_get");
  vcd.watch(*get.data_get, 8, "data_get");
  vcd.watch(*get.valid_get, "valid_get");
  vcd.watch(*get.empty, "empty");
  vcd.start();

  const Time react = cfg.dm.flop.clk_to_q + 1;
  const Time t0 = 4 * pp + 4 * pp;
  for (int k = 0; k < 2; ++k) {
    sim.sched().at(t0 + static_cast<Time>(k) * pp + react, [put, k] {
      put.data_put->set(0x41 + static_cast<std::uint64_t>(k));
      put.req_put->set(true);
    });
  }
  sim.sched().at(t0 + 2 * pp + react, [put] { put.req_put->set(false); });
  sim.sched().at(t0 + 4 * pp, [get] { get.req_get->set(true); });
  sim.run_until(t0 + 16 * pp);
  vcd.finish();

  const std::uint64_t h = fnv1a(slurp("builder_fig3_sync.vcd"));
  EXPECT_EQ(h, kGoldenSyncHash)
      << "builder-elaborated Fig. 3 sync circuit diverged from the "
         "hand-wired golden: got 0x"
      << std::hex << h;
}

TEST(BuilderGolden, Fig3AsyncElaboratesToGoldenWaveform) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);

  // The generated async source IS the bench's AsyncPutDriver (same name,
  // same gap, same mask); its scoreboard records sends without touching
  // the event queue, so the trace must not move by one edge.
  Design d("fig3_async");
  const DomainId get_dom = d.domain("clk_get", {gp, 4 * gp, 0.5, 0});
  const NodeId put = d.source("put", Design::async_out("out", 8),
                              {1.0, /*gap=*/2 * gp, /*mask=*/0xFF});
  const NodeId cons = d.external("cons", {Design::sync_in("in", get_dom, 8)});
  LinkOptions opt;
  opt.capacity = 4;
  opt.controller = fifo::ControllerKind::kFifo;
  const EdgeId e = d.connect(put, "out", cons, "in", opt, "fifo");
  auto elab = builder::elaborate(sim, d);

  const builder::HandshakePort hs = elab->edge(e).head.hs;
  sim::VcdWriter vcd("builder_fig3_async.vcd");
  vcd.watch(*hs.req, "put_req");
  vcd.watch(*hs.ack, "put_ack");
  vcd.watch(*hs.data, 8, "put_data");
  vcd.start();
  sim.run_until(10 * gp);
  vcd.finish();

  const std::uint64_t h = fnv1a(slurp("builder_fig3_async.vcd"));
  EXPECT_EQ(h, kGoldenAsyncHash)
      << "builder-elaborated Fig. 3 async circuit diverged from the "
         "hand-wired golden: got 0x"
      << std::hex << h;
}

// ---------------------------------------------------------------------------
// 2. The Fig. 14 SoC: elaborated vs hand-wired, same seed, same watches.
// ---------------------------------------------------------------------------

struct SocSignals {
  sim::Wire* clk_bus;
  sim::Wire* clk_disp;
  builder::HandshakePort put;
  builder::LiPort bus_side;   // ASRS link output (bus domain)
  builder::LiPort disp_side;  // MCRS link output (display domain)
};

std::uint64_t soc_vcd_hash(const std::string& path, const SocSignals& s,
                           sim::Simulation& sim, Time bus_period) {
  sim::VcdWriter vcd(path);
  vcd.watch(*s.clk_bus, "clk_bus");
  vcd.watch(*s.clk_disp, "clk_display");
  vcd.watch(*s.put.req, "put_req");
  vcd.watch(*s.put.ack, "put_ack");
  vcd.watch(*s.put.data, 16, "put_data");
  vcd.watch(*s.bus_side.valid, "bus_valid");
  vcd.watch(*s.bus_side.stop, "bus_stop");
  vcd.watch(*s.disp_side.data, 16, "disp_data");
  vcd.watch(*s.disp_side.valid, "disp_valid");
  vcd.watch(*s.disp_side.stop, "disp_stop");
  vcd.start();
  sim.run_until(4 * bus_period + 400 * bus_period);
  vcd.finish();
  return fnv1a(slurp(path));
}

void soc_periods(Time& bus_period, Time& disp_period) {
  fifo::FifoConfig probe;
  probe.capacity = 8;
  probe.width = 16;
  const Time base = std::max(fifo::SyncGetSide::min_period(probe),
                             fifo::SyncPutSide::min_period(probe));
  bus_period = base * 5 / 4;
  disp_period = base * 7 / 4;
}

TEST(BuilderGolden, Fig14SocMatchesHandWiredBitForBit) {
  Time bus_period = 0, disp_period = 0;
  soc_periods(bus_period, disp_period);

  fifo::FifoConfig link_cfg;  // what edge_fifo_config() derives per edge
  link_cfg.capacity = 8;
  link_cfg.width = 16;
  link_cfg.controller = fifo::ControllerKind::kRelayStation;

  // --- builder version --------------------------------------------------
  std::uint64_t built_hash = 0;
  {
    sim::Simulation sim(11);
    Design d("soc");
    const DomainId bus_dom =
        d.domain("clk_bus", {bus_period, 4 * bus_period, 0.5, 0});
    const DomainId disp_dom =
        d.domain("clk_display", {disp_period, 4 * disp_period, 0.5, 0});
    const NodeId sensor =
        d.source("sensor", Design::async_out("out", 16), {1.0, 0, 0xFFFF});
    const NodeId glue = d.repeater("glue", bus_dom, 16);
    const NodeId display =
        d.sink("display", Design::sync_in("in", disp_dom, 16), {0.2});
    LinkOptions fuse_opt;
    fuse_opt.capacity = 8;
    fuse_opt.latency_left = 3;
    fuse_opt.latency_right = 3;
    const EdgeId fuse = d.connect(sensor, "out", glue, "in", fuse_opt, "fuse");
    LinkOptions cross_opt;
    cross_opt.capacity = 8;
    cross_opt.latency_left = 1;
    cross_opt.latency_right = 2;
    const EdgeId cross =
        d.connect(glue, "out", display, "in", cross_opt, "cross");
    auto elab = builder::elaborate(sim, d);

    SocSignals s;
    s.clk_bus = &elab->clock(bus_dom).out();
    s.clk_disp = &elab->clock(disp_dom).out();
    s.put = elab->edge(fuse).head.hs;
    s.bus_side = elab->edge(fuse).tail.li;
    s.disp_side = elab->edge(cross).tail.li;
    built_hash = soc_vcd_hash("builder_soc.vcd", s, sim, bus_period);
    EXPECT_EQ(elab->total_order_violations(), 0u);
    EXPECT_GT(elab->sink_received(display), 50u);
  }

  // --- hand-wired version, in the elaborator's construction order -------
  std::uint64_t hand_hash = 0;
  {
    sim::Simulation sim(11);
    sync::Clock clk_bus(sim, "clk_bus",
                        {bus_period, 4 * bus_period, 0.5, 0});
    sync::Clock clk_disp(sim, "clk_display",
                         {disp_period, 4 * disp_period, 0.5, 0});
    lip::AsyncSyncLink fuse(sim, "fuse", link_cfg, clk_bus.out(), 3, 3);
    lip::MixedClockLink cross(sim, "cross", link_cfg, clk_bus.out(),
                              clk_disp.out(), 1, 2);
    bfm::Scoreboard sb(sim, "sensor.sb");
    bfm::AsyncPutDriver sensor(sim, "sensor", fuse.put_req(), fuse.put_ack(),
                               fuse.put_data(), link_cfg.dm, 0, 0xFFFF, &sb);
    gates::Netlist nl(sim, "");
    const Time delay = link_cfg.dm.gate(1);
    nl.add<gates::WordBuf>(sim, "glue.d", fuse.data_out(), cross.data_in(),
                           delay);
    gates::gate_into(nl, "glue.v", gates::GateOp::kBuf, {&fuse.valid_out()},
                     cross.valid_in(), delay);
    gates::gate_into(nl, "glue.s", gates::GateOp::kBuf, {&cross.stop_out()},
                     fuse.stop_in(), delay);
    bfm::RsSink display(sim, "display", clk_disp.out(), cross.data_out(),
                        cross.valid_out(), cross.stop_in(), link_cfg.dm, 0.2,
                        sb);

    SocSignals s;
    s.clk_bus = &clk_bus.out();
    s.clk_disp = &clk_disp.out();
    s.put = {&fuse.put_req(), &fuse.put_ack(), &fuse.put_data()};
    s.bus_side = {&fuse.data_out(), &fuse.valid_out(), &fuse.stop_in()};
    s.disp_side = {&cross.data_out(), &cross.valid_out(), &cross.stop_in()};
    hand_hash = soc_vcd_hash("handwired_soc.vcd", s, sim, bus_period);
    EXPECT_EQ(sb.errors(), 0u);
  }

  EXPECT_EQ(built_hash, hand_hash)
      << "elaborate() is contracted to add no events and draw no RNG: the "
         "builder SoC and the hand-wired SoC must be bit-identical";
}

// ---------------------------------------------------------------------------
// 3. Elaborated designs under the campaign engine: worker-count invariant.
// ---------------------------------------------------------------------------

std::string run_builder_campaign(unsigned workers) {
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 0xB11D;
  sim::Campaign campaign(/*configs=*/2, /*reps=*/2, opt);

  campaign.run([](sim::CampaignContext& ctx) {
    fifo::FifoConfig probe;
    probe.capacity = 4;
    probe.width = 8;
    const Time p = 2 * std::max(fifo::SyncPutSide::min_period(probe),
                                fifo::SyncGetSide::min_period(probe));
    const double stall = 0.1 * static_cast<double>(ctx.spec().config);

    Design d("camp");
    const DomainId a = d.domain("fast", {p, 4 * p, 0.5, 0});
    const DomainId b = d.domain("slow", {p * 13 / 8, 4 * p + 89, 0.5, 0});
    const NodeId src = d.source("src", Design::sync_out("out", a, 8));
    const NodeId snk = d.sink("snk", Design::sync_in("in", b, 8), {stall});
    LinkOptions link;
    link.capacity = 4;
    link.latency_left = 1;
    d.connect(src, "out", snk, "in", link, "cdc");

    sim::Simulation& sim = ctx.sim();
    auto elab = builder::elaborate(sim, d);
    sim.run_until(4 * p + 500 * p);

    ctx.set("sent", static_cast<double>(elab->source_sent(src)));
    ctx.set("received", static_cast<double>(elab->sink_received(snk)));
    ctx.set("violations",
            static_cast<double>(elab->total_order_violations()));
    // The topology fingerprint rides in the repro artifact slot.
    ctx.result().artifact = elab->to_json();
  });

  EXPECT_EQ(campaign.failed(), 0u);
  for (const sim::RunResult& r : campaign.results()) {
    EXPECT_EQ(r.scalars.at("violations"), 0.0) << "run " << r.index;
    EXPECT_GT(r.scalars.at("received"), 100.0) << "run " << r.index;
    EXPECT_NE(r.artifact.find("\"inserted\""), std::string::npos);
  }
  return campaign.to_json(/*include_host_stats=*/false);
}

TEST(BuilderGolden, ElaboratedCampaignIsWorkerCountInvariant) {
  const std::string seq = run_builder_campaign(1);
  const std::string par = run_builder_campaign(4);
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace mts
