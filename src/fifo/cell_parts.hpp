// Reusable FIFO cell parts (Section 4: "Each cell can be divided into 3
// distinct parts: a put part..., a get part..., and a data validity
// controller (DV)... these parts can be glued together ... to obtain a cell
// implementation.").
//
// The four FIFO designs are assembled from these parts:
//
//   mixed-clock  = SyncPutPart  + SyncGetPart  + SR-latch DV
//   async-sync   = AsyncPutPart + SyncGetPart  + DV_as Petri net
//   sync-async   = SyncPutPart  + AsyncGetPart + DV_linear Petri net
//   async-async  = AsyncPutPart + AsyncGetPart + DV_linear Petri net  ([4])
#pragma once

#include "ctrl/burst_mode.hpp"
#include "ctrl/petri.hpp"
#include "fifo/config.hpp"
#include "gates/flops.hpp"
#include "gates/netlist.hpp"
#include "gates/timing.hpp"
#include "sim/signal.hpp"

namespace mts::fifo {

/// One-sided timing constraint of the token-ring cell (present in the real
/// design and made explicit here): after a clock edge, a cell's freshly
/// arrived token must not reach the we_i/re_i AND gate before the enable
/// broadcast has had time to deassert, or the new token holder would see a
/// spurious enable pulse and corrupt its DV latch. The token flop's output
/// buffering is therefore matched to the controller-response path
/// (environment reaction + controller gate + broadcast network, plus one
/// gate of margin). These return that matched delay for each side.
sim::Time put_token_match_delay(const FifoConfig& cfg);
sim::Time get_token_match_delay(const FifoConfig& cfg);

/// Synchronous put part (Fig. 5, upper half): put-token ETDFF, the we_i
/// enable (ptok & en_put), the REG write port and the validity flop.
/// Data and tokens latch on the CLK_put edge that ends an enabled cycle.
class SyncPutPart {
 public:
  /// `tok_in`/`tok_out` are this cell's slice of the put-token ring;
  /// `en_broadcast` is the buffered global en_put.
  SyncPutPart(gates::Netlist& nl, unsigned index, sim::Wire& clk,
              sim::Wire& en_broadcast, sim::Wire& tok_in, sim::Wire& tok_out,
              sim::Word& data_put, sim::Wire& req_put, const FifoConfig& cfg,
              gates::TimingDomain* domain, bool initial_token);

  /// ptok_i & en_put: REG write enable and the DV "put is happening" input.
  sim::Wire& we() const noexcept { return *we_; }
  sim::Word& reg_q() const noexcept { return *reg_q_; }
  sim::Wire& v_q() const noexcept { return *v_q_; }

 private:
  sim::Wire* we_ = nullptr;
  sim::Word* reg_q_ = nullptr;
  sim::Wire* v_q_ = nullptr;
};

/// Synchronous get part (Fig. 5, lower half): get-token ETDFF and the re_i
/// enable (gtok & en_get) that drives the tri-state buses and the DV reset.
class SyncGetPart {
 public:
  SyncGetPart(gates::Netlist& nl, unsigned index, sim::Wire& clk,
              sim::Wire& en_broadcast, sim::Wire& tok_in, sim::Wire& tok_out,
              const FifoConfig& cfg, gates::TimingDomain* domain,
              bool initial_token);

  sim::Wire& re() const noexcept { return *re_; }

 private:
  sim::Wire* re_ = nullptr;
};

/// Asynchronous put part ([4], reused in Section 4): ObtainPutToken
/// burst-mode machine, asymmetric C-element gating we, and a transparent
/// word latch as the REG write port. we_i doubles as the cell's
/// acknowledgment (merged into put_ack by an OR tree) and as the token
/// pulse we1 for the next cell.
class AsyncPutPart {
 public:
  /// `req_broadcast` is the buffered global put_req; `we1` is the previous
  /// cell's we; `e_i` is the DV empty state (C-element guard); `we_out` is
  /// the caller-owned wire this part drives (the cells' we wires form a
  /// ring, so they must pre-exist).
  AsyncPutPart(gates::Netlist& nl, unsigned index, sim::Wire& req_broadcast,
               sim::Word& put_data, sim::Wire& we1, sim::Wire& e_i,
               sim::Wire& we_out, const FifoConfig& cfg, bool initial_token);

  sim::Wire& we() const noexcept { return *we_; }
  sim::Wire& ptok() const noexcept { return *ptok_; }
  sim::Word& reg_q() const noexcept { return *reg_q_; }

 private:
  sim::Wire* we_ = nullptr;
  sim::Wire* ptok_ = nullptr;
  sim::Word* reg_q_ = nullptr;
};

/// Asynchronous get part ([4]): ObtainGetToken machine (same burst-mode
/// spec as OPT) and an asymmetric C-element gating re. re_i enables this
/// cell's tri-state driver and is merged into get_ack.
class AsyncGetPart {
 public:
  AsyncGetPart(gates::Netlist& nl, unsigned index, sim::Wire& req_broadcast,
               sim::Wire& re1, sim::Wire& f_i, sim::Wire& re_out,
               const FifoConfig& cfg, bool initial_token);

  sim::Wire& re() const noexcept { return *re_; }
  sim::Wire& gtok() const noexcept { return *gtok_; }

 private:
  sim::Wire* re_ = nullptr;
  sim::Wire* gtok_ = nullptr;
};

/// Petri-net data-validity controller wrapper: owns the e_i/f_i wires and
/// the engine executing the given net (dv_as_net or dv_linear_net).
class DvController {
 public:
  DvController(gates::Netlist& nl, unsigned index, const ctrl::PetriNet& net,
               sim::Wire& we, sim::Wire& re, sim::Time output_delay);

  sim::Wire& e() const noexcept { return *e_; }
  sim::Wire& f() const noexcept { return *f_; }

 private:
  sim::Wire* e_ = nullptr;
  sim::Wire* f_ = nullptr;
};

}  // namespace mts::fifo
