// The asynchronous handshake's static cycle-time estimate must track the
// measured saturated rate and scale the way Table 1 does.
#include "fifo/async_timing.hpp"

#include <gtest/gtest.h>

#include "fifo/interface_sides.hpp"
#include "metrics/experiments.hpp"

namespace mts::fifo {
namespace {

FifoConfig cfg_of(unsigned capacity, unsigned width) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

TEST(AsyncTiming, EstimateTracksMeasurementWithin15Percent) {
  for (unsigned cap : {4u, 8u, 16u}) {
    const FifoConfig cfg = cfg_of(cap, 8);
    const double est = async_put_mops_estimate(cfg);
    const double meas = metrics::throughput_async_sync(cfg, 500).put;
    EXPECT_NEAR(est, meas, 0.15 * meas) << "capacity " << cap;
  }
}

TEST(AsyncTiming, ScalesWithCapacityAndWidth) {
  EXPECT_GT(async_put_mops_estimate(cfg_of(4, 8)),
            async_put_mops_estimate(cfg_of(16, 8)));
  EXPECT_GT(async_put_mops_estimate(cfg_of(4, 8)),
            async_put_mops_estimate(cfg_of(4, 16)));
}

TEST(AsyncTiming, IndependentOfControllerKind) {
  // The async put half is identical in the FIFO and the ASRS (Table 1's
  // identical columns).
  FifoConfig fifo_cfg = cfg_of(8, 8);
  FifoConfig rs_cfg = fifo_cfg;
  rs_cfg.controller = ControllerKind::kRelayStation;
  EXPECT_EQ(async_put_cycle_estimate(fifo_cfg),
            async_put_cycle_estimate(rs_cfg));
}

TEST(AsyncTiming, SlowerThanSyncInterfaces) {
  // Table 1's ordering: the asynchronous put protocol is the slowest
  // interface of each design.
  const FifoConfig cfg = cfg_of(8, 8);
  EXPECT_LT(async_put_mops_estimate(cfg),
            sim::period_to_mhz(SyncGetSide::min_period(cfg)));
}

}  // namespace
}  // namespace mts::fifo
