# Empty compiler generated dependencies file for mts_test_integration.
# This may be replaced when dependencies are built.
