// 1-safe Petri-net controller engine.
//
// The paper's DV_as data-validity controller is specified as a Petri net
// (Fig. 10b) and synthesized with Petrify. We execute the net directly:
//
//   - *input* transitions are labelled with an edge of an input wire; when
//     that edge arrives, the transition fires if enabled (all pre-places
//     marked); an arriving edge with no enabled transition is reported as
//     "pn-illegal-input";
//   - *output* transitions drive an edge on an output wire; they fire
//     eagerly (with the controller's output delay) whenever enabled.
//
// The engine enforces 1-safety: a firing that would place a second token in
// a place indicates a malformed net and throws.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::ctrl {

struct PnTransition {
  std::string label;            ///< diagnostics, e.g. "we+" or "e_i-"
  bool is_input = true;         ///< input (wire-edge triggered) vs output
  unsigned signal = 0;          ///< index into inputs or outputs
  bool rising = true;           ///< edge direction
  std::vector<unsigned> pre;    ///< consumed places
  std::vector<unsigned> post;   ///< produced places
};

struct PetriNet {
  std::string name;
  unsigned num_places = 0;
  std::vector<unsigned> initial_marking;  ///< place indices holding a token
  std::vector<PnTransition> transitions;

  void validate(std::size_t num_inputs, std::size_t num_outputs) const;
};

/// Marking as a place-indexed bit vector -- the engine's and the model
/// checker's shared state representation.
using PnMarking = std::vector<bool>;

PnMarking pn_initial_marking(const PetriNet& net);

/// True iff every pre-place of `t` is marked.
bool pn_enabled(const PetriNet& net, const PnMarking& m, const PnTransition& t);

/// Outcome of firing one transition.
struct PnFire {
  bool safe = true;        ///< false: a post-place was already marked
  unsigned bad_place = 0;  ///< the doubly-marked place when !safe
};

/// Fires `t` in place (no enabledness check). On a 1-safety violation the
/// pre-places are already consumed and the marking is only partially
/// produced; callers must treat !safe as fatal, exactly as PetriEngine
/// throws.
PnFire pn_fire(const PetriNet& net, PnMarking& m, const PnTransition& t);

/// Outcome of one input-wire edge.
struct PnStep {
  bool fired = false;          ///< an enabled matching transition fired
  std::size_t transition = 0;  ///< its index when fired
  bool safe = true;
  unsigned bad_place = 0;
};

/// Applies one input-wire edge: fires the first enabled input transition
/// matching (signal, rising) -- the rule PetriEngine applies. fired=false
/// means the edge was illegal in this marking ("pn-illegal-input").
PnStep pn_input_step(const PetriNet& net, PnMarking& m, unsigned signal,
                     bool rising);

/// Outcome of the eager output sweep.
struct PnSweep {
  std::vector<std::size_t> fired;  ///< output transitions in firing order
  bool safe = true;
  std::size_t bad_transition = 0;  ///< transition whose firing went unsafe
  unsigned bad_place = 0;
};

/// Eagerly fires enabled output transitions to quiescence, recording each
/// fired transition's index in firing order (the order the engine writes
/// its output wires). Stops at the first 1-safety violation.
PnSweep pn_run_outputs(const PetriNet& net, PnMarking& m);

class PetriEngine {
 public:
  PetriEngine(sim::Simulation& sim, std::string instance, const PetriNet& net,
              std::vector<sim::Wire*> inputs, std::vector<sim::Wire*> outputs,
              sim::Time output_delay);

  PetriEngine(const PetriEngine&) = delete;
  PetriEngine& operator=(const PetriEngine&) = delete;

  bool marked(unsigned place) const { return marking_.at(place); }
  std::uint64_t firings() const noexcept { return firings_; }

 private:
  void on_input_edge(unsigned signal, bool rising);
  void run_output_transitions();
  [[noreturn]] void throw_unsafe(const PnTransition& t, unsigned place) const;

  sim::Simulation& sim_;
  std::string instance_;
  const PetriNet& net_;
  std::vector<sim::Wire*> inputs_;
  std::vector<sim::Wire*> outputs_;
  sim::Time output_delay_;
  PnMarking marking_;
  std::uint64_t firings_ = 0;
};

}  // namespace mts::ctrl
