file(REMOVE_RECURSE
  "libmts_fifo.a"
)
