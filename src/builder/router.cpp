#include "builder/router.hpp"

#include "builder/traffic.hpp"
#include "sim/report.hpp"

namespace mts::builder {

const char* to_string(RouterDir d) noexcept {
  switch (d) {
    case RouterDir::kNorth: return "N";
    case RouterDir::kSouth: return "S";
    case RouterDir::kEast: return "E";
    case RouterDir::kWest: return "W";
    case RouterDir::kLocal: return "L";
  }
  return "?";
}

MeshRouter::MeshRouter(sim::Simulation& sim, std::string name, sim::Wire& clk,
                       unsigned x, unsigned y, unsigned queue_depth,
                       std::vector<InPort> inputs, std::vector<OutPort> outputs,
                       const gates::DelayModel& dm)
    : sim_(sim),
      name_(std::move(name)),
      clk_to_q_(dm.flop.clk_to_q),
      x_(x),
      y_(y),
      queue_depth_(queue_depth),
      in_(std::move(inputs)),
      out_(std::move(outputs)),
      queues_(in_.size()),
      prev_stop_(in_.size(), false),
      held_(out_.size(), 0),
      held_full_(out_.size(), false),
      rr_(out_.size(), 0) {
  clk.on_rise([this] { on_edge(); });
}

RouterDir MeshRouter::route(std::uint64_t packet) const {
  const unsigned dest = PacketFormat::dest(packet);
  const unsigned dx = (dest >> 4) & 0xF;
  const unsigned dy = dest & 0xF;
  if (dx > x_) return RouterDir::kEast;
  if (dx < x_) return RouterDir::kWest;
  if (dy > y_) return RouterDir::kNorth;
  if (dy < y_) return RouterDir::kSouth;
  return RouterDir::kLocal;
}

unsigned MeshRouter::occupancy() const {
  unsigned n = 0;
  for (const auto& q : queues_) n += static_cast<unsigned>(q.size());
  for (const bool h : held_full_) n += h ? 1 : 0;
  return n;
}

void MeshRouter::on_edge() {
  // 1. Retire output registers whose downstream stop was low this cycle.
  for (std::size_t o = 0; o < out_.size(); ++o) {
    if (held_full_[o] && !out_[o].stop->read()) held_full_[o] = false;
  }

  // 2. Capture arrivals: a packet transferred at this edge iff our
  //    registered stop was low during the ending cycle.
  for (std::size_t i = 0; i < in_.size(); ++i) {
    if (!prev_stop_[i] && in_[i].valid->read()) {
      queues_[i].push_back(in_[i].data->read());
    }
  }

  // 3. Dispatch: per-output round-robin over input queues whose head
  //    XY-routes to it. Each queue head targets exactly one output, so no
  //    input is popped twice in one cycle.
  for (std::size_t o = 0; o < out_.size(); ++o) {
    if (held_full_[o]) continue;
    const std::size_t n = in_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (rr_[o] + k) % n;
      if (queues_[i].empty()) continue;
      const std::uint64_t head = queues_[i].front();
      const RouterDir dir = route(head);
      bool known = false;
      for (const OutPort& op : out_) known = known || op.dir == dir;
      if (!known) {
        // No port in that direction (edge of the mesh with a bad address):
        // drop rather than wedge the queue.
        queues_[i].pop_front();
        ++misroutes_;
        sim_.report().add(sim_.now(), sim::Severity::kWarning, "mesh_router",
                          name_ + ": no " + std::string(to_string(dir)) +
                              " port for dest " +
                              std::to_string(PacketFormat::dest(head)) +
                              "; packet dropped");
        continue;
      }
      if (dir != out_[o].dir) continue;
      queues_[i].pop_front();
      held_[o] = head;
      held_full_[o] = true;
      ++forwarded_;
      rr_[o] = (i + 1) % n;
      break;
    }
  }

  // 4. Drive registered outputs: packet registers toward downstream, stop
  //    toward upstream (raised one short of full so the packet already in
  //    flight under the LI convention still fits).
  for (std::size_t o = 0; o < out_.size(); ++o) {
    out_[o].valid->write(held_full_[o], clk_to_q_, sim::DelayKind::kInertial);
    out_[o].data->write(held_[o], clk_to_q_, sim::DelayKind::kInertial);
  }
  for (std::size_t i = 0; i < in_.size(); ++i) {
    const bool stop = queues_[i].size() + 1 >= queue_depth_;
    prev_stop_[i] = stop;
    in_[i].stop->write(stop, clk_to_q_, sim::DelayKind::kInertial);
  }
}

}  // namespace mts::builder
