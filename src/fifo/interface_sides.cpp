#include "fifo/interface_sides.hpp"

#include "fifo/cell_parts.hpp"
#include "fifo/detectors.hpp"
#include "gates/combinational.hpp"
#include "sync/synchronizer.hpp"

namespace mts::fifo {

sim::Time path_total(const PathBreakdown& path) {
  sim::Time total = 0;
  for (const PathElement& e : path) total += e.delay;
  return total;
}

SyncPutSide::SyncPutSide(gates::Netlist& nl, sim::Wire& clk_put,
                         const FifoConfig& cfg, gates::TimingDomain& domain,
                         const std::vector<sim::Wire*>& e, sim::Wire& req_put,
                         sim::Wire& en_put_b) {
  const gates::DelayModel& dm = cfg.dm;
  full_raw_ = cfg.full_kind == FullDetectorKind::kAnticipating
                  ? &build_anticipating_full(nl, e, dm,
                                             anticipation_window(cfg.sync.depth))
                  : &build_exact_full(nl, e, dm);

  auto& full_sync =
      nl.add<sync::Synchronizer>(nl.sim(), nl.qualified("fullSync"), clk_put,
                                 *full_raw_, dm, cfg.sync, &domain, false);
  full_ext_ = &full_sync.out();

  sim::Wire& en_put_raw = nl.wire("en_put_raw");
  if (cfg.controller == ControllerKind::kFifo) {
    // en_put = req_put & !full (Fig. 7a).
    gates::gate_into(nl, "putCtrl", gates::GateOp::kAndNotLast,
                     {&req_put, full_ext_}, en_put_raw, dm.gate(3));
  } else {
    // Relay station (Fig. 13a): the put controller is an inverter; req_put
    // is part of the packet, not a control signal.
    gates::gate_into(nl, "putCtrl", gates::GateOp::kNot, {full_ext_},
                     en_put_raw, dm.gate(1));
  }
  gates::gate_into(nl, "enPutBcast", gates::GateOp::kBuf, {&en_put_raw},
                   en_put_b, dm.broadcast(cfg.capacity, cfg.width + 2));
}

PathBreakdown SyncPutSide::describe_min_period(const FifoConfig& cfg) {
  const gates::DelayModel& dm = cfg.dm;
  // Cycle-limiting loop: the slower of (a) the controller leg -- full-sync
  // Q -> controller -> en_put broadcast -- and (b) the matched token leg;
  // then we_i AND -> DV set -> full detector -> synchronizer front-flop
  // setup. The token leg exceeds the controller leg by one gate of margin
  // by construction.
  const sim::Time ctrl_leg =
      (cfg.controller == ControllerKind::kFifo ? dm.gate(3) : dm.gate(1)) +
      dm.broadcast(cfg.capacity, cfg.width + 2);
  const sim::Time token_leg = put_token_match_delay(cfg);
  PathBreakdown path;
  path.push_back({"token flop clk-to-q", dm.flop.clk_to_q});
  if (ctrl_leg > token_leg) {
    path.push_back({"put controller + en_put broadcast", ctrl_leg});
  } else {
    path.push_back({"matched token buffering", token_leg});
  }
  path.push_back({"we_i AND", dm.gate(2, 3)});
  path.push_back({"DV set", dm.sr_latch});
  path.push_back(
      {"full detector",
       detector_delay(cfg.capacity,
                      cfg.full_kind == FullDetectorKind::kAnticipating
                          ? anticipation_window(cfg.sync.depth)
                          : 0,
                      dm)});
  path.push_back({"full-sync front-flop setup", dm.flop.setup});
  return path;
}

sim::Time SyncPutSide::min_period(const FifoConfig& cfg) {
  return path_total(describe_min_period(cfg));
}

SyncGetSide::SyncGetSide(gates::Netlist& nl, sim::Wire& clk_get,
                         const FifoConfig& cfg, gates::TimingDomain& domain,
                         const std::vector<sim::Wire*>& f, sim::Wire& req_get,
                         sim::Wire& stop_in, sim::Wire& valid_bus,
                         sim::Wire& valid_ext, sim::Wire& empty_w,
                         sim::Wire& en_get_b) {
  const gates::DelayModel& dm = cfg.dm;
  sim::Simulation& sim = nl.sim();

  ne_raw_ = &build_anticipating_empty(nl, f, dm,
                                      anticipation_window(cfg.sync.depth));
  oe_raw_ = &build_true_empty(nl, f, dm);

  sim::Wire& en_get_raw = nl.wire("en_get_raw");
  sim::Wire* ne_s = nullptr;
  sim::Wire* oe_s = nullptr;
  if (cfg.empty_kind != EmptyDetectorKind::kOeOnly) {
    ne_s = &nl.add<sync::Synchronizer>(sim, nl.qualified("neSync"), clk_get,
                                       *ne_raw_, dm, cfg.sync, &domain, true)
                .out();
  }
  if (cfg.empty_kind != EmptyDetectorKind::kNeOnly) {
    // The OR gate of Fig. 7b rides inside the oe synchronizer (after its
    // front latch): one cycle after a get, oe is forced to the neutral
    // "empty" state so ne takes precedence.
    sim::Wire* veto =
        cfg.empty_kind == EmptyDetectorKind::kBimodal ? &en_get_raw : nullptr;
    oe_s = &nl.add<sync::Synchronizer>(sim, nl.qualified("oeSync"), clk_get,
                                       *oe_raw_, dm, cfg.sync, &domain, true,
                                       veto)
                .out();
  }

  switch (cfg.empty_kind) {
    case EmptyDetectorKind::kBimodal:
      gates::gate_into(nl, "emptyAnd", gates::GateOp::kAnd, {ne_s, oe_s},
                       empty_w, dm.gate(2, 2));
      break;
    case EmptyDetectorKind::kNeOnly:
      gates::gate_into(nl, "emptyBuf", gates::GateOp::kBuf, {ne_s}, empty_w,
                       dm.gate(1));
      break;
    case EmptyDetectorKind::kOeOnly:
      gates::gate_into(nl, "emptyBuf", gates::GateOp::kBuf, {oe_s}, empty_w,
                       dm.gate(1));
      break;
  }

  if (cfg.controller == ControllerKind::kFifo) {
    // en_get = req_get & !empty (Fig. 7b).
    gates::gate_into(nl, "getCtrl", gates::GateOp::kAndNotLast,
                     {&req_get, &empty_w}, en_get_raw, dm.gate(3));
    // External validity: the valid bus is only meaningful during an enabled
    // get cycle.
    gates::gate_into(nl, "validGate", gates::GateOp::kAnd,
                     {&valid_bus, &en_get_b}, valid_ext, dm.gate(2));
  } else {
    // Relay station (Figs. 13b / 16): dequeue continuously unless empty or
    // stopped; validity gates on the same condition.
    gates::gate_into(nl, "getCtrl", gates::GateOp::kNor, {&empty_w, &stop_in},
                     en_get_raw, dm.gate(2, 2));
    nl.add<gates::Gate>(
        sim, nl.qualified("validGate"),
        std::vector<sim::Wire*>{&valid_bus, &empty_w, &stop_in}, valid_ext,
        [](const std::vector<bool>& v) { return v[0] && !v[1] && !v[2]; },
        dm.gate(3));
  }

  gates::gate_into(nl, "enGetBcast", gates::GateOp::kBuf, {&en_get_raw},
                   en_get_b, dm.broadcast(cfg.capacity, cfg.width + 2));
}

PathBreakdown SyncGetSide::describe_min_period(const FifoConfig& cfg) {
  const gates::DelayModel& dm = cfg.dm;
  // Controller leg: empty-sync Q -> empty AND (bimodal) -> controller ->
  // en_get broadcast. This is what makes the get interface slower than the
  // put interface in Table 1 ("because of the complexity of the empty
  // detector").
  sim::Time ctrl_leg = dm.broadcast(cfg.capacity, cfg.width + 2);
  switch (cfg.empty_kind) {
    case EmptyDetectorKind::kBimodal:
      ctrl_leg += dm.gate(2, 2);
      break;
    case EmptyDetectorKind::kNeOnly:
    case EmptyDetectorKind::kOeOnly:
      ctrl_leg += dm.gate(1);
      break;
  }
  ctrl_leg += cfg.controller == ControllerKind::kFifo ? dm.gate(3)
                                                      : dm.gate(2, 2);
  const sim::Time token_leg = get_token_match_delay(cfg);

  PathBreakdown common;
  common.push_back({"token flop clk-to-q", dm.flop.clk_to_q});
  if (ctrl_leg > token_leg) {
    common.push_back({"empty AND + get controller + en_get broadcast",
                      ctrl_leg});
  } else {
    common.push_back({"matched token buffering", token_leg});
  }
  common.push_back({"re_i AND", dm.gate(2, 3)});

  // Empty-detector loop: re_i -> DV reset -> ne tree (always deeper than
  // the oe tree; Fig. 7b's OR gate sits between synchronizer stages and is
  // not on this path) -> synchronizer front-flop setup.
  PathBreakdown det_path = common;
  det_path.push_back({"DV reset", dm.sr_latch});
  det_path.push_back(
      {"ne detector",
       detector_delay(cfg.capacity, anticipation_window(cfg.sync.depth), dm)});
  det_path.push_back({"ne-sync front-flop setup", dm.flop.setup});

  // Read path: re_i -> tri-state bus -> receiver sampling flop.
  PathBreakdown read_path = common;
  read_path.push_back({"get_data tri-state bus",
                       dm.tristate_bus(cfg.capacity, cfg.width)});
  read_path.push_back({"receiver flop setup", dm.flop.setup});

  return path_total(det_path) > path_total(read_path) ? det_path : read_path;
}

sim::Time SyncGetSide::min_period(const FifoConfig& cfg) {
  return path_total(describe_min_period(cfg));
}

}  // namespace mts::fifo
