// Related-Work comparison (Section 1): the Chelcea-Nowick mixed-clock FIFO
// vs a Seizovic-style pipeline-synchronization baseline [13].
//
// The paper's claims, quantified here:
//   - "the latency of his design is proportional with the number of FIFO
//     stages" -- the baseline's empty-FIFO latency grows linearly with
//     capacity while the token-ring design's stays nearly flat (data is
//     immobile: an enqueued item is immediately visible at the output);
//   - steady-state throughput: the baseline pays a synchronizer settling
//     interval per hop; the token-ring design synchronizes only the two
//     global state bits and sustains one word per cycle.
//
// Usage: bench_baseline_comparison [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/baseline_shift_fifo.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "metrics/experiments.hpp"
#include "metrics/table.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

fifo::FifoConfig cfg_of(unsigned capacity) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = 8;
  return cfg;
}

struct BaselineResult {
  double latency_ns;
  double throughput_per_cycle;
};

BaselineResult run_baseline(unsigned capacity) {
  const fifo::FifoConfig cfg = cfg_of(capacity);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);

  BaselineResult r{};
  {  // latency: single item through an empty pipeline
    sim::Simulation sim(1);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
    fifo::BaselineShiftFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::GetMonitor mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
    dut.req_get().set(true);
    const Time react = cfg.dm.flop.clk_to_q + 1;
    const Time edge = 4 * pp + 8 * pp;
    const Time t_start = edge + react;
    sim.sched().at(t_start, [&] {
      dut.data_put().set(0x55);
      dut.req_put().set(true);
      sb.push(0x55);
    });
    sim.sched().at(edge + pp + react, [&] { dut.req_put().set(false); });
    sim.run_until(edge + 300 * gp);
    r.latency_ns = mon.dequeued() == 1
                       ? static_cast<double>(mon.last_dequeue_time() - t_start) /
                             1e3
                       : -1.0;
  }
  {  // throughput: saturated
    sim::Simulation sim(1);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
    fifo::BaselineShiftFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::GetMonitor mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                           dut.full(), cfg.dm, {1.0, 1}, 0xFF);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    sim.run_until(4 * pp + 200 * pp);
    const auto before = mon.dequeued();
    const Time t0 = sim.now();
    sim.run_until(t0 + 600 * gp);
    r.throughput_per_cycle =
        static_cast<double>(mon.dequeued() - before) / 600.0;
  }
  return r;
}

double run_token_ring_throughput(unsigned capacity) {
  const fifo::FifoConfig cfg = cfg_of(capacity);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sim::Simulation sim(1);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::GetMonitor mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  sim.run_until(4 * pp + 200 * pp);
  const auto before = mon.dequeued();
  const Time t0 = sim.now();
  sim.run_until(t0 + 600 * gp);
  return static_cast<double>(mon.dequeued() - before) / 600.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }

  std::printf("Token-ring mixed-clock FIFO vs pipeline-synchronization "
              "baseline (Seizovic-style [13]); 8-bit items, matched clocks\n\n");
  metrics::Table t({"places", "CN latency min (ns)", "baseline latency (ns)",
                    "CN tput (word/cycle)", "baseline tput (word/cycle)"});
  for (unsigned cap : {4u, 8u, 16u}) {
    const auto cn_lat = metrics::latency_mixed_clock(cfg_of(cap), 8);
    const BaselineResult base = run_baseline(cap);
    const double cn_tput = run_token_ring_throughput(cap);
    t.add_row({std::to_string(cap), metrics::fmt(cn_lat.min_ns, 2),
               metrics::fmt(base.latency_ns, 2), metrics::fmt(cn_tput, 2),
               metrics::fmt(base.throughput_per_cycle, 2)});
  }
  std::fputs(csv ? t.to_csv().c_str() : t.to_string().c_str(), stdout);
  std::printf("\nClaim check: the baseline's latency grows ~linearly with "
              "capacity (one synchronizer settling per stage) while the "
              "token-ring design's is nearly flat; per-hop synchronization "
              "also costs the baseline most of its throughput.\n");
  return 0;
}
