// Discrete-event scheduler.
//
// A min-heap of (time, sequence) ordered events. Events scheduled for the
// same timestamp run in scheduling order, which gives the kernel
// deterministic delta-cycle semantics: a zero-delay write scheduled while
// processing time T runs later within T, never "before" already-pending work.
//
// A per-timestamp event budget guards against combinational oscillation
// (e.g. an inverter loop with zero delay): exceeding it raises
// SimulationError instead of hanging the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/error.hpp"
#include "sim/time.hpp"

namespace mts::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t`; `t` must not be in the past.
  void at(Time t, Callback cb);

  /// Schedules `cb` at now() + delay.
  void after(Time delay, Callback cb) { at(now_ + delay, std::move(cb)); }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Runs the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Runs every event with timestamp <= t; now() == t afterwards even if
  /// the queue drained early.
  void run_until(Time t);

  /// Runs until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kDefaultRunBudget);

  /// Upper bound on events executed at a single timestamp before the kernel
  /// declares a combinational oscillation.
  void set_timestamp_budget(std::size_t budget) { timestamp_budget_ = budget; }

  static constexpr std::size_t kDefaultRunBudget = 500'000'000;

 private:
  struct Event {
    Time t = 0;
    std::uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void execute(Event& e);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_at_now_ = 0;
  std::size_t timestamp_budget_ = 4'000'000;
};

}  // namespace mts::sim
