// The stretched-veto mechanism of deep synchronizer chains (Fig. 7b
// generalized): the veto must take effect one cycle after assertion and
// persist for depth-1 cycles, for any depth.
#include <gtest/gtest.h>

#include "sync/clock.hpp"
#include "sync/synchronizer.hpp"

namespace mts::sync {
namespace {

using sim::Time;

struct Fixture {
  sim::Simulation sim{1};
  gates::DelayModel dm = gates::DelayModel::hp06();
  Time period = 2000;
  Clock clk{sim, "clk", {period, period, 0.5, 0}};
  sim::Wire in{sim, "in"};
  sim::Wire veto{sim, "veto"};
};

class VetoDepth : public ::testing::TestWithParam<unsigned> {};

TEST_P(VetoDepth, VetoLandsNextCycleForAnyDepth) {
  const unsigned depth = GetParam();
  Fixture f;
  Synchronizer s(f.sim, "sync", f.clk.out(), f.in, f.dm,
                 {depth, MetaMode::kDeterministic}, nullptr, false, &f.veto);
  // Input low throughout; assert the veto mid-cycle 5.
  f.sim.sched().at(5 * f.period + 500, [&] { f.veto.set(true); });
  f.sim.sched().at(6 * f.period + 500, [&] { f.veto.set(false); });

  // One edge after assertion (edge at 6*period, output settles clk-to-q
  // later): the chain output must be forced high.
  f.sim.run_until(6 * f.period + f.dm.flop.clk_to_q + 400);
  EXPECT_TRUE(s.out().read()) << "depth " << depth;
}

TEST_P(VetoDepth, VetoPersistsDepthMinusOneCycles) {
  const unsigned depth = GetParam();
  Fixture f;
  Synchronizer s(f.sim, "sync", f.clk.out(), f.in, f.dm,
                 {depth, MetaMode::kDeterministic}, nullptr, false, &f.veto);
  // Single-cycle veto pulse during cycle 5..6.
  f.sim.sched().at(5 * f.period + 500, [&] { f.veto.set(true); });
  f.sim.sched().at(6 * f.period + 500, [&] { f.veto.set(false); });

  // The forced high must persist through edges 6 .. 6+depth-2 (the stale
  // window), i.e. the output stays high until the true input value (low)
  // has propagated through every earlier stage.
  for (unsigned k = 0; k + 1 < depth; ++k) {
    f.sim.run_until((6 + k) * f.period + f.dm.flop.clk_to_q + 400);
    EXPECT_TRUE(s.out().read()) << "depth " << depth << " cycle +" << k;
  }
  // After the window, the chain returns to the true (low) input.
  f.sim.run_until((6 + depth) * f.period + f.dm.flop.clk_to_q + 400);
  EXPECT_FALSE(s.out().read()) << "depth " << depth;
}

INSTANTIATE_TEST_SUITE_P(Depths, VetoDepth, ::testing::Values(2u, 3u, 4u, 5u),
                         [](const ::testing::TestParamInfo<unsigned>& i) {
                           return "depth" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace mts::sync
