file(REMOVE_RECURSE
  "CMakeFiles/bench_detector_ablation.dir/bench_detector_ablation.cpp.o"
  "CMakeFiles/bench_detector_ablation.dir/bench_detector_ablation.cpp.o.d"
  "bench_detector_ablation"
  "bench_detector_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detector_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
