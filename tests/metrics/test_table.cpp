#include "metrics/table.hpp"

#include <gtest/gtest.h>

#include "sim/error.hpp"

namespace mts::metrics {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"Version", "put", "get"});
  t.add_row({"Mixed-Clock", "565", "549"});
  t.add_row({"Async-Sync RS", "421", "539"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Version"), std::string::npos);
  EXPECT_NE(s.find("Mixed-Clock"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Column values line up: "put" header column contains both numbers.
  const auto hdr_pos = s.find("put");
  const auto v1_pos = s.find("565");
  ASSERT_NE(hdr_pos, std::string::npos);
  ASSERT_NE(v1_pos, std::string::npos);
  const auto line_start_hdr = s.rfind('\n', hdr_pos);
  const auto line_start_v1 = s.rfind('\n', v1_pos);
  EXPECT_EQ(hdr_pos - (line_start_hdr + 1), v1_pos - (line_start_v1 + 1));
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, ArityMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), ConfigError);
  EXPECT_THROW(Table({}), ConfigError);
}

TEST(TableTest, FmtFormatsFixedPrecision) {
  EXPECT_EQ(fmt(5.434, 2), "5.43");
  EXPECT_EQ(fmt(565.2, 0), "565");
}

}  // namespace
}  // namespace mts::metrics
