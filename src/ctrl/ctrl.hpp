// Umbrella header for asynchronous controller engines and specs.
#pragma once

#include "ctrl/burst_mode.hpp"  // IWYU pragma: export
#include "ctrl/petri.hpp"         // IWYU pragma: export
#include "ctrl/reachability.hpp"  // IWYU pragma: export
#include "ctrl/dot.hpp"         // IWYU pragma: export
#include "ctrl/specs.hpp"       // IWYU pragma: export
