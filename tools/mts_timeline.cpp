// mts_timeline -- inspect telemetry timelines without Perfetto.
//
// Reads a telemetry JSONL file (one {"t": <ps>, "s": "<series>", "v":
// <value>} object per line -- the sim::Telemetry / TimeSeriesStore export,
// see src/metrics/timeseries.hpp) and prints one row per series: an ASCII
// sparkline over the series' time span plus a count/min/mean/max/last
// summary. `-` reads stdin.
//
//   mts_timeline out/soc_timeline.jsonl
//   mts_timeline --series fifo --width 72 out/soc_timeline.jsonl
//   mts_timeline --json out/run-0.jsonl        # machine-readable rollup
//
// Options:
//
//   --series SUBSTR   only series whose name contains SUBSTR
//   --width N         sparkline columns (default 60)
//   --json            JSON rollup instead of the table: per-series count,
//                     min/mean/max, first/last time and last value
//
// Exit status: 0 on success, 1 on empty/missing input, 2 on usage errors.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Point {
  std::uint64_t t = 0;  ///< picoseconds
  double v = 0.0;
};

struct Args {
  std::string path;
  std::string series_filter;
  std::size_t width = 60;
  bool json = false;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: mts_timeline [--series SUBSTR] [--width N] [--json] "
               "FILE|-\n");
  std::exit(code);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      a.json = true;
    } else if (std::strcmp(arg, "--series") == 0) {
      if (i + 1 >= argc) usage(2);
      a.series_filter = argv[++i];
    } else if (std::strcmp(arg, "--width") == 0) {
      if (i + 1 >= argc) usage(2);
      const int w = std::atoi(argv[++i]);
      if (w < 1) usage(2);
      a.width = static_cast<std::size_t>(w);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(0);
    } else if (arg[0] == '-' && std::strcmp(arg, "-") != 0) {
      std::fprintf(stderr, "mts_timeline: unknown option '%s'\n", arg);
      usage(2);
    } else if (a.path.empty()) {
      a.path = arg;
    } else {
      usage(2);
    }
  }
  if (a.path.empty()) usage(2);
  return a;
}

/// Minimal field extractor for the fixed telemetry JSONL shape. Returns
/// false on lines that don't carry all three fields (blank lines, noise).
bool parse_line(const std::string& line, std::uint64_t& t, std::string& s,
                double& v) {
  const auto find_key = [&](const char* key) -> std::size_t {
    const std::size_t p = line.find(key);
    return p == std::string::npos ? std::string::npos : p + std::strlen(key);
  };
  const std::size_t tp = find_key("\"t\":");
  const std::size_t sp = find_key("\"s\":");
  const std::size_t vp = find_key("\"v\":");
  if (tp == std::string::npos || sp == std::string::npos ||
      vp == std::string::npos) {
    return false;
  }
  t = std::strtoull(line.c_str() + tp, nullptr, 10);
  v = std::strtod(line.c_str() + vp, nullptr);
  const std::size_t q0 = line.find('"', sp);
  if (q0 == std::string::npos) return false;
  const std::size_t q1 = line.find('"', q0 + 1);
  if (q1 == std::string::npos) return false;
  s = line.substr(q0 + 1, q1 - q0 - 1);
  return true;
}

/// 10-level pure-ASCII sparkline: points bucketed over the series' time
/// span, each bucket averaging its points; empty buckets print a space.
std::string sparkline(const std::vector<Point>& pts, std::size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  if (pts.empty()) return std::string(width, ' ');
  const std::uint64_t t0 = pts.front().t;
  const std::uint64_t t1 = std::max(pts.back().t, t0 + 1);
  std::vector<double> sum(width, 0.0);
  std::vector<std::size_t> cnt(width, 0);
  for (const Point& p : pts) {
    std::size_t b = static_cast<std::size_t>(
        static_cast<double>(p.t - t0) / static_cast<double>(t1 - t0) *
        static_cast<double>(width - 1));
    if (b >= width) b = width - 1;
    sum[b] += p.v;
    ++cnt[b];
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t b = 0; b < width; ++b) {
    if (cnt[b] == 0) continue;
    const double m = sum[b] / static_cast<double>(cnt[b]);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  std::string out(width, ' ');
  for (std::size_t b = 0; b < width; ++b) {
    if (cnt[b] == 0) continue;
    const double m = sum[b] / static_cast<double>(cnt[b]);
    const double frac = hi > lo ? (m - lo) / (hi - lo) : 0.5;
    const std::size_t lvl = std::min<std::size_t>(
        9, static_cast<std::size_t>(frac * 9.0 + 0.5));
    out[b] = kLevels[lvl == 0 ? 1 : lvl];  // non-empty buckets never blank
  }
  return out;
}

std::string fmt(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::ifstream file;
  std::istream* in = &std::cin;
  if (args.path != "-") {
    file.open(args.path);
    if (!file) {
      std::fprintf(stderr, "mts_timeline: cannot open '%s'\n",
                   args.path.c_str());
      return 1;
    }
    in = &file;
  }

  std::map<std::string, std::vector<Point>> series;
  std::string line;
  while (std::getline(*in, line)) {
    std::uint64_t t = 0;
    double v = 0.0;
    std::string name;
    if (!parse_line(line, t, name, v)) continue;
    if (!args.series_filter.empty() &&
        name.find(args.series_filter) == std::string::npos) {
      continue;
    }
    series[name].push_back(Point{t, v});
  }
  if (series.empty()) {
    std::fprintf(stderr, "mts_timeline: no matching telemetry points in '%s'\n",
                 args.path.c_str());
    return 1;
  }

  if (args.json) {
    std::ostringstream os;
    os << "{\"series\": [";
    bool first = true;
    for (const auto& [name, pts] : series) {
      double lo = pts.front().v, hi = pts.front().v, sum = 0.0;
      for (const Point& p : pts) {
        lo = std::min(lo, p.v);
        hi = std::max(hi, p.v);
        sum += p.v;
      }
      os << (first ? "" : ", ") << "\n  {\"name\": \"" << name
         << "\", \"points\": " << pts.size() << ", \"t_first\": "
         << pts.front().t << ", \"t_last\": " << pts.back().t
         << ", \"min\": " << fmt(lo) << ", \"mean\": "
         << fmt(sum / static_cast<double>(pts.size())) << ", \"max\": "
         << fmt(hi) << ", \"last\": " << fmt(pts.back().v) << "}";
      first = false;
    }
    os << "\n]}\n";
    std::fputs(os.str().c_str(), stdout);
    return 0;
  }

  std::size_t name_w = 6;
  for (const auto& [name, pts] : series) name_w = std::max(name_w, name.size());
  std::printf("%-*s  %-*s  %8s %12s %12s %12s %12s\n",
              static_cast<int>(name_w), "series", static_cast<int>(args.width),
              "sparkline", "points", "min", "mean", "max", "last");
  for (const auto& [name, pts] : series) {
    double lo = pts.front().v, hi = pts.front().v, sum = 0.0;
    for (const Point& p : pts) {
      lo = std::min(lo, p.v);
      hi = std::max(hi, p.v);
      sum += p.v;
    }
    std::printf("%-*s  [%s]  %6zu %12s %12s %12s %12s\n",
                static_cast<int>(name_w), name.c_str(),
                sparkline(pts, args.width).c_str(), pts.size(),
                fmt(lo).c_str(),
                fmt(sum / static_cast<double>(pts.size())).c_str(),
                fmt(hi).c_str(), fmt(pts.back().v).c_str());
  }
  return 0;
}
