file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_perf.dir/bench_kernel_perf.cpp.o"
  "CMakeFiles/bench_kernel_perf.dir/bench_kernel_perf.cpp.o.d"
  "bench_kernel_perf"
  "bench_kernel_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
