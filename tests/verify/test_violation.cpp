// Unit tests for the violation records and the verify::Hub policy
// switchboard: record / count / throw semantics, per-invariant overrides,
// the log cap, the metrics and Report sinks, and the arming contract on
// sim::Simulation.
#include <gtest/gtest.h>

#include <string>

#include "metrics/registry.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "verify/hub.hpp"
#include "verify/violation.hpp"

namespace mts::verify {
namespace {

Violation make(Invariant inv, sim::Time t = 100, std::uint64_t txn = 0) {
  Violation v;
  v.time = t;
  v.invariant = inv;
  v.site = "fig3.ptok";
  v.txn = txn;
  v.observed = "2 tokens";
  v.expected = "exactly 1 circulating token";
  return v;
}

TEST(Violation, InvariantNamesAreStable) {
  // These strings key metrics counters and report categories; renaming one
  // breaks every dashboard built on them.
  EXPECT_STREQ(invariant_name(Invariant::kTokenRing), "token-ring");
  EXPECT_STREQ(invariant_name(Invariant::kFullDetector), "full-detector");
  EXPECT_STREQ(invariant_name(Invariant::kEmptyDetector), "empty-detector");
  EXPECT_STREQ(invariant_name(Invariant::kOverflow), "overflow");
  EXPECT_STREQ(invariant_name(Invariant::kUnderflow), "underflow");
  EXPECT_STREQ(invariant_name(Invariant::kHandshakeOrder), "handshake-order");
  EXPECT_STREQ(invariant_name(Invariant::kBundledData), "bundled-data");
  EXPECT_STREQ(invariant_name(Invariant::kPacketOrder), "packet-order");
  EXPECT_STREQ(invariant_name(Invariant::kPacketSpurious), "packet-spurious");
  EXPECT_STREQ(invariant_name(Invariant::kMetastabilityEscape), "meta-escape");
  EXPECT_STREQ(invariant_name(Invariant::kClockPeriod), "clock-period");
  EXPECT_STREQ(invariant_name(Invariant::kDeadlock), "deadlock");
  EXPECT_STREQ(invariant_name(Invariant::kLivelock), "livelock");
}

TEST(Violation, ToStringCarriesEveryField) {
  const Violation v = make(Invariant::kTokenRing, 100, 7);
  const std::string s = v.to_string();
  EXPECT_NE(s.find("token-ring"), std::string::npos) << s;
  EXPECT_NE(s.find("fig3.ptok"), std::string::npos) << s;
  EXPECT_NE(s.find("2 tokens"), std::string::npos) << s;
  EXPECT_NE(s.find("exactly 1 circulating token"), std::string::npos) << s;
  EXPECT_NE(s.find("[txn 7]"), std::string::npos) << s;
}

TEST(Violation, ToStringOmitsUnknownTxn) {
  const Violation v = make(Invariant::kOverflow);
  EXPECT_EQ(v.to_string().find("txn"), std::string::npos);
}

TEST(Violation, ToJsonEscapesAndTagsFields) {
  Violation v = make(Invariant::kBundledData, 42, 3);
  v.site = "a\"b";
  const std::string j = v.to_json();
  EXPECT_NE(j.find("\"invariant\": \"bundled-data\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"t\": 42"), std::string::npos) << j;
  EXPECT_NE(j.find("\"txn\": 3"), std::string::npos) << j;
  EXPECT_NE(j.find("a\\\"b"), std::string::npos) << j;
}

TEST(ProtocolViolationError, CarriesTheViolationAndDerivesSimulationError) {
  const Violation v = make(Invariant::kUnderflow, 9, 5);
  ProtocolViolationError e(v);
  EXPECT_EQ(e.violation().invariant, Invariant::kUnderflow);
  EXPECT_EQ(e.violation().txn, 5u);
  EXPECT_NE(std::string(e.what()).find("protocol violation"),
            std::string::npos);
  // Catchable at every level of the hierarchy campaign supervision uses.
  const SimulationError& base = e;
  EXPECT_NE(std::string(base.what()).find("underflow"), std::string::npos);
}

TEST(Hub, DefaultPolicyRecordsAndCounts) {
  Hub hub;
  hub.report(make(Invariant::kTokenRing));
  hub.report(make(Invariant::kOverflow));
  EXPECT_EQ(hub.total(), 2u);
  EXPECT_EQ(hub.count(Invariant::kTokenRing), 1u);
  EXPECT_EQ(hub.count(Invariant::kOverflow), 1u);
  EXPECT_EQ(hub.count(Invariant::kUnderflow), 0u);
  ASSERT_EQ(hub.violations().size(), 2u);
  EXPECT_EQ(hub.violations()[0].invariant, Invariant::kTokenRing);
}

TEST(Hub, CountPolicySkipsTheLogButKeepsTotals) {
  Hub hub;
  hub.set_policy(Policy::kCount);
  hub.report(make(Invariant::kTokenRing));
  EXPECT_EQ(hub.total(), 1u);
  EXPECT_EQ(hub.count(Invariant::kTokenRing), 1u);
  EXPECT_TRUE(hub.violations().empty());
}

TEST(Hub, ThrowPolicyRecordsFirstThenThrows) {
  Hub hub;
  hub.set_policy(Policy::kThrow);
  try {
    hub.report(make(Invariant::kHandshakeOrder, 77));
    FAIL() << "expected ProtocolViolationError";
  } catch (const ProtocolViolationError& e) {
    EXPECT_EQ(e.violation().invariant, Invariant::kHandshakeOrder);
    EXPECT_EQ(e.violation().time, 77u);
  }
  // The fatal finding is in the post-mortem log too.
  ASSERT_EQ(hub.violations().size(), 1u);
  EXPECT_EQ(hub.count(Invariant::kHandshakeOrder), 1u);
}

TEST(Hub, PerInvariantOverrideBeatsTheDefault) {
  Hub hub;
  hub.set_policy(Policy::kCount);
  hub.set_policy(Invariant::kTokenRing, Policy::kThrow);
  EXPECT_EQ(hub.policy_for(Invariant::kTokenRing), Policy::kThrow);
  EXPECT_EQ(hub.policy_for(Invariant::kOverflow), Policy::kCount);
  hub.report(make(Invariant::kOverflow));  // counted, no throw
  EXPECT_THROW(hub.report(make(Invariant::kTokenRing)),
               ProtocolViolationError);
}

TEST(Hub, LogCapBoundsMemoryWhileCountingContinues) {
  Hub hub;
  hub.set_max_log(2);
  for (int i = 0; i < 5; ++i) hub.report(make(Invariant::kTokenRing));
  EXPECT_EQ(hub.violations().size(), 2u);
  EXPECT_EQ(hub.count(Invariant::kTokenRing), 5u);
  EXPECT_EQ(hub.total(), 5u);
}

TEST(Hub, MetricsSinkCountsPerSiteAndInvariant) {
  Hub hub;
  metrics::Registry reg;
  hub.set_metrics(&reg);
  hub.report(make(Invariant::kTokenRing));
  hub.report(make(Invariant::kTokenRing));
  const metrics::Counter* c =
      reg.find_counter("fig3.ptok", "violation.token-ring");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 2u);
}

TEST(Hub, ReportSinkMirrorsRecordedViolations) {
  Hub hub;
  sim::Report rep;
  hub.set_report(&rep);
  hub.report(make(Invariant::kBundledData, 55));
  EXPECT_EQ(rep.count("verify-bundled-data"), 1u);
  EXPECT_EQ(rep.failure_count(), 1u);  // Severity::kViolation
  ASSERT_EQ(rep.entries().size(), 1u);
  EXPECT_EQ(rep.entries()[0].severity, sim::Severity::kViolation);
  // kCount policy stays out of the report.
  hub.set_policy(Policy::kCount);
  hub.report(make(Invariant::kBundledData));
  EXPECT_EQ(rep.count("verify-bundled-data"), 1u);
}

TEST(Hub, ClearDropsLogAndCountersButKeepsPolicies) {
  Hub hub;
  hub.set_policy(Invariant::kTokenRing, Policy::kThrow);
  hub.set_policy(Policy::kCount);
  hub.report(make(Invariant::kOverflow));
  hub.clear();
  EXPECT_EQ(hub.total(), 0u);
  EXPECT_EQ(hub.count(Invariant::kOverflow), 0u);
  EXPECT_TRUE(hub.violations().empty());
  EXPECT_EQ(hub.policy_for(Invariant::kTokenRing), Policy::kThrow);
  EXPECT_EQ(hub.policy_for(Invariant::kOverflow), Policy::kCount);
}

TEST(Hub, ToJsonListsTotalsCountsAndLog) {
  Hub hub;
  hub.report(make(Invariant::kTokenRing, 10));
  hub.report(make(Invariant::kOverflow, 20));
  const std::string j = hub.to_json();
  EXPECT_NE(j.find("\"total\": 2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"token-ring\": 1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"overflow\": 1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"violations\": ["), std::string::npos) << j;
}

TEST(Hub, ArmWiresTheSimulationAndItsReport) {
  sim::Simulation sim(1);
  EXPECT_EQ(sim.monitors(), nullptr);
  Hub hub;
  hub.arm(sim);
  EXPECT_EQ(sim.monitors(), &hub);
  hub.report(make(Invariant::kDeadlock, 5));
  EXPECT_EQ(sim.report().count("verify-deadlock"), 1u);
  Hub::disarm(sim);
  EXPECT_EQ(sim.monitors(), nullptr);
}

TEST(Hub, SimulationResetDisarmsTheHub) {
  sim::Simulation sim(1);
  Hub hub;
  hub.arm(sim);
  sim.reset(2);
  EXPECT_EQ(sim.monitors(), nullptr);
}

TEST(Hub, ClockToleranceDefaultsToOnePercent) {
  Hub hub;
  EXPECT_DOUBLE_EQ(hub.clock_tolerance(), 0.01);
  hub.set_clock_tolerance(0.25);
  EXPECT_DOUBLE_EQ(hub.clock_tolerance(), 0.25);
}

}  // namespace
}  // namespace mts::verify
