#include "sim/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace mts::sim {

std::vector<KernelSiteStat> KernelProfiler::top(std::size_t n) const {
  std::vector<KernelSiteStat> rows;
  rows.reserve(sites_.size());
  for (const Site& s : sites_) {
    if (s.events == 0) continue;
    rows.push_back(KernelSiteStat{s.label, s.events, s.wall_ns});
  }
  std::sort(rows.begin(), rows.end(),
            [](const KernelSiteStat& a, const KernelSiteStat& b) {
              return a.wall_ns != b.wall_ns ? a.wall_ns > b.wall_ns
                                            : a.events > b.events;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

void KernelProfiler::flush() noexcept {
  if (pending_ == 0) return;
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - block_t0_)
          .count());
  const std::uint64_t share = elapsed / pending_;
  for (std::size_t i = 0; i < pending_; ++i) {
    Site& s = sites_[samples_[i]];
    ++s.events;
    s.wall_ns += share;
  }
  // Division remainder lands on the first sample so totals stay exact.
  sites_[samples_[0]].wall_ns += elapsed - share * pending_;
  pending_ = 0;
}

void KernelProfiler::reset() {
  for (Site& s : sites_) {
    s.events = 0;
    s.wall_ns = 0;
  }
  pending_ = 0;
}

std::string format_hot_sites(const KernelStats& stats) {
  if (stats.hot_sites.empty()) return {};
  std::string out =
      "hottest callback sites (wall time | events | site)\n";
  char line[256];
  for (const auto& s : stats.hot_sites) {
    std::snprintf(line, sizeof line, "  %10.3f ms | %10llu | %s\n",
                  static_cast<double>(s.wall_ns) / 1e6,
                  static_cast<unsigned long long>(s.events), s.label.c_str());
    out += line;
  }
  return out;
}

}  // namespace mts::sim
