file(REMOVE_RECURSE
  "CMakeFiles/mts_test_sync.dir/sync/test_clock.cpp.o"
  "CMakeFiles/mts_test_sync.dir/sync/test_clock.cpp.o.d"
  "CMakeFiles/mts_test_sync.dir/sync/test_mtbf.cpp.o"
  "CMakeFiles/mts_test_sync.dir/sync/test_mtbf.cpp.o.d"
  "CMakeFiles/mts_test_sync.dir/sync/test_synchronizer.cpp.o"
  "CMakeFiles/mts_test_sync.dir/sync/test_synchronizer.cpp.o.d"
  "CMakeFiles/mts_test_sync.dir/sync/test_veto.cpp.o"
  "CMakeFiles/mts_test_sync.dir/sync/test_veto.cpp.o.d"
  "mts_test_sync"
  "mts_test_sync.pdb"
  "mts_test_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
