// Order/integrity checking for FIFO traffic.
//
// Monitors push every value that provably entered a FIFO; consumers check
// every value that left it. Any reordering, loss, duplication or
// corruption surfaces as a "scoreboard" error in the simulation report.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace mts::bfm {

class Scoreboard {
 public:
  Scoreboard(sim::Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  Scoreboard(const Scoreboard&) = delete;
  Scoreboard& operator=(const Scoreboard&) = delete;

  /// Records a value entering the FIFO (in order).
  void push(std::uint64_t value) {
    expected_.push_back(value);
    ++pushed_;
  }

  /// Checks a value leaving the FIFO against FIFO order.
  void pop_check(std::uint64_t value) {
    ++popped_;
    if (expected_.empty()) {
      ++errors_;
      sim_.report().add(sim_.now(), sim::Severity::kError, "scoreboard",
                        name_ + ": pop of " + std::to_string(value) +
                            " from an empty expectation queue");
      return;
    }
    const std::uint64_t want = expected_.front();
    expected_.pop_front();
    if (value != want) {
      ++errors_;
      sim_.report().add(sim_.now(), sim::Severity::kError, "scoreboard",
                        name_ + ": expected " + std::to_string(want) + ", got " +
                            std::to_string(value));
    }
  }

  std::uint64_t pushed() const noexcept { return pushed_; }
  std::uint64_t popped() const noexcept { return popped_; }
  std::uint64_t errors() const noexcept { return errors_; }
  std::size_t in_flight() const noexcept { return expected_.size(); }

 private:
  sim::Simulation& sim_;
  std::string name_;
  std::deque<std::uint64_t> expected_;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace mts::bfm
