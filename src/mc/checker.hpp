// The explicit-state search over RingModel's product graph.
//
// Two passes (ISSUE: replayable counterexamples AND an exhaustive proof):
//
//   1. Macro pass. The environment acts only at quiescence; between
//      environment edges the pending-event queue drains deterministically.
//      Every state stored is quiescent, every trace is a pure sequence of
//      environment actions -- exactly what the replay harness
//      (mc/replay.cpp) can drive into a concrete Simulation. A violation
//      found here ships as a REPLAYABLE counterexample.
//
//   2. Full pass. All interleavings of commits and environment edges, BFS
//      over packed states in a StateStore, parent/action arrays for trace
//      extraction. Proves the invariants over every reachable micro-state;
//      deadlock is a state with no successor, livelock is decided by
//      reverse reachability from the sources of progress edges (edges on
//      which a derived acknowledge falls, i.e. a transaction completes).
//
// BFS order, StateStore ids and trace extraction are all deterministic, so
// two runs of the same configuration produce byte-identical JSON -- pinned
// by the determinism test.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "mc/property.hpp"
#include "mc/ring_model.hpp"

namespace mts::mc {

struct ExploreOptions {
  std::size_t max_states = 4'000'000;  ///< full-pass visited-state budget
  std::size_t max_drain = 100'000;     ///< macro-pass drain step bound
  unsigned dfs_depth = 0;  ///< >0: bounded-depth DFS fallback for the full
                           ///< pass instead of BFS (never exhaustive)
  bool full_interleaving = true;  ///< run the full pass after the macro pass
  bool check_liveness = true;     ///< reverse-reachability livelock check
};

/// One step of a counterexample trace.
struct TraceStep {
  std::string label;  ///< "put_req+" (env) or "c2.we-" (internal commit)
  bool env = false;
};

struct Counterexample {
  Property property = Property::kTokenRing;
  std::string site;
  std::string detail;
  std::size_t env_step = 0;  ///< 1-based count of env actions up to the bug
  bool replayable = false;   ///< true iff found by the macro pass
  std::vector<TraceStep> trace;
  std::vector<ActionKind> env_actions;  ///< the trace's env actions, in order

  std::string to_json() const;
};

struct CheckResult {
  std::string name;
  unsigned capacity = 0;
  bool ok = false;          ///< no violation found
  bool exhaustive = false;  ///< full pass completed within budget
  std::size_t macro_states = 0;   ///< quiescent states (macro pass)
  std::size_t states = 0;         ///< micro states (full pass)
  std::size_t edges = 0;          ///< transitions explored (full pass)
  std::size_t peak_frontier = 0;  ///< max BFS frontier size (full pass)
  std::vector<std::string> proved;  ///< property names proved exhaustively
  std::optional<Counterexample> cex;

  std::string to_json() const;
};

/// Runs both passes over `cfg`. Stops at the first violation.
CheckResult check_ring(const RingConfig& cfg, const ExploreOptions& opts = {});

}  // namespace mts::mc
