// The library-wide exception hierarchy and MTS_ASSERT. Campaign supervision
// and the watchdog classify failures by these types; the hierarchy and the
// assertion message format are API.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/error.hpp"
#include "sim/watchdog.hpp"

namespace mts {
namespace {

TEST(Errors, ConfigErrorIsInvalidArgument) {
  ConfigError e("capacity must be >= 2");
  EXPECT_STREQ(e.what(), "capacity must be >= 2");
  EXPECT_THROW(throw ConfigError("x"), std::invalid_argument);
}

TEST(Errors, SimulationErrorIsRuntimeError) {
  SimulationError e("bus conflict");
  EXPECT_STREQ(e.what(), "bus conflict");
  EXPECT_THROW(throw SimulationError("x"), std::runtime_error);
}

TEST(Errors, AssertionErrorIsLogicError) {
  // User mistakes (ConfigError) and circuit misbehaviour (SimulationError)
  // are runtime conditions; a failed MTS_ASSERT is a library bug.
  EXPECT_THROW(throw AssertionError("x"), std::logic_error);
}

TEST(Errors, TheThreeRootsAreDisjoint) {
  EXPECT_THROW(throw ConfigError("x"), std::exception);
  try {
    throw ConfigError("x");
  } catch (const std::runtime_error&) {
    FAIL() << "ConfigError must not be a runtime_error";
  } catch (const std::invalid_argument&) {
  }
  try {
    throw SimulationError("x");
  } catch (const std::logic_error&) {
    FAIL() << "SimulationError must not be a logic_error";
  } catch (const std::runtime_error&) {
  }
}

TEST(Errors, WatchdogFamilyDerivesFromSimulationError) {
  // Harnesses that catch SimulationError see watchdog verdicts too; ones
  // that catch the concrete type can tell the three hang shapes apart.
  EXPECT_THROW(throw sim::WatchdogError("x"), SimulationError);
  EXPECT_THROW(throw sim::DeadlineError("x"), sim::WatchdogError);
  EXPECT_THROW(throw sim::DeadlockError("x"), sim::WatchdogError);
  EXPECT_THROW(throw sim::LivelockError("x"), sim::WatchdogError);
}

TEST(MtsAssert, PassingConditionIsSilent) {
  EXPECT_NO_THROW(MTS_ASSERT(1 + 1 == 2, "arithmetic holds"));
}

TEST(MtsAssert, FailureNamesExpressionLocationAndMessage) {
  try {
    MTS_ASSERT(2 + 2 == 5, "arithmetic is broken");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("assertion failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 + 2 == 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test_error.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("arithmetic is broken"), std::string::npos) << msg;
  }
}

TEST(MtsAssert, EmptyMessageOmitsTheSeparator) {
  try {
    MTS_ASSERT(false, "");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_EQ(std::string(e.what()).find("--"), std::string::npos);
  }
}

}  // namespace
}  // namespace mts
