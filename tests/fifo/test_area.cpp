// Area-model tests: the Related-Work claim against the Intel organization
// ("two synchronizers per cell ... significantly greater area overhead")
// must fall out of the bills of materials.
#include "fifo/area.hpp"

#include <gtest/gtest.h>

namespace mts::fifo {
namespace {

FifoConfig cfg_of(unsigned capacity, unsigned width = 8) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

TEST(Area, SynchronizerCostIsConstantForTheTokenRingDesign) {
  // One chain on full + two on the bi-modal empty: independent of capacity.
  const AreaEstimate a4 = area_mixed_clock(cfg_of(4));
  const AreaEstimate a16 = area_mixed_clock(cfg_of(16));
  EXPECT_DOUBLE_EQ(a4.synchronizer_ge, a16.synchronizer_ge);
}

TEST(Area, PerCellSyncCostGrowsLinearly) {
  const AreaEstimate a4 = area_per_cell_sync(cfg_of(4));
  const AreaEstimate a8 = area_per_cell_sync(cfg_of(8));
  const AreaEstimate a16 = area_per_cell_sync(cfg_of(16));
  EXPECT_DOUBLE_EQ(a8.synchronizer_ge, 2 * a4.synchronizer_ge);
  EXPECT_DOUBLE_EQ(a16.synchronizer_ge, 2 * a8.synchronizer_ge);
}

TEST(Area, IntelStyleOverheadExceedsPaperDesignAtEveryCapacity) {
  for (unsigned cap : {4u, 8u, 16u}) {
    const AreaEstimate ours = area_mixed_clock(cfg_of(cap));
    const AreaEstimate intel = area_per_cell_sync(cfg_of(cap));
    EXPECT_GT(intel.synchronizer_ge, ours.synchronizer_ge) << cap;
    EXPECT_GT(intel.total(), ours.total()) << cap;
    // Shared parts are identical.
    EXPECT_DOUBLE_EQ(intel.datapath_ge, ours.datapath_ge);
    EXPECT_DOUBLE_EQ(intel.control_ge, ours.control_ge);
  }
}

TEST(Area, DatapathScalesWithWidthAndCapacity) {
  EXPECT_GT(area_mixed_clock(cfg_of(8, 16)).datapath_ge,
            area_mixed_clock(cfg_of(8, 8)).datapath_ge);
  EXPECT_GT(area_mixed_clock(cfg_of(16, 8)).datapath_ge,
            area_mixed_clock(cfg_of(8, 8)).datapath_ge);
}

TEST(Area, DeeperSynchronizersCostMore) {
  FifoConfig shallow = cfg_of(8);
  FifoConfig deep = cfg_of(8);
  deep.sync.depth = 4;
  EXPECT_GT(area_mixed_clock(deep).synchronizer_ge,
            area_mixed_clock(shallow).synchronizer_ge);
  // ...but for the token-ring design the increase is 3 latches per added
  // stage; Intel-style pays 2 per cell per added stage.
  const double ours_delta = area_mixed_clock(deep).synchronizer_ge -
                            area_mixed_clock(shallow).synchronizer_ge;
  const double intel_delta = area_per_cell_sync(deep).synchronizer_ge -
                             area_per_cell_sync(shallow).synchronizer_ge;
  EXPECT_GT(intel_delta, ours_delta);
}

}  // namespace
}  // namespace mts::fifo
