#include "builder/elaborate.hpp"

#include <sstream>

#include "gates/combinational.hpp"
#include "sim/error.hpp"
#include "sim/observe.hpp"
#include "sim/report.hpp"

namespace mts::builder {

namespace {

RouterDir router_dir_of(const std::string& port) {
  switch (port.empty() ? '?' : port[0]) {
    case 'n': return RouterDir::kNorth;
    case 's': return RouterDir::kSouth;
    case 'e': return RouterDir::kEast;
    case 'w': return RouterDir::kWest;
    default: return RouterDir::kLocal;
  }
}

}  // namespace

Elaborated::Elaborated(sim::Simulation& sim, const Design& d)
    : sim_(sim), design_(d), nl_(sim, "") {
  design_.check();

  // 1. Clocks, in domain declaration order.
  clocks_.reserve(design_.domains().size());
  for (const DomainDecl& dom : design_.domains()) {
    clocks_.push_back(&nl_.add<sync::Clock>(sim_, dom.name, dom.clock));
  }

  // 2. Edge machinery, in edge declaration order.
  edges_.resize(design_.edges().size());
  for (const Edge& e : design_.edges()) lower_edge(e);

  // 2b. Scoreboards for every generated (untagged) source, before any node
  // component: a sink may be declared before the source it checks, and the
  // Scoreboard constructor is side-effect-free, so pre-creating them here
  // keeps handles simple without disturbing event order.
  nodes_.resize(design_.nodes().size());
  for (const Node& n : design_.nodes()) {
    if (n.kind == NodeKind::kSource && !n.source.tagged) {
      nodes_[n.id].sb = &nl_.add<bfm::Scoreboard>(sim_, n.name + ".sb");
    }
  }

  // 3. Node components, in node declaration order.
  for (const Node& n : design_.nodes()) lower_node(n);

  // 4. Announce the elaborated shape through the armed hubs.
  sim::Observability* obs = sim_.observability();
  if (obs != nullptr && obs->metrics != nullptr) {
    const std::string inst = "builder." + design_.name();
    obs->metrics->gauge(inst, "domains")
        .set(static_cast<double>(design_.domains().size()));
    obs->metrics->gauge(inst, "nodes")
        .set(static_cast<double>(design_.nodes().size()));
    obs->metrics->gauge(inst, "edges")
        .set(static_cast<double>(design_.edges().size()));
    obs->metrics->gauge(inst, "inserted")
        .set(static_cast<double>(inserted_.size()));
  }
  sim_.report().add(sim_.now(), sim::Severity::kInfo, "builder",
                    design_.name() + ": elaborated " +
                        std::to_string(design_.nodes().size()) + " nodes, " +
                        std::to_string(design_.edges().size()) + " edges, " +
                        std::to_string(inserted_.size()) +
                        " inserted primitives");
}

LiPort Elaborated::li_wires(const std::string& base) {
  LiPort p;
  p.data = &nl_.word(base + ".data");
  p.valid = &nl_.wire(base + ".valid");
  p.stop = &nl_.wire(base + ".stop");
  return p;
}

void Elaborated::link_traces(const std::string& up, const std::string& down) {
  sim::Observability* obs = sim_.observability();
  if (obs == nullptr || obs->trace == nullptr) return;
  if (up.empty() || down.empty()) return;
  obs->trace->link(up, down);
}

void Elaborated::lower_edge(const Edge& e) {
  EdgeParts& parts = edges_[e.id];
  const PortDecl& pp = design_.node(e.from).ports[e.from_port];
  const PortDecl& pc = design_.node(e.to).ports[e.to_port];
  const unsigned lw = design_.link_width_of(e);
  fifo::FifoConfig cfg = design_.edge_fifo_config(e);
  const unsigned latency = e.opt.latency_left + e.opt.latency_right;
  parts.primitive =
      e.opt.primitive == Primitive::kAuto
          ? resolve_primitive(pp.style, pp.domain, pc.style, pc.domain,
                              e.opt.controller, latency)
          : e.opt.primitive;

  auto record = [&](Primitive kind, const std::string& instance) {
    inserted_.push_back({e.id, kind, instance});
  };

  // --- the edge core, at link width -------------------------------------
  switch (parts.primitive) {
    case Primitive::kWire:
    case Primitive::kSrsChain: {
      if (pp.style == TimingStyle::kAsync) {
        // Async-async, zero latency: one shared handshake channel.
        HandshakePort hs;
        hs.req = &nl_.wire(e.name + ".req");
        hs.ack = &nl_.wire(e.name + ".ack");
        hs.data = &nl_.word(e.name + ".data");
        parts.head.style = parts.tail.style = EndpointStyle::kHandshake;
        parts.head.hs = parts.tail.hs = hs;
        record(Primitive::kWire, e.name);
        break;
      }
      parts.head.li = li_wires(e.name + ".in");
      parts.tail.li = li_wires(e.name + ".out");
      parts.chain = &nl_.add<lip::SyncRelayChain>(
          sim_, e.name, clocks_[pp.domain]->out(), latency, cfg.dm,
          *parts.head.li.data, *parts.head.li.valid, *parts.head.li.stop,
          *parts.tail.li.data, *parts.tail.li.valid, *parts.tail.li.stop);
      parts.head.traced = parts.chain->first_station_instance();
      parts.tail.traced = parts.chain->last_station_instance();
      record(parts.primitive, e.name);
      break;
    }

    case Primitive::kMicropipeline: {
      HandshakePort in, out;
      in.req = &nl_.wire(e.name + ".in.req");
      in.ack = &nl_.wire(e.name + ".in.ack");
      in.data = &nl_.word(e.name + ".in.data");
      out.req = &nl_.wire(e.name + ".out.req");
      out.ack = &nl_.wire(e.name + ".out.ack");
      out.data = &nl_.word(e.name + ".out.data");
      parts.pipe = &nl_.add<lip::Micropipeline>(
          sim_, e.name, latency, *in.req, *in.ack, *in.data, *out.req,
          *out.ack, *out.data, cfg.dm);
      parts.head.style = parts.tail.style = EndpointStyle::kHandshake;
      parts.head.hs = in;
      parts.tail.hs = out;
      record(Primitive::kMicropipeline, e.name);
      break;
    }

    case Primitive::kMixedClockFifo: {
      if (e.opt.controller == fifo::ControllerKind::kRelayStation) {
        parts.mc_link = &nl_.add<lip::MixedClockLink>(
            sim_, e.name, cfg, clocks_[pp.domain]->out(),
            clocks_[pc.domain]->out(), e.opt.latency_left,
            e.opt.latency_right);
        parts.head.li = {&parts.mc_link->data_in(), &parts.mc_link->valid_in(),
                         &parts.mc_link->stop_out()};
        parts.tail.li = {&parts.mc_link->data_out(),
                         &parts.mc_link->valid_out(),
                         &parts.mc_link->stop_in()};
        parts.head.traced = parts.mc_link->first_traced_instance();
        parts.tail.traced = parts.mc_link->last_traced_instance();
      } else {
        parts.mc_fifo = &nl_.add<fifo::MixedClockFifo>(
            sim_, e.name, cfg, clocks_[pp.domain]->out(),
            clocks_[pc.domain]->out());
        parts.head.style = EndpointStyle::kFifoPut;
        parts.head.fput = {&parts.mc_fifo->req_put(), &parts.mc_fifo->data_put(),
                           &parts.mc_fifo->full(), &parts.mc_fifo->en_put()};
        parts.tail.style = EndpointStyle::kFifoGet;
        parts.tail.fget = {&parts.mc_fifo->req_get(), &parts.mc_fifo->data_get(),
                           &parts.mc_fifo->valid_get(), &parts.mc_fifo->empty(),
                           &parts.mc_fifo->stop_in()};
        parts.head.traced = parts.tail.traced = e.name;
      }
      record(Primitive::kMixedClockFifo, e.name);
      break;
    }

    case Primitive::kAsyncSyncFifo: {
      if (e.opt.controller == fifo::ControllerKind::kRelayStation) {
        parts.as_link = &nl_.add<lip::AsyncSyncLink>(
            sim_, e.name, cfg, clocks_[pc.domain]->out(), e.opt.latency_left,
            e.opt.latency_right);
        parts.head.style = EndpointStyle::kHandshake;
        parts.head.hs = {&parts.as_link->put_req(), &parts.as_link->put_ack(),
                         &parts.as_link->put_data()};
        parts.tail.li = {&parts.as_link->data_out(),
                         &parts.as_link->valid_out(),
                         &parts.as_link->stop_in()};
        parts.head.traced = parts.as_link->first_traced_instance();
        parts.tail.traced = parts.as_link->last_traced_instance();
      } else {
        parts.as_fifo = &nl_.add<fifo::AsyncSyncFifo>(
            sim_, e.name, cfg, clocks_[pc.domain]->out());
        parts.head.style = EndpointStyle::kHandshake;
        parts.head.hs = {&parts.as_fifo->put_req(), &parts.as_fifo->put_ack(),
                         &parts.as_fifo->put_data()};
        parts.tail.style = EndpointStyle::kFifoGet;
        parts.tail.fget = {&parts.as_fifo->req_get(), &parts.as_fifo->data_get(),
                           &parts.as_fifo->valid_get(), &parts.as_fifo->empty(),
                           &parts.as_fifo->stop_in()};
        parts.head.traced = parts.tail.traced = e.name;
      }
      record(Primitive::kAsyncSyncFifo, e.name);
      break;
    }

    case Primitive::kSyncAsyncFifo: {
      if (e.opt.controller == fifo::ControllerKind::kRelayStation) {
        // No SARS primitive exists in the paper's toolbox: an LI producer
        // reaches the sync-async FIFO through valid->req_put / full->stop
        // glue, the FIFO itself running in on-demand mode. Back-pressure is
        // still lossless -- full gates the producer through the stop wire.
        parts.head.li = li_wires(e.name + ".in");
        LiPort mid = parts.head.li;
        if (e.opt.latency_left > 0) {
          mid = li_wires(e.name + ".m");
          parts.chain = &nl_.add<lip::SyncRelayChain>(
              sim_, e.name + ".left", clocks_[pp.domain]->out(),
              e.opt.latency_left, cfg.dm, *parts.head.li.data,
              *parts.head.li.valid, *parts.head.li.stop, *mid.data, *mid.valid,
              *mid.stop);
          parts.head.traced = parts.chain->first_station_instance();
        }
        fifo::FifoConfig fc = cfg;
        fc.controller = fifo::ControllerKind::kFifo;
        parts.sa_fifo = &nl_.add<fifo::SyncAsyncFifo>(
            sim_, e.name + ".fifo", fc, clocks_[pp.domain]->out());
        gates::gate_into(nl_, e.name + ".vreq", gates::GateOp::kBuf,
                         {mid.valid}, parts.sa_fifo->req_put(), cfg.dm.gate(1));
        nl_.add<gates::WordBuf>(sim_, nl_.qualified(e.name + ".dwire"),
                                *mid.data, parts.sa_fifo->data_put(),
                                cfg.dm.gate(1));
        gates::gate_into(nl_, e.name + ".swire", gates::GateOp::kBuf,
                         {&parts.sa_fifo->full()}, *mid.stop, cfg.dm.gate(1));
        if (parts.head.traced.empty()) parts.head.traced = e.name + ".fifo";
        parts.tail.traced = e.name + ".fifo";
        record(Primitive::kSyncAsyncFifo, e.name + ".fifo");
      } else {
        parts.sa_fifo = &nl_.add<fifo::SyncAsyncFifo>(
            sim_, e.name, cfg, clocks_[pp.domain]->out());
        parts.head.style = EndpointStyle::kFifoPut;
        parts.head.fput = {&parts.sa_fifo->req_put(), &parts.sa_fifo->data_put(),
                           &parts.sa_fifo->full(), &parts.sa_fifo->en_put()};
        parts.head.traced = parts.tail.traced = e.name;
        record(Primitive::kSyncAsyncFifo, e.name);
      }
      parts.tail.style = EndpointStyle::kHandshake;
      parts.tail.hs = {&parts.sa_fifo->get_req(), &parts.sa_fifo->get_ack(),
                       &parts.sa_fifo->get_data()};
      break;
    }

    case Primitive::kAsyncAsyncFifo: {
      parts.aa_fifo = &nl_.add<fifo::AsyncAsyncFifo>(sim_, e.name, cfg);
      parts.head.style = EndpointStyle::kHandshake;
      parts.head.hs = {&parts.aa_fifo->put_req(), &parts.aa_fifo->put_ack(),
                       &parts.aa_fifo->put_data()};
      parts.tail.style = EndpointStyle::kHandshake;
      parts.tail.hs = {&parts.aa_fifo->get_req(), &parts.aa_fifo->get_ack(),
                       &parts.aa_fifo->get_data()};
      parts.head.traced = parts.tail.traced = e.name;
      record(Primitive::kAsyncAsyncFifo, e.name);
      break;
    }

    case Primitive::kAuto:
      throw ConfigError("builder: edge '" + e.name +
                        "' resolved to kAuto (internal error)");
  }

  // --- gearboxes: serialize wide producers down, reassemble for wide
  // consumers (Design::check() guarantees sync endpoints, integral ratios
  // and LI cores on any gearboxed side) ----------------------------------
  if (pp.width != lw) {
    LiPort wide = li_wires(e.name + ".ser");
    parts.ser = &nl_.add<Serializer>(
        sim_, e.name + ".ser", clocks_[pp.domain]->out(), pp.width / lw, lw,
        *wide.data, *wide.valid, *wide.stop, *parts.head.li.data,
        *parts.head.li.valid, *parts.head.li.stop, cfg.dm);
    parts.head = Endpoint{};
    parts.head.li = wide;
    record(Primitive::kWire, e.name + ".ser");
  }
  if (pc.width != lw) {
    LiPort wide = li_wires(e.name + ".deser");
    parts.deser = &nl_.add<Deserializer>(
        sim_, e.name + ".deser", clocks_[pc.domain]->out(), pc.width / lw, lw,
        *parts.tail.li.data, *parts.tail.li.valid, *parts.tail.li.stop,
        *wide.data, *wide.valid, *wide.stop, cfg.dm);
    parts.tail = Endpoint{};
    parts.tail.li = wide;
    record(Primitive::kWire, e.name + ".deser");
  }
}

void Elaborated::lower_node(const Node& n) {
  NodeParts& parts = nodes_[n.id];
  switch (n.kind) {
    case NodeKind::kExternal:
      break;  // ports exposed through the accessors; nothing generated

    case NodeKind::kSource: {
      const PortDecl& p = n.ports[0];
      const Edge& e = design_.edge(design_.edge_at(n.id, 0));
      const Endpoint& ep = edges_[e.id].head;
      const fifo::FifoConfig cfg = design_.edge_fifo_config(e);
      if (n.source.tagged) {
        parts.tagged_source = &nl_.add<TaggedSource>(
            sim_, n.name, clocks_[p.domain]->out(), *ep.li.data, *ep.li.valid,
            *ep.li.stop, cfg.dm, n.source.rate, n.source.flow, n.source.dests,
            p.width);
      } else if (p.style == TimingStyle::kAsync) {
        parts.async_put = &nl_.add<bfm::AsyncPutDriver>(
            sim_, n.name, *ep.hs.req, *ep.hs.ack, *ep.hs.data, cfg.dm,
            n.source.gap, n.source.mask, parts.sb);
      } else if (ep.style == EndpointStyle::kFifoPut) {
        parts.sync_put = &nl_.add<bfm::SyncPutDriver>(
            sim_, n.name, clocks_[p.domain]->out(), *ep.fput.req_put,
            *ep.fput.data_put, *ep.fput.full, cfg.dm,
            bfm::RateConfig{n.source.rate, 1}, n.source.mask);
        parts.put_mon = &nl_.add<bfm::PutMonitor>(
            sim_, clocks_[p.domain]->out(), *ep.fput.en_put, *ep.fput.req_put,
            *ep.fput.data_put, *parts.sb);
      } else {
        parts.rs_source = &nl_.add<bfm::RsSource>(
            sim_, n.name, clocks_[p.domain]->out(), *ep.li.data, *ep.li.valid,
            *ep.li.stop, cfg.dm, n.source.rate, n.source.mask, *parts.sb);
      }
      break;
    }

    case NodeKind::kSink: {
      const PortDecl& p = n.ports[0];
      const Edge& e = design_.edge(design_.edge_at(n.id, 0));
      const Endpoint& ep = edges_[e.id].tail;
      const fifo::FifoConfig cfg = design_.edge_fifo_config(e);
      if (n.sink.tagged) {
        parts.tagged_sink = &nl_.add<TaggedSink>(
            sim_, n.name, clocks_[p.domain]->out(), *ep.li.data, *ep.li.valid,
            *ep.li.stop, cfg.dm, n.sink.stall_rate);
        break;
      }
      const NodeId src = upstream_source(n.id);
      if (src != kNoNode) {
        parts.check_sb = nodes_[src].sb;
      } else {
        // Fed by an external node: the sink owns the expectation queue and
        // the external producer pushes into it (Elaborated::scoreboard()).
        parts.sb = &nl_.add<bfm::Scoreboard>(sim_, n.name + ".sb");
        parts.check_sb = parts.sb;
      }
      if (p.style == TimingStyle::kAsync) {
        // A micropipeline output or bare bundled-data channel is push-style
        // (the producer drives req); FIFO get-ports are pull-style (the
        // consumer drives req). The BFM must match or the channel deadlocks.
        const Primitive prim = edges_[e.id].primitive;
        if (prim == Primitive::kMicropipeline || prim == Primitive::kWire) {
          parts.async_ack = &nl_.add<bfm::AsyncAckSink>(
              sim_, n.name, *ep.hs.req, *ep.hs.ack, *ep.hs.data, cfg.dm,
              n.sink.gap, parts.check_sb);
        } else {
          parts.async_get = &nl_.add<bfm::AsyncGetDriver>(
              sim_, n.name, *ep.hs.req, *ep.hs.ack, *ep.hs.data, cfg.dm,
              n.sink.gap, parts.check_sb);
        }
      } else if (ep.style == EndpointStyle::kFifoGet) {
        parts.sync_get = &nl_.add<bfm::SyncGetDriver>(
            sim_, n.name, clocks_[p.domain]->out(), *ep.fget.req_get, cfg.dm,
            bfm::RateConfig{1.0 - n.sink.stall_rate, 0});
        parts.get_mon = &nl_.add<bfm::GetMonitor>(
            sim_, clocks_[p.domain]->out(), *ep.fget.valid_get,
            *ep.fget.data_get, *parts.check_sb);
      } else {
        parts.rs_sink = &nl_.add<bfm::RsSink>(
            sim_, n.name, clocks_[p.domain]->out(), *ep.li.data, *ep.li.valid,
            *ep.li.stop, cfg.dm, n.sink.stall_rate, *parts.check_sb);
      }
      break;
    }

    case NodeKind::kRepeater: {
      const Edge& ein = design_.edge(design_.edge_at(n.id, 0));
      const Edge& eout = design_.edge(design_.edge_at(n.id, 1));
      const Endpoint& ti = edges_[ein.id].tail;
      const Endpoint& ho = edges_[eout.id].head;
      const sim::Time delay = design_.edge_fifo_config(ein).dm.gate(1);
      nl_.add<gates::WordBuf>(sim_, nl_.qualified(n.name + ".d"), *ti.li.data,
                              *ho.li.data, delay);
      gates::gate_into(nl_, n.name + ".v", gates::GateOp::kBuf, {ti.li.valid},
                       *ho.li.valid, delay);
      gates::gate_into(nl_, n.name + ".s", gates::GateOp::kBuf, {ho.li.stop},
                       *ti.li.stop, delay);
      link_traces(ti.traced, ho.traced);
      break;
    }

    case NodeKind::kRouter: {
      std::vector<MeshRouter::InPort> ins;
      std::vector<MeshRouter::OutPort> outs;
      for (std::size_t i = 0; i < n.ports.size(); ++i) {
        const Endpoint& ep = endpoint_of(n.id, i);
        const RouterDir dir = router_dir_of(n.ports[i].name);
        if (n.ports[i].dir == PortDir::kIn) {
          ins.push_back({dir, ep.li.data, ep.li.valid, ep.li.stop});
        } else {
          outs.push_back({dir, ep.li.data, ep.li.valid, ep.li.stop});
        }
      }
      parts.router = &nl_.add<MeshRouter>(
          sim_, n.name, clocks_[n.ports[0].domain]->out(), n.router.x,
          n.router.y, n.router.queue, std::move(ins), std::move(outs),
          design_.link_defaults().dm);
      break;
    }

    case NodeKind::kBus: {
      std::vector<BusFabric::InPort> ins;
      std::vector<BusFabric::OutPort> outs;
      for (std::size_t i = 0; i < n.ports.size(); ++i) {
        const Endpoint& ep = endpoint_of(n.id, i);
        if (n.ports[i].dir == PortDir::kIn) {
          ins.push_back({ep.li.data, ep.li.valid, ep.li.stop});
        } else {
          outs.push_back({ep.li.data, ep.li.valid, ep.li.stop});
        }
      }
      parts.bus = &nl_.add<BusFabric>(
          sim_, n.name, clocks_[n.ports[0].domain]->out(), std::move(ins),
          std::move(outs), design_.link_defaults().dm);
      break;
    }
  }
}

NodeId Elaborated::upstream_source(NodeId sink) const {
  NodeId cur = sink;
  std::size_t port = 0;  // sink "in" / repeater "in" are both port 0
  for (;;) {
    const EdgeId eid = design_.edge_at(cur, port);
    if (eid == Design::kNoEdge) return kNoNode;
    const Edge& e = design_.edge(eid);
    const Node& from = design_.node(e.from);
    if (from.kind == NodeKind::kSource && !from.source.tagged) return from.id;
    if (from.kind != NodeKind::kRepeater) return kNoNode;
    cur = from.id;
    port = 0;
  }
}

const Endpoint& Elaborated::endpoint_of(NodeId n, std::size_t port_idx) const {
  const EdgeId eid = design_.edge_at(n, port_idx);
  if (eid == Design::kNoEdge) {
    throw ConfigError("builder: port '" + design_.node(n).name + "." +
                      design_.node(n).ports[port_idx].name +
                      "' is not connected");
  }
  const Edge& e = design_.edge(eid);
  const bool is_head = e.from == n && e.from_port == port_idx;
  return is_head ? edges_[eid].head : edges_[eid].tail;
}

sync::Clock& Elaborated::clock(DomainId d) {
  if (d >= clocks_.size()) {
    throw ConfigError("builder: unknown domain id " + std::to_string(d));
  }
  return *clocks_[d];
}

const EdgeParts& Elaborated::edge(EdgeId e) const {
  if (e >= edges_.size()) {
    throw ConfigError("builder: unknown edge id " + std::to_string(e));
  }
  return edges_[e];
}

const NodeParts& Elaborated::node(NodeId n) const {
  if (n >= nodes_.size()) {
    throw ConfigError("builder: unknown node id " + std::to_string(n));
  }
  return nodes_[n];
}

LiPort Elaborated::li_port(NodeId n, const std::string& port) const {
  const Endpoint& ep = endpoint_of(n, design_.port_index(n, port));
  if (ep.style != EndpointStyle::kLi) {
    throw ConfigError("builder: port '" + design_.node(n).name + "." + port +
                      "' is not a latency-insensitive endpoint");
  }
  return ep.li;
}

HandshakePort Elaborated::handshake_port(NodeId n,
                                         const std::string& port) const {
  const Endpoint& ep = endpoint_of(n, design_.port_index(n, port));
  if (ep.style != EndpointStyle::kHandshake) {
    throw ConfigError("builder: port '" + design_.node(n).name + "." + port +
                      "' is not a 4-phase handshake endpoint");
  }
  return ep.hs;
}

SyncFifoPut Elaborated::fifo_put(NodeId n, const std::string& port) const {
  const Endpoint& ep = endpoint_of(n, design_.port_index(n, port));
  if (ep.style != EndpointStyle::kFifoPut) {
    throw ConfigError("builder: port '" + design_.node(n).name + "." + port +
                      "' is not an on-demand FIFO put endpoint");
  }
  return ep.fput;
}

SyncFifoGet Elaborated::fifo_get(NodeId n, const std::string& port) const {
  const Endpoint& ep = endpoint_of(n, design_.port_index(n, port));
  if (ep.style != EndpointStyle::kFifoGet) {
    throw ConfigError("builder: port '" + design_.node(n).name + "." + port +
                      "' is not an on-demand FIFO get endpoint");
  }
  return ep.fget;
}

bfm::Scoreboard& Elaborated::scoreboard(NodeId n) const {
  const NodeParts& parts = node(n);
  bfm::Scoreboard* sb =
      parts.check_sb != nullptr ? parts.check_sb : parts.sb;
  if (sb == nullptr) {
    throw ConfigError("builder: node '" + design_.node(n).name +
                      "' has no scoreboard (tagged traffic checks itself)");
  }
  return *sb;
}

std::uint64_t Elaborated::source_sent(NodeId n) const {
  const NodeParts& p = node(n);
  if (p.tagged_source != nullptr) return p.tagged_source->sent();
  if (p.rs_source != nullptr) return p.rs_source->sent_valid();
  if (p.put_mon != nullptr) return p.put_mon->enqueued();
  if (p.async_put != nullptr) return p.async_put->completed();
  return 0;
}

std::uint64_t Elaborated::sink_received(NodeId n) const {
  const NodeParts& p = node(n);
  if (p.tagged_sink != nullptr) return p.tagged_sink->received();
  if (p.rs_sink != nullptr) return p.rs_sink->received_valid();
  if (p.get_mon != nullptr) return p.get_mon->dequeued();
  if (p.async_get != nullptr) return p.async_get->completed();
  if (p.async_ack != nullptr) return p.async_ack->completed();
  return 0;
}

std::uint64_t Elaborated::total_sent() const {
  std::uint64_t n = 0;
  for (const Node& node : design_.nodes()) {
    if (node.kind == NodeKind::kSource) n += source_sent(node.id);
  }
  return n;
}

std::uint64_t Elaborated::total_received() const {
  std::uint64_t n = 0;
  for (const Node& node : design_.nodes()) {
    if (node.kind == NodeKind::kSink) n += sink_received(node.id);
  }
  return n;
}

std::uint64_t Elaborated::total_order_violations() const {
  std::uint64_t n = 0;
  for (const NodeParts& p : nodes_) {
    if (p.sb != nullptr) n += p.sb->errors();
    if (p.tagged_sink != nullptr) n += p.tagged_sink->violations();
    if (p.router != nullptr) n += p.router->misroutes();
    if (p.bus != nullptr) n += p.bus->misroutes();
  }
  return n;
}

void Elaborated::arm_watchdog(sim::Watchdog& wd) {
  wd.watch(
      "builder." + design_.name(),
      [this] {
        const std::uint64_t sent = total_sent();
        const std::uint64_t recv = total_received();
        return sent > recv ? sent - recv : 0;
      },
      [this] { return total_received(); });
}

std::string Elaborated::to_json() const {
  std::ostringstream os;
  os << "{\"design\":" << design_.to_json() << ",\"inserted\":[";
  for (std::size_t i = 0; i < inserted_.size(); ++i) {
    const InsertedRecord& r = inserted_[i];
    if (i != 0) os << ',';
    os << "{\"edge\":\"" << sim::json_escape(design_.edge(r.edge).name)
       << "\",\"primitive\":\"" << to_string(r.kind) << "\",\"instance\":\""
       << sim::json_escape(r.instance) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::unique_ptr<Elaborated> elaborate(sim::Simulation& sim, const Design& d) {
  return std::make_unique<Elaborated>(sim, d);
}

}  // namespace mts::builder
