// Asynchronous FIFO comparison: the token-ring async-async FIFO ([4], the
// substrate this paper reuses for its async interfaces) vs a micropipeline
// of the same capacity (Sutherland [15], the paper's ARS implementation).
//
// [4]'s headline claim, reproduced here: with immobile data, the
// token-ring FIFO's empty-FIFO latency is nearly independent of capacity,
// while a micropipeline's grows with the number of stages a datum must
// traverse.
//
// Usage: bench_async_fifo_comparison [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/async_async_fifo.hpp"
#include "gates/netlist.hpp"
#include "lip/micropipeline.hpp"
#include "metrics/experiments.hpp"
#include "metrics/table.hpp"

namespace {

using namespace mts;
using sim::Time;

struct AsyncResult {
  double latency_ns;
  double throughput_mops;
};

AsyncResult run_micropipeline(unsigned stages) {
  const gates::DelayModel dm = gates::DelayModel::hp06();
  AsyncResult r{};
  {  // latency: single item through an empty pipeline, eager consumer
    sim::Simulation sim(1);
    gates::Netlist nl(sim, "t");
    sim::Wire& in_req = nl.wire("in_req");
    sim::Wire& in_ack = nl.wire("in_ack");
    sim::Word& in_data = nl.word("in_data");
    sim::Wire& out_req = nl.wire("out_req");
    sim::Wire& out_ack = nl.wire("out_ack");
    sim::Word& out_data = nl.word("out_data");
    lip::Micropipeline mp(sim, "mp", stages, in_req, in_ack, in_data, out_req,
                          out_ack, out_data, dm);
    bfm::Scoreboard sb(sim, "sb");
    bfm::AsyncPutDriver put(sim, "put", in_req, in_ack, in_data, dm,
                            bfm::AsyncPutDriver::kManual, 0xFF, &sb);
    Time arrived = 0;
    out_req.on_change([&](bool, bool now) {
      if (now && arrived == 0) arrived = sim.now();
      out_ack.write(now, 100, sim::DelayKind::kTransport);
    });
    const Time t0 = 10'000;
    sim.sched().at(t0, [&] { put.issue_one(); });
    sim.run_until(t0 + 500'000);
    r.latency_ns = arrived > t0 ? static_cast<double>(arrived - t0) / 1e3 : -1;
  }
  {  // throughput: saturated producer, eager consumer
    sim::Simulation sim(1);
    gates::Netlist nl(sim, "t");
    sim::Wire& in_req = nl.wire("in_req");
    sim::Wire& in_ack = nl.wire("in_ack");
    sim::Word& in_data = nl.word("in_data");
    sim::Wire& out_req = nl.wire("out_req");
    sim::Wire& out_ack = nl.wire("out_ack");
    sim::Word& out_data = nl.word("out_data");
    lip::Micropipeline mp(sim, "mp", stages, in_req, in_ack, in_data, out_req,
                          out_ack, out_data, dm);
    bfm::Scoreboard sb(sim, "sb");
    bfm::AsyncPutDriver put(sim, "put", in_req, in_ack, in_data, dm, 0, 0xFF,
                            &sb);
    std::uint64_t received = 0;
    out_req.on_change([&](bool, bool now) {
      if (now) ++received;
      out_ack.write(now, 100, sim::DelayKind::kTransport);
    });
    sim.run_until(200'000);
    const std::uint64_t r0 = received;
    const Time t0 = sim.now();
    sim.run_until(t0 + 2'000'000);
    r.throughput_mops = static_cast<double>(received - r0) * 1e6 /
                        static_cast<double>(sim.now() - t0);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }

  std::printf("Token-ring async-async FIFO ([4]) vs micropipeline ([15]) of "
              "equal capacity; 8-bit items\n\n");
  metrics::Table t({"capacity", "ring latency (ns)", "pipe latency (ns)",
                    "ring tput (MOps)", "pipe tput (MOps)"});
  for (unsigned cap : {2u, 4u, 8u, 16u}) {
    fifo::FifoConfig cfg;
    cfg.capacity = cap;
    cfg.width = 8;
    const auto ring_lat = metrics::latency_async_async(cfg);
    const auto ring_tput = metrics::throughput_async_async(cfg, 300);
    const AsyncResult pipe = run_micropipeline(cap);
    t.add_row({std::to_string(cap), metrics::fmt(ring_lat.min_ns, 2),
               metrics::fmt(pipe.latency_ns, 2),
               metrics::fmt(ring_tput.put_mops, 0),
               metrics::fmt(pipe.throughput_mops, 0)});
  }
  std::fputs(csv ? t.to_csv().c_str() : t.to_string().c_str(), stdout);
  std::printf("\nShape check ([4]'s claim, reused by this paper): the "
              "micropipeline's latency grows linearly with its stage count "
              "(every datum ripples through every stage) while the token "
              "ring's stays nearly flat (immobile data; only the global "
              "req/ack buses grow). The curves cross around 16 stages in "
              "this calibration -- deeper FIFOs increasingly favour the "
              "token ring.\n");
  return 0;
}
