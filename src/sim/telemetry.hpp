// In-run time-series telemetry sampler.
//
// A Telemetry is the fourth Observability sink (sim/observe.hpp): armed on a
// Simulation before components are constructed, it is serviced by the
// Scheduler as a self-rescheduling periodic probe. Every `interval` of sim
// time the probe snapshots
//
//   * every registered per-instance SOURCE -- instantaneous probes the
//     components themselves install at construction (FIFO/relay occupancy,
//     in-flight count, stall duty, synchronizer escape rate),
//   * per-(domain, kind) ROLLUPS -- the sum of every source of one kind in
//     one timing domain, as `domain.<domain>.<kind>`,
//   * the metrics::Registry -- every counter and gauge by value, and every
//     histogram's sliding-window p50/p95/p99/p99.9 (registry.hpp windows,
//     armed via Registry::set_default_window before construction),
//   * kernel builtins -- `kernel.events_per_us` (events executed per
//     microsecond of sim time over the last interval), `kernel.queue_depth`
//     (pending events), and -- only with `include_host_series` --
//     `kernel.pool_high_water` (host-dependent: reflects arena warmth, so
//     campaign timelines exclude it by default),
//   * `verify.violations` / `verify.violation_rate` when a verify::Hub is
//     armed
//
// into a bounded metrics::TimeSeriesStore (decimation policy documented
// there), exportable as JSONL, CSV, and Perfetto counter tracks merged into
// the TraceSession's trace.json via attach_trace().
//
// Determinism contract: the probe reads state and writes the store -- it
// never drives a wire, mints a transaction id, or advances the RNG, so an
// armed run's waveform is bit-identical to a disarmed run of the same seed,
// and the sampled values are a pure function of (design, seed, interval).
// The probe re-schedules itself ONLY while other events are pending;
// otherwise it retires, so the queue still drains (at most one interval
// after the last real event) and watchdog drain detection keeps working.
//
// Lifetime: sources capture component state by pointer; they are invoked
// only from the probe (i.e. while the simulation -- and thus every
// component -- is alive). Destroy-then-sample is undefined; the campaign
// engine calls reset() between runs before components are rebuilt.
//
// Disarmed cost: components probe `observability()->telemetry` once at
// construction; with no Telemetry armed they register no sources and keep
// no extra state -- the seed hot path is unchanged (pinned by the
// golden-VCD FNV tests and the <=5% gate in scripts/check_kernel_perf.py).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"
#include "sim/time.hpp"

namespace mts::metrics {
class Registry;
}  // namespace mts::metrics

namespace mts::sim {

class Simulation;
class TraceSession;

struct TelemetryConfig {
  /// Sampling period in sim time (picoseconds).
  Time interval = 100 * kNanosecond;
  /// Per-series retained-point cap before decimation (timeseries.hpp).
  std::size_t max_points = 4096;
  /// Sliding-window capacity applied (via Registry::set_default_window) to
  /// histograms created while armed; windowed p50/p95/p99/p99.9 are sampled
  /// per tick. 0 falls back to cumulative bucket percentiles.
  std::size_t histogram_window = 1024;
  /// Snapshot the whole metrics::Registry each tick (counters, gauges,
  /// histogram window percentiles). Sources sample regardless.
  bool sample_registry = true;
  /// Emit host-dependent kernel series (pool_high_water). Off by default:
  /// campaign timelines must be worker-count independent and arenas warm
  /// differently per worker.
  bool include_host_series = false;
};

class Telemetry {
 public:
  using Probe = std::function<double()>;

  explicit Telemetry(TelemetryConfig cfg = TelemetryConfig{})
      : cfg_(cfg), store_(cfg.max_points) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryConfig& config() const noexcept { return cfg_; }

  /// Registers an instantaneous per-instance probe, sampled every tick as
  /// series `<instance>.<kind>` and rolled up into `domain.<domain>.<kind>`
  /// (sum over the domain's sources of that kind). Components call this
  /// once, at construction, when armed; registration order is construction
  /// order and therefore deterministic. `fn` may keep mutable state (e.g.
  /// last-tick counters for duty/rate probes).
  void add_source(std::string instance, std::string domain, std::string kind,
                  Probe fn) {
    sources_.push_back(
        Source{std::move(instance), std::move(domain), std::move(kind),
               std::move(fn)});
  }
  std::size_t source_count() const noexcept { return sources_.size(); }

  /// Registry snapshotted each tick when `sample_registry` is set
  /// (Observability::arm wires the bundle's registry automatically).
  void set_registry(const metrics::Registry* r) noexcept { registry_ = r; }

  /// Merges this store's counter tracks into `t`'s to_json() output (one
  /// Perfetto counter track per series, under a dedicated "telemetry"
  /// process). Pass nullptr to detach. The Telemetry must outlive the
  /// trace session's export or be detached first.
  void attach_trace(TraceSession* t);

  /// Arms the periodic probe on `sim`: first sample at now() + interval,
  /// then every interval while other events remain pending (see header
  /// comment for the drain contract). Also the re-arm hook after a drain:
  /// calling start() again resumes sampling.
  void start(Simulation& sim);
  /// True between start() and the probe's retirement at queue drain.
  bool active() const noexcept { return active_; }

  /// Takes one sample immediately at sim.now() (final-snapshot / test
  /// hook); requires a prior start().
  void sample_now();

  std::uint64_t samples() const noexcept { return samples_; }

  metrics::TimeSeriesStore& store() noexcept { return store_; }
  const metrics::TimeSeriesStore& store() const noexcept { return store_; }

  std::string to_jsonl() const { return store_.to_jsonl(); }
  std::string to_csv() const { return store_.to_csv(); }
  bool write_jsonl(const std::string& path) const {
    return store_.write_jsonl(path);
  }

  /// Drops sources, series and sampler state; keeps the config. The
  /// campaign engine's between-runs hook -- call before components are
  /// rebuilt so stale source pointers never survive into the next run.
  void reset() {
    sources_.clear();
    store_.clear();
    registry_ = nullptr;
    sim_ = nullptr;
    active_ = false;
    samples_ = 0;
    last_t_ = 0;
    last_events_ = 0;
    last_violations_ = 0;
  }

 private:
  struct Source {
    std::string instance;
    std::string domain;
    std::string kind;
    Probe fn;
  };

  void take_sample(Time t);
  void probe_fired();

  TelemetryConfig cfg_;
  std::vector<Source> sources_;
  metrics::TimeSeriesStore store_;
  const metrics::Registry* registry_ = nullptr;
  Simulation* sim_ = nullptr;
  bool active_ = false;
  std::uint64_t samples_ = 0;
  Time last_t_ = 0;                    ///< previous sample time (rates)
  std::uint64_t last_events_ = 0;      ///< kernel events at previous sample
  std::uint64_t last_violations_ = 0;  ///< hub total at previous sample
};

}  // namespace mts::sim
