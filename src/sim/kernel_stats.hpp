// Kernel health counters, cheap enough to maintain unconditionally.
//
// Scheduler::stats() returns a snapshot; Simulation refreshes the copy held
// by sim::Report after every run()/run_until() so harnesses and reports can
// surface kernel behaviour without external profilers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mts::sim {

struct KernelStats {
  /// Total events executed since construction.
  std::uint64_t events_executed = 0;
  /// Maximum number of simultaneously pending events (delta ring + heap).
  std::size_t peak_queue_depth = 0;
  /// Event slots ever allocated (ring capacity + heap capacity): the pool
  /// high-water mark. Constant once the workload reaches steady state.
  std::size_t pool_high_water = 0;
};

}  // namespace mts::sim
