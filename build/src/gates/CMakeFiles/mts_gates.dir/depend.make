# Empty dependencies file for mts_gates.
# This may be replaced when dependencies are built.
