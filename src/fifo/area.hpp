// Area estimation for the mixed-clock FIFO architectures.
//
// Bills of materials mirror the constructed netlists; the comparison
// target is the Intel-patent organization the paper's Related Work
// describes (two synchronizers per cell instead of one per global
// detector), so the synchronization overhead can be compared
// quantitatively as capacity grows.
#pragma once

#include "fifo/config.hpp"
#include "gates/area_model.hpp"

namespace mts::fifo {

struct AreaEstimate {
  double datapath_ge = 0;    ///< registers + tri-state drivers
  double control_ge = 0;     ///< tokens, DV latches, detectors, controllers
  double synchronizer_ge = 0;  ///< the clock-domain-crossing hardware
  double total() const { return datapath_ge + control_ge + synchronizer_ge; }
};

/// The paper's mixed-clock FIFO: synchronizers only on the global full and
/// bi-modal empty detector outputs.
AreaEstimate area_mixed_clock(const FifoConfig& cfg,
                              const gates::AreaModel& am = {});

/// The Intel-style organization [9]: the same cell array, but with two
/// synchronizer chains per cell (per-cell state flags synchronized into
/// each clock domain) and no global detector synchronizers.
AreaEstimate area_per_cell_sync(const FifoConfig& cfg,
                                const gates::AreaModel& am = {});

}  // namespace mts::fifo
