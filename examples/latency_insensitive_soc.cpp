// Latency-insensitive SoC link (the paper's Fig. 14 followed by Fig. 11a,
// end to end): an asynchronous sensor-fusion block on one corner of the die
// streams packets through a synchronous bus domain and across a second
// clock-domain crossing into the display pipeline. Every wire is far too
// long for one clock cycle, so it is segmented:
//
//   async producer --[3 ARS]--> ASRS --[3 SRS @ clk_bus]-->
//     --[1 SRS @ clk_bus]--> MCRS --[2 SRS @ clk_display]--> sink
//
// Demonstrates:
//   - the paper's headline combination: mixed async/sync interfaces AND
//     multi-cycle interconnect AND a mixed-clock crossing, solved together,
//   - tolerance to downstream stalls (the sink drops its readiness 20% of
//     cycles; stop back-pressure ripples through the whole chain with no
//     packet loss),
//   - the observability stack (sim/observe.hpp): one transaction id rides
//     each packet from the asynchronous put all the way to valid_get in the
//     display domain; spans land in soc_trace.json (load it in
//     https://ui.perfetto.dev), per-instance latency/occupancy metrics and
//     the kernel's hottest-callbacks table land in soc_report.json.
//
//   $ ./example_latency_insensitive_soc
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "gates/combinational.hpp"
#include "lip/lip.hpp"
#include "metrics/registry.hpp"
#include "sync/clock.hpp"

int main() {
  using namespace mts;
  using sim::Time;

  sim::Simulation sim(11);

  // --- observability: armed BEFORE any component is constructed ---
  sim::TraceSession trace;
  metrics::Registry registry;
  sim::KernelProfiler profiler;
  sim::Observability obs;
  obs.trace = &trace;
  obs.metrics = &registry;
  obs.profiler = &profiler;
  obs.arm(sim);
  registry.bind(sim.report());

  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 16;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  const Time base = std::max(fifo::SyncGetSide::min_period(cfg),
                             fifo::SyncPutSide::min_period(cfg));
  const Time bus_period = base * 5 / 4;
  const Time disp_period = base * 7 / 4;  // unrelated frequency: true CDC
  sync::Clock clk_bus(sim, "clk_bus", {bus_period, 4 * bus_period, 0.5, 0});
  sync::Clock clk_disp(sim, "clk_display",
                       {disp_period, 4 * disp_period, 0.5, 0});

  // Fig. 14: 3 asynchronous relay stations, the ASRS, 3 bus-clock SRS.
  lip::AsyncSyncLink fuse(sim, "fuse", cfg, clk_bus.out(), /*ars=*/3,
                          /*srs=*/3);
  // Fig. 11a: 1 bus-clock SRS, the MCRS, 2 display-clock SRS.
  lip::MixedClockLink cross(sim, "cross", cfg, clk_bus.out(), clk_disp.out(),
                            /*left=*/1, /*right=*/2);

  // Glue the two links (same bus clock domain, one gate of wire each way)
  // and join their trace streams so ids survive the hop.
  gates::Netlist glue(sim, "glue");
  glue.add<gates::WordBuf>(sim, glue.qualified("d"), fuse.data_out(),
                           cross.data_in(), cfg.dm.gate(1));
  gates::gate_into(glue, "v", gates::GateOp::kBuf, {&fuse.valid_out()},
                   cross.valid_in(), cfg.dm.gate(1));
  gates::gate_into(glue, "s", gates::GateOp::kBuf, {&cross.stop_out()},
                   fuse.stop_in(), cfg.dm.gate(1));
  trace.link(fuse.last_traced_instance(), cross.first_traced_instance());

  bfm::Scoreboard sb(sim, "sb");

  // Bursty asynchronous producer: streams back to back, then idles.
  bfm::AsyncPutDriver producer(sim, "sensor", fuse.put_req(), fuse.put_ack(),
                               fuse.put_data(), cfg.dm, 0, 0xFFFF, &sb);
  auto bursts = std::make_shared<std::uint64_t>(0);
  auto toggle = std::make_shared<std::function<void()>>();
  *toggle = [&sim, &producer, bursts, toggle, bus_period] {
    const bool on = ((*bursts)++ % 2) == 1;
    producer.set_enabled(on);
    if (on) producer.issue_one();
    sim.sched().after(150 * bus_period, [toggle] { (*toggle)(); });
  };
  sim.sched().after(300 * bus_period, [toggle] { (*toggle)(); });

  // Display pipeline: consumes valid packets, stalls 20% of cycles.
  bfm::RsSink display(sim, "display", clk_disp.out(), cross.data_out(),
                      cross.valid_out(), cross.stop_in(), cfg.dm, 0.2, sb);

  const unsigned horizon_cycles = 3000;
  sim.run_until(4 * bus_period + horizon_cycles * bus_period);

  std::printf("latency-insensitive link: async sensor -> 3 ARS -> ASRS -> "
              "4 SRS @ %.0f MHz -> MCRS -> 2 SRS @ %.0f MHz -> display\n",
              sim::period_to_mhz(bus_period), sim::period_to_mhz(disp_period));
  std::printf("  packets sent       : %llu\n",
              static_cast<unsigned long long>(producer.completed()));
  std::printf("  packets displayed  : %llu\n",
              static_cast<unsigned long long>(display.received_valid()));
  std::printf("  in flight at end   : %llu\n",
              static_cast<unsigned long long>(sb.in_flight()));
  std::printf("  order violations   : %llu\n",
              static_cast<unsigned long long>(sb.errors()));
  std::printf("  transaction ids    : %llu (minted once at the ASRS; spans "
              "ride to the display domain)\n",
              static_cast<unsigned long long>(trace.transactions()));

  // Per-stage forward latency from the metrics registry.
  for (const char* inst : {"fuse.asrs", "cross.mcrs", "cross.right.rs1"}) {
    const metrics::Histogram* h = registry.find_histogram(inst, "latency_ps");
    if (h != nullptr && h->count() > 0) {
      std::printf("  %-16s : p50 %.0f ps   p99 %.0f ps   (n=%llu)\n", inst,
                  h->percentile(0.50), h->percentile(0.99),
                  static_cast<unsigned long long>(h->count()));
    }
  }
  const std::string hot = sim::format_hot_sites(sim.report().kernel());
  if (!hot.empty()) std::printf("%s", hot.c_str());

  trace.write_json("soc_trace.json");
  std::ofstream("soc_report.json") << sim.report().to_json();
  std::printf("  wrote soc_trace.json (%llu events) and soc_report.json\n",
              static_cast<unsigned long long>(trace.events_recorded()));

  // One id per packet end to end: ids are minted only at the ASRS, so a
  // re-mint anywhere downstream would inflate the count well past `sent`.
  const bool traced_ok =
      trace.transactions() > 500 &&
      trace.transactions() <= producer.completed() + cfg.capacity;
  const bool ok = sb.errors() == 0 && display.received_valid() > 500 &&
                  sb.in_flight() < 32 && traced_ok;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
