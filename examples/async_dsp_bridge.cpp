// Asynchronous DSP to synchronous bus: a self-timed filter core (no clock,
// 4-phase bundled-data output, data-dependent computation time) feeds a
// synchronous system bus through the async-sync FIFO -- the paper's
// Section 4 design doing the job it was built for.
//
// The system is declared as a builder::Design -- an external async node for
// the DSP, an edge carrying the FifoConfig, a generated consuming sink --
// and elaborate() inserts the async-sync FIFO, the bus-side driver/monitor
// pair and the scoreboard. Only the DSP behaviour itself is hand-written,
// against the handshake port the elaborator exposes.
//
// Demonstrates:
//   - the async put interface absorbing an irregular producer (the FIFO
//     simply withholds put_ack while full),
//   - the synchronous get side draining at a steady clock,
//   - zero synchronization overhead in steady state: every bus cycle with
//     data available delivers a word.
//
//   $ ./example_async_dsp_bridge
#include <cstdio>

#include "builder/builder.hpp"
#include "fifo/fifo.hpp"

namespace {

using namespace mts;
using sim::Time;

/// A self-timed "DSP": produces one 16-bit result per handshake, with a
/// data-dependent gap between results (short bursts, then a long tail, like
/// a block filter draining its pipeline).
class SelfTimedDsp {
 public:
  SelfTimedDsp(sim::Simulation& sim, builder::HandshakePort port,
               bfm::Scoreboard& sb)
      : sim_(sim), port_(port), sb_(sb) {
    port_.ack->on_change([this](bool, bool now) {
      if (now) {
        sb_.push(port_.data->read());
        ++produced_;
        port_.req->write(false, 150, sim::DelayKind::kTransport);
      } else {
        schedule_next();
      }
    });
    sim_.sched().after(1000, [this] { emit(); });
  }

  std::uint64_t produced() const { return produced_; }

 private:
  void schedule_next() {
    // Burst of 12 quick results, then a 30 ns refill gap.
    const Time gap = (produced_ % 16 < 12) ? 300 : 30'000;
    sim_.sched().after(gap, [this] { emit(); });
  }

  void emit() {
    // A toy FIR-ish value so the payload is recognizably "computed".
    state_ = (state_ * 5 + 7) & 0xFFFF;
    port_.data->set(state_);
    port_.req->write(true, 150, sim::DelayKind::kTransport);
  }

  sim::Simulation& sim_;
  builder::HandshakePort port_;
  bfm::Scoreboard& sb_;
  std::uint64_t state_ = 1;
  std::uint64_t produced_ = 0;
};

}  // namespace

int main() {
  sim::Simulation sim(3);

  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 16;
  const Time bus_period = fifo::SyncGetSide::min_period(cfg) * 5 / 4;

  builder::Design d("async_dsp_bridge");
  const builder::DomainId bus_dom =
      d.domain("clk_bus", {bus_period, 4 * bus_period, 0.5, 0});
  const builder::NodeId dsp =
      d.external("dsp", {builder::Design::async_out("put", 16)});
  const builder::NodeId bus =
      d.sink("bus", builder::Design::sync_in("in", bus_dom, 16));
  builder::LinkOptions opt;
  opt.capacity = 8;
  opt.controller = fifo::ControllerKind::kFifo;
  const builder::EdgeId bridge = d.connect(dsp, "put", bus, "in", opt, "bridge");

  auto elab = builder::elaborate(sim, d);
  SelfTimedDsp core(sim, elab->handshake_port(dsp, "put"),
                    elab->scoreboard(bus));

  sim.run_until(4 * bus_period + 3000 * bus_period);

  const fifo::AsyncSyncFifo& fifo = *elab->edge(bridge).as_fifo;
  std::printf("async DSP -> %0.f MHz synchronous bus via async-sync FIFO\n",
              sim::period_to_mhz(bus_period));
  std::printf("  results produced   : %llu\n",
              static_cast<unsigned long long>(core.produced()));
  std::printf("  results delivered  : %llu\n",
              static_cast<unsigned long long>(elab->sink_received(bus)));
  std::printf("  order violations   : %llu\n",
              static_cast<unsigned long long>(elab->scoreboard(bus).errors()));
  std::printf("  FIFO resident      : %u\n", fifo.occupancy());
  const bool ok = elab->scoreboard(bus).errors() == 0 &&
                  elab->sink_received(bus) > 500 && fifo.underflow_count() == 0;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
