// Tests of the Table 1 experiment harness itself: the throughput rows must
// validate (clean saturated run at the reported rates) and the latency rows
// must behave like the paper's (min <= max, both a few clock periods, RS
// variants close to their FIFO counterparts).
#include "metrics/experiments.hpp"

#include <gtest/gtest.h>

namespace mts::metrics {
namespace {

fifo::FifoConfig cfg_of(unsigned capacity, unsigned width, bool rs = false) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  if (rs) cfg.controller = fifo::ControllerKind::kRelayStation;
  return cfg;
}

TEST(Experiments, MixedClockThroughputValidates) {
  const ThroughputRow row = throughput_mixed_clock(cfg_of(4, 8), 600);
  EXPECT_TRUE(row.validated);
  EXPECT_GT(row.put, row.get);  // Table 1: put faster than get
  EXPECT_FALSE(row.put_async);
}

TEST(Experiments, AsyncSyncThroughputValidates) {
  const ThroughputRow row = throughput_async_sync(cfg_of(4, 8), 600);
  EXPECT_TRUE(row.validated);
  EXPECT_TRUE(row.put_async);
  EXPECT_GT(row.put, 0.0);
  // Table 1: the async put interface is slower than the sync get.
  EXPECT_LT(row.put, row.get);
}

TEST(Experiments, ThroughputFallsWithCapacityAndWidth) {
  const ThroughputRow small = throughput_mixed_clock(cfg_of(4, 8), 300);
  const ThroughputRow big_cap = throughput_mixed_clock(cfg_of(16, 8), 300);
  const ThroughputRow big_width = throughput_mixed_clock(cfg_of(4, 16), 300);
  EXPECT_GT(small.put, big_cap.put);
  EXPECT_GT(small.get, big_cap.get);
  EXPECT_GT(small.put, big_width.put);
  EXPECT_GT(small.get, big_width.get);
}

TEST(Experiments, MixedClockLatencyRowSane) {
  const LatencyRow row = latency_mixed_clock(cfg_of(4, 8), 8);
  EXPECT_GT(row.min_ns, 0.0);
  EXPECT_LE(row.min_ns, row.max_ns);
  // Latency through an empty FIFO is a handful of ns in this technology,
  // not hundreds (Table 1: 5.43 / 6.34 for the real circuit).
  EXPECT_LT(row.max_ns, 60.0);
  // Min and max differ by at most ~1 get period (sampling alignment).
  EXPECT_LT(row.max_ns - row.min_ns, 8.0);
}

TEST(Experiments, AsyncSyncLatencyRowSane) {
  const LatencyRow row = latency_async_sync(cfg_of(4, 8), 8);
  EXPECT_GT(row.min_ns, 0.0);
  EXPECT_LE(row.min_ns, row.max_ns);
  EXPECT_LT(row.max_ns, 60.0);
}

TEST(Experiments, LatencyGrowsWithCapacity) {
  const LatencyRow small = latency_mixed_clock(cfg_of(4, 8), 6);
  const LatencyRow big = latency_mixed_clock(cfg_of(16, 8), 6);
  EXPECT_LT(small.min_ns, big.min_ns);
}

TEST(Experiments, RelayStationRowsValidate) {
  const ThroughputRow mc = throughput_mixed_clock(cfg_of(4, 8, true), 600);
  EXPECT_TRUE(mc.validated);
  const ThroughputRow as = throughput_async_sync(cfg_of(4, 8, true), 600);
  EXPECT_TRUE(as.validated);
}

TEST(Experiments, RelayStationLatencyCloseToFifo) {
  const LatencyRow fifo_row = latency_mixed_clock(cfg_of(4, 8), 6);
  const LatencyRow rs_row = latency_mixed_clock(cfg_of(4, 8, true), 6);
  EXPECT_GT(rs_row.min_ns, 0.0);
  // Table 1: MCRS latency within ~1 ns of the FIFO's.
  EXPECT_LT(std::abs(rs_row.min_ns - fifo_row.min_ns), 3.0);
}

TEST(Experiments, AsyncPutRateIndependentOfControllerKind) {
  // Table 1: the async-sync FIFO and ASRS share identical put columns.
  const ThroughputRow f = throughput_async_sync(cfg_of(4, 8), 500);
  const ThroughputRow r = throughput_async_sync(cfg_of(4, 8, true), 500);
  EXPECT_NEAR(f.put, r.put, 0.05 * f.put);
}

}  // namespace
}  // namespace mts::metrics
