// End-to-end topology integration: the paper's full systems under random
// workloads, plus a stochastic-metastability soak.
#include <gtest/gtest.h>

#include <sstream>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "lip/lip.hpp"
#include "sync/clock.hpp"

namespace mts {
namespace {

using sim::Time;

struct TopologyParam {
  unsigned left_len;
  unsigned right_len;
  double ratio;  // right clock period vs left
  double stall;  // sink stall probability
  std::uint64_t seed;
};

class Fig11Topology : public ::testing::TestWithParam<TopologyParam> {};

TEST_P(Fig11Topology, MixedClockLinkDeliversEverythingInOrder) {
  const TopologyParam p = GetParam();
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  sim::Simulation sim(p.seed);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp =
      static_cast<Time>(static_cast<double>(2 * fifo::SyncGetSide::min_period(cfg)) *
                        p.ratio);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 919, 0.5, 0});
  lip::MixedClockLink link(sim, "link", cfg, cp.out(), cg.out(), p.left_len,
                           p.right_len);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", cp.out(), link.data_in(), link.valid_in(),
                    link.stop_out(), cfg.dm, 0.9, 0xFF, sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, p.stall, sb);

  sim.run_until(4 * pp + 900 * pp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(link.mcrs().fifo().overflow_count(), 0u);
  EXPECT_EQ(link.mcrs().fifo().underflow_count(), 0u);
  EXPECT_GT(sink.received_valid(), 80u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fig11Topology,
    ::testing::Values(TopologyParam{0, 0, 1.0, 0.0, 1},
                      TopologyParam{1, 1, 1.0, 0.0, 2},
                      TopologyParam{4, 2, 1.4, 0.2, 3},
                      TopologyParam{2, 6, 0.8, 0.3, 4},
                      TopologyParam{8, 8, 1.0, 0.1, 5},
                      TopologyParam{3, 3, 2.2, 0.5, 6}),
    [](const ::testing::TestParamInfo<TopologyParam>& info) {
      std::ostringstream os;
      os << "l" << info.param.left_len << "_r" << info.param.right_len << "_k"
         << static_cast<int>(info.param.ratio * 10) << "_st"
         << static_cast<int>(info.param.stall * 10) << "_s" << info.param.seed;
      return os.str();
    });

class Fig14Topology : public ::testing::TestWithParam<TopologyParam> {};

TEST_P(Fig14Topology, AsyncSyncLinkDeliversEverythingInOrder) {
  const TopologyParam p = GetParam();
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  sim::Simulation sim(p.seed);
  const Time gp =
      static_cast<Time>(static_cast<double>(2 * fifo::SyncGetSide::min_period(cfg)) *
                        p.ratio);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  lip::AsyncSyncLink link(sim, "link", cfg, cg.out(), p.left_len, p.right_len);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", link.put_req(), link.put_ack(),
                          link.put_data(), cfg.dm, 0, 0xFF, &sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, p.stall, sb);

  sim.run_until(4 * gp + 900 * gp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_GT(sink.received_valid(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Fig14Topology,
    ::testing::Values(TopologyParam{0, 1, 1.0, 0.0, 1},
                      TopologyParam{2, 2, 1.0, 0.1, 2},
                      TopologyParam{6, 4, 1.3, 0.3, 3},
                      TopologyParam{1, 8, 1.0, 0.2, 4},
                      TopologyParam{8, 1, 1.8, 0.4, 5}),
    [](const ::testing::TestParamInfo<TopologyParam>& info) {
      std::ostringstream os;
      os << "a" << info.param.left_len << "_s" << info.param.right_len << "_k"
         << static_cast<int>(info.param.ratio * 10) << "_st"
         << static_cast<int>(info.param.stall * 10) << "_sd" << info.param.seed;
      return os.str();
    });

TEST(StochasticMetastability, DepthTwoSurvivesLongSoak) {
  // Stochastic resolution on, irrational-ish clock ratio: the paper's
  // depth-2 synchronizers must keep the FIFO correct.
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.sync.mode = sync::MetaMode::kStochastic;

  sim::Simulation sim(99);
  const Time pp = fifo::SyncPutSide::min_period(cfg) * 4 / 3;
  const Time gp = static_cast<Time>(
      static_cast<double>(fifo::SyncGetSide::min_period(cfg)) * 1.377);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 577, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor put_mon(sim, cp.out(), dut.en_put(), dut.req_put(),
                          dut.data_put(), sb);
  bfm::GetMonitor get_mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});

  sim.run_until(4 * pp + 2000 * pp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dut.overflow_count(), 0u);
  EXPECT_EQ(dut.underflow_count(), 0u);
  EXPECT_GT(get_mon.dequeued(), 500u);
}

TEST(LongSoak, MixedClockTenThousandCyclesIrrationalRatio) {
  // A long-haul run at an awkward clock ratio with moderate margins: the
  // strongest single statement of end-to-end robustness in the suite.
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 16;
  sim::Simulation sim(424242);
  const Time pp = fifo::SyncPutSide::min_period(cfg) * 9 / 8;
  const Time gp = static_cast<Time>(
      static_cast<double>(fifo::SyncGetSide::min_period(cfg)) * 1.6180339);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 313, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {0.9, 1}, 0xFFFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {0.95, 1});
  sim.run_until(4 * pp + 10'000 * pp);
  EXPECT_GT(gm.dequeued(), 5'000u);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dut.overflow_count(), 0u);
  EXPECT_EQ(dut.underflow_count(), 0u);
  EXPECT_EQ(dut.put_domain().violations(), 0u);
  EXPECT_EQ(dut.get_domain().violations(), 0u);
}

TEST(StochasticMetastability, AsyncSyncSoak) {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.sync.mode = sync::MetaMode::kStochastic;

  sim::Simulation sim(123);
  const Time gp = fifo::SyncGetSide::min_period(cfg) * 4 / 3;
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, 0, 0xFF, &sb);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  bfm::GetMonitor get_mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);

  sim.run_until(4 * gp + 2000 * gp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_GT(get_mon.dequeued(), 500u);
}

}  // namespace
}  // namespace mts
