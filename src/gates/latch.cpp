#include "gates/latch.hpp"

#include <utility>

namespace mts::gates {

SrLatch::SrLatch(sim::Simulation& sim, std::string name, sim::Wire& s, sim::Wire& r,
                 sim::Wire& q, sim::Wire& qn, Time delay, bool initial)
    : sim_(sim),
      name_(std::move(name)),
      s_(s),
      r_(r),
      q_(q),
      qn_(qn),
      delay_(delay),
      state_(initial) {
  s_.on_change([this](bool, bool) { evaluate(); });
  r_.on_change([this](bool, bool) { evaluate(); });
  sim.sched().after(0, [this] { evaluate(); });
}

void SrLatch::evaluate() {
  const bool s = s_.read();
  const bool r = r_.read();
  if (s && r) {
    sim_.report().add(sim_.now(), sim::Severity::kWarning, "sr-conflict",
                      name_ + ": S and R asserted simultaneously");
    state_ = true;  // set-dominant, deterministic
  } else if (s) {
    state_ = true;
  } else if (r) {
    state_ = false;
  }  // both low: hold
  q_.write(state_, delay_, sim::DelayKind::kInertial);
  qn_.write(!state_, delay_, sim::DelayKind::kInertial);
}

DLatch::DLatch(sim::Simulation& sim, std::string name, sim::Wire& d, sim::Wire& en,
               sim::Wire& q, const DelayModel& dm, bool initial)
    : d_(d), en_(en), q_(q), d_to_q_(dm.latch_d_to_q), en_to_q_(dm.latch_en_to_q) {
  (void)name;
  q_.set(initial);
  d_.on_change([this](bool, bool) { update(false); });
  en_.on_rise([this] { update(true); });
  sim.sched().after(0, [this] {
    if (en_.read()) update(true);
  });
}

void DLatch::update(bool from_enable) {
  if (!en_.read()) return;
  q_.write(d_.read(), from_enable ? en_to_q_ : d_to_q_, sim::DelayKind::kInertial);
}

WordLatch::WordLatch(sim::Simulation& sim, std::string name, sim::Word& d,
                     sim::Wire& en, sim::Word& q, const DelayModel& dm)
    : d_(d), en_(en), q_(q), d_to_q_(dm.latch_d_to_q), en_to_q_(dm.latch_en_to_q) {
  (void)name;
  d_.on_change([this](std::uint64_t, std::uint64_t) { update(false); });
  en_.on_rise([this] { update(true); });
  sim.sched().after(0, [this] {
    if (en_.read()) update(true);
  });
}

void WordLatch::update(bool from_enable) {
  if (!en_.read()) return;
  q_.write(d_.read(), from_enable ? en_to_q_ : d_to_q_, sim::DelayKind::kInertial);
}

}  // namespace mts::gates
