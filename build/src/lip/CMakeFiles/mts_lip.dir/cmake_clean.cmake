file(REMOVE_RECURSE
  "CMakeFiles/mts_lip.dir/chain.cpp.o"
  "CMakeFiles/mts_lip.dir/chain.cpp.o.d"
  "CMakeFiles/mts_lip.dir/micropipeline.cpp.o"
  "CMakeFiles/mts_lip.dir/micropipeline.cpp.o.d"
  "CMakeFiles/mts_lip.dir/relay_station.cpp.o"
  "CMakeFiles/mts_lip.dir/relay_station.cpp.o.d"
  "CMakeFiles/mts_lip.dir/relay_station_structural.cpp.o"
  "CMakeFiles/mts_lip.dir/relay_station_structural.cpp.o.d"
  "libmts_lip.a"
  "libmts_lip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_lip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
