// Harness self-measurement (google-benchmark): how fast the discrete-event
// kernel and the full FIFO models simulate on the host. Not a paper
// experiment -- it documents the cost of using this library.
#include <benchmark/benchmark.h>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "gates/gates.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

/// Raw event throughput: a self-rescheduling event chain.
void BM_SchedulerEventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10'000) sched.after(1, tick);
    };
    sched.at(0, tick);
    sched.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerEventChain);

/// Signal fan-out: one wire driving many listeners.
void BM_SignalFanout(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim;
  sim::Wire w(sim, "w");
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < fanout; ++i) {
    w.on_change([&sink](bool, bool) { ++sink; });
  }
  bool v = false;
  for (auto _ : state) {
    v = !v;
    w.set(v);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_SignalFanout)->Arg(4)->Arg(64);

/// Whole-FIFO simulation speed: simulated put cycles per host second.
void BM_MixedClockFifoSim(benchmark::State& state) {
  const auto capacity = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    fifo::FifoConfig cfg;
    cfg.capacity = capacity;
    cfg.width = 8;
    sim::Simulation sim(1);
    const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
    const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                           dut.full(), cfg.dm, {1.0, 1}, 0xFF);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    sim.run_until(4 * pp + 200 * pp);
    benchmark::DoNotOptimize(dut.occupancy());
  }
  state.SetItemsProcessed(state.iterations() * 200);  // simulated put cycles
}
BENCHMARK(BM_MixedClockFifoSim)->Arg(4)->Arg(16);

/// Async-sync FIFO simulation speed.
void BM_AsyncSyncFifoSim(benchmark::State& state) {
  for (auto _ : state) {
    fifo::FifoConfig cfg;
    cfg.capacity = 8;
    cfg.width = 8;
    sim::Simulation sim(1);
    const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
    sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
    fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                            dut.put_data(), cfg.dm, 0, 0xFF, &sb);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    sim.run_until(4 * gp + 200 * gp);
    benchmark::DoNotOptimize(dut.occupancy());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_AsyncSyncFifoSim);

}  // namespace

BENCHMARK_MAIN();
