// Shared campaign workload for the scaling benches: a representative
// mixed-clock FIFO soak, sized so one run is a few milliseconds of host
// time -- long enough that per-run campaign overhead (reset, dispatch,
// merge) is a rounding error, short enough that a scaling sweep over
// {1,2,4,8} workers finishes in seconds. Both bench_kernel_perf's campaign
// section and bench_campaign_scaling fan this body, so their runs/sec
// numbers are directly comparable.
#pragma once

#include <cstdint>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sim/campaign.hpp"
#include "sync/clock.hpp"

namespace mts::benchwork {

/// One campaign run: capacity cycles through {4, 8, 16} with the config
/// index, traffic rates derive from the campaign-assigned per-run seed.
/// Cheap, allocation-free after each worker's first run, and exercises the
/// same clock/FIFO/driver stack as the real sweeps.
inline void fifo_soak_body(sim::CampaignContext& ctx, unsigned cycles) {
  constexpr unsigned kCaps[] = {4, 8, 16};
  fifo::FifoConfig cfg;
  cfg.capacity = kCaps[ctx.spec().config % 3];
  cfg.width = 8;

  sim::Simulation& sim = ctx.sim();
  const std::uint64_t seed = ctx.spec().seed;
  const double put_rate = 0.5 + 0.5 * static_cast<double>(seed % 101) / 100.0;
  const double get_rate =
      0.5 + 0.5 * static_cast<double>((seed >> 16) % 101) / 100.0;

  const sim::Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const sim::Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3 + seed % 7, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(),
                     dut.data_put(), sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {put_rate, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {get_rate, 1});

  sim.run_until(4 * pp + static_cast<sim::Time>(cycles) * pp);
  ctx.set("errors", static_cast<double>(sb.errors()));
  ctx.set("dequeued", static_cast<double>(gm.dequeued()));
}

/// Runs a `configs` x `reps` campaign of fifo_soak_body at the given
/// worker count and returns the measured runs/sec.
inline double measure_campaign_runs_per_sec(unsigned workers,
                                            std::size_t configs,
                                            std::size_t reps,
                                            unsigned cycles) {
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 99;
  sim::Campaign campaign(configs, reps, opt);
  campaign.run(
      [cycles](sim::CampaignContext& ctx) { fifo_soak_body(ctx, cycles); });
  return campaign.runs_per_sec();
}

}  // namespace mts::benchwork
