#include "gates/delay_model.hpp"

#include "sim/error.hpp"

namespace mts::gates {

Time DelayModel::gate(unsigned fanin, unsigned fanout) const {
  MTS_ASSERT(fanin >= 1, "gate with no inputs");
  MTS_ASSERT(fanout >= 1, "gate with no fanout");
  return gate_base + gate_per_input * fanin + load_per_fanout * (fanout - 1);
}

Time DelayModel::celement(unsigned fanin) const {
  MTS_ASSERT(fanin >= 1, "C-element with no inputs");
  return celement_base + celement_per_input * fanin;
}

Time DelayModel::buffer_tree(unsigned fanout) const {
  if (fanout <= 1) return 0;
  unsigned stages = 0;
  unsigned reach = 1;
  while (reach < fanout) {
    reach *= 4;
    ++stages;
  }
  return buf_stage * stages;
}

Time DelayModel::broadcast(unsigned cells, unsigned bits) const {
  return buffer_tree(cells) + bus_per_cell * cells + bus_per_bit * bits;
}

Time DelayModel::tristate_bus(unsigned cells, unsigned bits) const {
  return tristate_base + bus_per_cell * cells + bus_per_bit * bits / 2;
}

DelayModel DelayModel::hp06() {
  // Defaults above are the calibrated values; named constructor kept so call
  // sites read as a technology choice and future presets slot in beside it.
  return DelayModel{};
}

DelayModel DelayModel::scaled(double factor) const {
  if (factor <= 0.0) throw ConfigError("DelayModel::scaled: factor must be > 0");
  auto s = [factor](Time t) {
    const auto scaled_t = static_cast<Time>(static_cast<double>(t) * factor);
    return scaled_t == 0 && t != 0 ? Time{1} : scaled_t;
  };
  DelayModel out = *this;
  out.gate_base = s(gate_base);
  out.gate_per_input = s(gate_per_input);
  out.load_per_fanout = s(load_per_fanout);
  out.flop = FlopTiming{s(flop.clk_to_q), s(flop.setup), s(flop.hold)};
  out.latch_d_to_q = s(latch_d_to_q);
  out.latch_en_to_q = s(latch_en_to_q);
  out.sr_latch = s(sr_latch);
  out.celement_base = s(celement_base);
  out.celement_per_input = s(celement_per_input);
  out.buf_stage = s(buf_stage);
  out.bus_per_cell = s(bus_per_cell);
  out.bus_per_bit = s(bus_per_bit);
  out.tristate_base = s(tristate_base);
  out.meta_window = s(meta_window);
  out.meta_tau = s(meta_tau);
  out.meta_settle_det = s(meta_settle_det);
  return out;
}

}  // namespace mts::gates
