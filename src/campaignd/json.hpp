// Minimal JSON document model for the campaignd wire protocol and
// checkpoint files.
//
// The rest of the repo only ever *emits* JSON (hand-rolled ostream
// serializers); campaignd is the first subsystem that must also *parse* it
// -- run snapshots come back over sockets and checkpoints are reloaded
// across process lifetimes. Two properties matter more than generality:
//
//   * Lossless numbers. Seeds are full-range uint64 (campaign_run_seed
//     avalanches into the top bit), so numbers cannot transit through
//     double. An integral token keeps its exact textual form and converts
//     on demand (u64 / i64 / double); doubles are emitted with %.17g,
//     which round-trips every finite IEEE-754 binary64 exactly. A restored
//     snapshot therefore re-renders byte-identically.
//
//   * Total rejection. Anything malformed throws ProtocolError with a
//     byte offset -- never UB, never a partial document. The framing fuzz
//     suite (tests/campaignd/test_json.cpp) feeds this parser garbage
//     under ASan/UBSan.
//
// The model is a tree of Value nodes (object keys keep INSERTION order so
// emitted documents are deterministic and diffable). Depth and size are
// bounded to keep hostile inputs from exhausting the stack or the heap.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mts::campaignd::json {

/// Malformed document, wrong type, or missing member. `what()` carries the
/// byte offset for parse errors.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& msg)
      : std::runtime_error("json: " + msg) {}
};

class Value;
using Array = std::vector<Value>;
/// Object member list in insertion order (deterministic emission).
using Members = std::vector<std::pair<std::string, Value>>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT

  /// Numbers keep their exact textual form; these factories format it.
  static Value number_u64(std::uint64_t v);
  static Value number_i64(std::int64_t v);
  /// %.17g: exact round-trip for every finite double. Non-finite values
  /// (JSON has no inf/nan) are emitted as 0.
  static Value number_double(double v);
  static Value number_size(std::size_t v) {
    return number_u64(static_cast<std::uint64_t>(v));
  }
  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  // -- typed accessors (throw ProtocolError on kind mismatch) ---------------

  bool as_bool() const;
  const std::string& as_string() const;
  /// Exact unsigned conversion: rejects negatives, fractions and overflow.
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  std::size_t as_size() const { return static_cast<std::size_t>(as_u64()); }
  unsigned as_unsigned() const;
  const Array& as_array() const;
  const Members& as_object() const;

  /// The number's exact textual form (kNumber only).
  const std::string& number_text() const;

  // -- object helpers -------------------------------------------------------

  /// Member lookup; nullptr when absent (object only; throws otherwise).
  const Value* find(const std::string& key) const;
  /// Member lookup; throws ProtocolError when absent.
  const Value& at(const std::string& key) const;
  /// Appends (or replaces) a member, keeping insertion order.
  void set(const std::string& key, Value v);
  bool has(const std::string& key) const { return find(key) != nullptr; }

  // -- convenience: optional members with defaults --------------------------

  std::uint64_t get_u64(const std::string& key, std::uint64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;
  std::string get_string(const std::string& key,
                         const std::string& dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  // -- array helpers --------------------------------------------------------

  void push(Value v);
  std::size_t size() const;

  /// Serializes this value compactly (no insignificant whitespace).
  std::string dump() const;

 private:
  friend Value parse(const std::string&);
  friend class Parser;

  Kind kind_;
  bool bool_ = false;
  std::string str_;  ///< kString: value; kNumber: exact textual form
  Array arr_;
  Members obj_;
};

/// Parses one complete JSON document; trailing non-whitespace, depth beyond
/// 64 levels, or any syntax error throws ProtocolError.
Value parse(const std::string& text);

}  // namespace mts::campaignd::json
