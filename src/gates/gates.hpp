// Umbrella header for the structural gate library.
#pragma once

#include "gates/area_model.hpp"     // IWYU pragma: export
#include "gates/celement.hpp"       // IWYU pragma: export
#include "gates/combinational.hpp"  // IWYU pragma: export
#include "gates/delay_model.hpp"    // IWYU pragma: export
#include "gates/flops.hpp"          // IWYU pragma: export
#include "gates/latch.hpp"          // IWYU pragma: export
#include "gates/netlist.hpp"        // IWYU pragma: export
#include "gates/timing.hpp"         // IWYU pragma: export
#include "gates/tristate.hpp"       // IWYU pragma: export
