// Campaign scaling: runs/sec of the shared FIFO-soak campaign workload
// (campaign_workload.hpp) at 1, 2, 4 and 8 workers, plus a determinism
// spot-check (the 4-worker campaign JSON must be byte-identical to the
// 1-worker one with host stats excluded).
//
// Writes BENCH_campaign.json (current directory). The speedup column is
// meaningful only when the host has cores to scale onto -- host_cores is
// recorded next to every number so a 1-core CI box reporting ~1.0x reads
// as what it is.
//
// A second section measures the campaignd MULTI-PROCESS path (coordinator +
// fork/exec'd worker processes, see src/campaignd/): runs/sec at 1/2/4
// worker processes, byte-identity of the merged artifact against the
// in-process oracle, and the checkpoint-resume overhead (a resume of a
// complete checkpoint re-executes nothing; its cost is load + refold).
// The worker binary path is baked in at configure time and can be
// overridden with MTS_CAMPAIGND_BIN; without a usable binary the section
// is skipped and recorded as such.
//
// Usage: bench_campaign_scaling [--smoke]
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "campaign_workload.hpp"
#include "campaignd/coordinator.hpp"
#include "campaignd/json.hpp"

namespace {

using namespace mts;

/// The full campaign JSON (host stats excluded) for a worker count, for
/// the determinism check.
std::string campaign_doc(unsigned workers, std::size_t configs,
                         std::size_t reps, unsigned cycles) {
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 99;
  opt.capture_run_reports = true;
  sim::Campaign campaign(configs, reps, opt);
  campaign.run([cycles](sim::CampaignContext& ctx) {
    benchwork::fifo_soak_body(ctx, cycles);
  });
  return campaign.to_json(/*include_host_stats=*/false);
}

/// Campaign-health artifacts for a worker count: the same FIFO soak with
/// the engine telemetry sampler and a latency SLO armed. Returns
/// {health_json, merged timeline JSONL} -- both must be byte-identical
/// across worker counts (run-index-ordered folds).
struct HealthDoc {
  std::string health;
  std::string timeline;
};

HealthDoc campaign_health(unsigned workers, std::size_t configs,
                          std::size_t reps, unsigned cycles) {
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 99;
  opt.telemetry_interval = 50 * sim::kNanosecond;
  opt.telemetry_max_points = 512;
  opt.telemetry_window = 256;
  opt.slo.metric = "latency_ps";
  opt.slo.percentile = 0.99;
  opt.slo.budget = 1e9;  // generous: record worst, don't fail runs
  sim::Campaign campaign(configs, reps, opt);
  campaign.run([cycles](sim::CampaignContext& ctx) {
    benchwork::fifo_soak_body(ctx, cycles);
  });
  if (workers == 1) campaign.write_health_json("campaign_health.json");
  return HealthDoc{campaign.health_json(),
                   campaign.merged_timeline().to_jsonl()};
}

// -- campaignd multi-process section ----------------------------------------

std::string campaignd_worker_bin() {
  if (const char* env = std::getenv("MTS_CAMPAIGND_BIN")) return env;
#ifdef MTS_CAMPAIGND_BIN_DEFAULT
  return MTS_CAMPAIGND_BIN_DEFAULT;
#else
  return std::string();
#endif
}

campaignd::JobSpec campaignd_job(std::size_t configs, std::size_t reps,
                                 unsigned cycles) {
  campaignd::JobSpec job;
  job.workload = "fifo_soak";
  job.params = campaignd::json::Value::object();
  job.params.set("cycles", campaignd::json::Value::number_u64(cycles));
  job.configs = configs;
  job.reps = reps;
  job.opt.seed = 99;
  return job;
}

campaignd::CoordinatorOptions campaignd_opts(unsigned workers) {
  campaignd::CoordinatorOptions opt;
  opt.workers = workers;
  opt.worker_cmd = {campaignd_worker_bin(), "worker", "--port", "{port}"};
  return opt;
}

double timed_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct CampaigndResults {
  bool available = false;
  std::vector<double> rps;        ///< per worker count below
  bool identical = false;         ///< 4-process artifact == in-process oracle
  double full_run_sec = 0.0;      ///< checkpointed distributed run
  double resume_sec = 0.0;        ///< resume of the complete checkpoint
};

CampaigndResults measure_campaignd(std::size_t configs, std::size_t reps,
                                   unsigned cycles,
                                   const unsigned* worker_counts,
                                   std::size_t n_counts) {
  CampaigndResults out;
  const std::string bin = campaignd_worker_bin();
  if (bin.empty() || ::access(bin.c_str(), X_OK) != 0) return out;
  out.available = true;

  const campaignd::JobSpec job = campaignd_job(configs, reps, cycles);
  for (std::size_t i = 0; i < n_counts; ++i) {
    campaignd::Coordinator::Outcome o;
    campaignd::Coordinator coord(job, campaignd_opts(worker_counts[i]));
    const double sec = timed_seconds([&] { coord.run(o); });
    out.rps.push_back(static_cast<double>(configs * reps) / sec);
    if (i + 1 == n_counts) {
      campaignd::Coordinator::Outcome local;
      campaignd::run_local(job, local);
      out.identical = o.to_json(false) == local.to_json(false) &&
                      o.health_json(false) == local.health_json(false);
    }
  }

  // Resume overhead: a full checkpointed run, then a resume of its complete
  // checkpoint -- which replays nothing, so the delta is pure load+refold.
  const std::string ckpt = "BENCH_campaignd_ckpt.json";
  std::remove(ckpt.c_str());
  {
    campaignd::CoordinatorOptions opt = campaignd_opts(2);
    opt.checkpoint_path = ckpt;
    opt.checkpoint_every = 1;
    campaignd::Coordinator::Outcome o;
    campaignd::Coordinator coord(job, opt);
    out.full_run_sec = timed_seconds([&] { coord.run(o); });
  }
  {
    campaignd::CoordinatorOptions opt = campaignd_opts(2);
    opt.checkpoint_path = ckpt;
    opt.resume = true;
    campaignd::Coordinator::Outcome o;
    campaignd::Coordinator coord(job, opt);
    out.resume_sec = timed_seconds([&] { coord.run(o); });
  }
  std::remove(ckpt.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t configs = 3;
  const std::size_t reps = smoke ? 4 : 16;
  const unsigned cycles = smoke ? 150 : 400;
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::printf("campaign scaling: %zu runs of the shared FIFO soak "
              "(%u put cycles each), host_cores=%u\n\n",
              configs * reps, cycles, host_cores);
  std::printf("  %8s %14s %10s\n", "workers", "runs/sec", "speedup");

  const unsigned worker_counts[] = {1, 2, 4, 8};
  std::vector<double> rps;
  for (unsigned w : worker_counts) {
    rps.push_back(benchwork::measure_campaign_runs_per_sec(w, configs, reps,
                                                           cycles));
    std::printf("  %8u %14.1f %9.2fx\n", w, rps.back(), rps.back() / rps[0]);
  }

  const std::string doc1 = campaign_doc(1, configs, reps, cycles);
  const std::string doc4 = campaign_doc(4, configs, reps, cycles);
  const bool deterministic = doc1 == doc4;
  std::printf("\n4-worker vs 1-worker campaign JSON (host stats excluded): "
              "%s\n", deterministic ? "IDENTICAL" : "MISMATCH");

  // Streaming-telemetry determinism: per-run samplers + SLO verdicts armed,
  // health document and index-folded timeline byte-compared across worker
  // counts. Also leaves campaign_health.json behind (CI uploads it).
  const HealthDoc health1 = campaign_health(1, configs, reps, cycles);
  const HealthDoc health4 = campaign_health(4, configs, reps, cycles);
  const bool health_deterministic = health1.health == health4.health &&
                                    health1.timeline == health4.timeline;
  std::printf("4-worker vs 1-worker campaign_health.json + merged timeline: "
              "%s\n", health_deterministic ? "IDENTICAL" : "MISMATCH");

  // Multi-process campaignd: crash-isolated worker PROCESSES instead of
  // threads (fork/exec + TCP + checkpoint fold; see src/campaignd/).
  const unsigned proc_counts[] = {1, 2, 4};
  const CampaigndResults procs = measure_campaignd(
      configs, reps, cycles, proc_counts, std::size(proc_counts));
  if (procs.available) {
    std::printf("\ncampaignd multi-process (fork/exec workers):\n");
    std::printf("  %8s %14s %10s\n", "procs", "runs/sec", "speedup");
    for (std::size_t i = 0; i < procs.rps.size(); ++i) {
      std::printf("  %8u %14.1f %9.2fx\n", proc_counts[i], procs.rps[i],
                  procs.rps[i] / procs.rps[0]);
    }
    std::printf("4-process vs in-process campaign+health JSON: %s\n",
                procs.identical ? "IDENTICAL" : "MISMATCH");
    std::printf("checkpointed run %.3fs; resume of complete checkpoint "
                "%.3fs (replays nothing)\n",
                procs.full_run_sec, procs.resume_sec);
  } else {
    std::printf("\ncampaignd multi-process: worker binary unavailable, "
                "section skipped\n");
  }

  FILE* f = std::fopen("BENCH_campaign.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "bench_campaign_scaling: cannot write BENCH_campaign.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"note\": \"sim::Campaign scaling on the shared FIFO-"
                  "soak workload; speedup is bounded by host_cores, so a "
                  "1-core host legitimately reports ~1.0x\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"runs\": %zu,\n", configs * reps);
  std::fprintf(f, "  \"cycles_per_run\": %u,\n", cycles);
  std::fprintf(f, "  \"runs_per_sec\": {");
  for (std::size_t i = 0; i < std::size(worker_counts); ++i) {
    std::fprintf(f, "%s\"%u\": %.1f", i == 0 ? "" : ", ", worker_counts[i],
                 rps[i]);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"speedup_4w_vs_1w\": %.2f,\n", rps[2] / rps[0]);
  std::fprintf(f, "  \"deterministic_4w_vs_1w\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"telemetry_health_deterministic_4w_vs_1w\": %s,\n",
               health_deterministic ? "true" : "false");
  std::fprintf(f, "  \"campaignd\": {\n");
  std::fprintf(f, "    \"available\": %s",
               procs.available ? "true" : "false");
  if (procs.available) {
    std::fprintf(f, ",\n    \"runs_per_sec\": {");
    for (std::size_t i = 0; i < procs.rps.size(); ++i) {
      std::fprintf(f, "%s\"%u\": %.1f", i == 0 ? "" : ", ", proc_counts[i],
                   procs.rps[i]);
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "    \"identical_to_in_process\": %s,\n",
                 procs.identical ? "true" : "false");
    std::fprintf(f, "    \"checkpointed_run_sec\": %.3f,\n",
                 procs.full_run_sec);
    std::fprintf(f, "    \"resume_refold_sec\": %.3f\n", procs.resume_sec);
  } else {
    std::fprintf(f, "\n");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_campaign.json and campaign_health.json\n");
  const bool campaignd_ok = !procs.available || procs.identical;
  return deterministic && health_deterministic && campaignd_ok ? 0 : 1;
}
