# Empty dependencies file for mts_test_sync.
# This may be replaced when dependencies are built.
