# Empty dependencies file for bench_sync_depth.
# This may be replaced when dependencies are built.
