#include "metrics/activity.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/baseline_shift_fifo.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "sync/clock.hpp"

namespace mts::metrics {
namespace {

TEST(ActivityMeter, CountsWireTransitions) {
  sim::Simulation sim;
  sim::Wire w(sim, "w");
  ActivityMeter m;
  m.watch(w, 2.5);
  w.set(true);
  w.set(false);
  w.set(true);
  EXPECT_EQ(m.transitions(), 3u);
  EXPECT_DOUBLE_EQ(m.weighted_activity(), 7.5);
  m.reset();
  EXPECT_EQ(m.transitions(), 0u);
}

TEST(ActivityMeter, CountsHammingDistanceOnWords) {
  sim::Simulation sim;
  sim::Word d(sim, "d", 0);
  ActivityMeter m;
  m.watch(d, 1.0);
  d.set(0xFF);        // 8 bits flip
  d.set(0xF0);        // 4 bits flip
  d.set(0xF0);        // no change: no event
  EXPECT_EQ(m.transitions(), 12u);
}

TEST(DataMoves, TokenRingWritesOncePerItem) {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  sim::Simulation sim(1);
  const sim::Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const sim::Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {0.7, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  sim.run_until(4 * pp + 400 * pp);
  EXPECT_EQ(dut.data_moves(), sb.pushed());
}

TEST(DataMoves, BaselinePaysOneWritePerStage) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  const sim::Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const sim::Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::BaselineShiftFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::GetMonitor mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  sim.run_until(4 * pp + 500 * pp);
  ASSERT_GT(mon.dequeued(), 50u);
  const double per_item = static_cast<double>(dut.data_moves()) /
                          static_cast<double>(mon.dequeued());
  // Insert + 3 hops to traverse a 4-stage pipeline.
  EXPECT_NEAR(per_item, 4.0, 0.5);
}

}  // namespace
}  // namespace mts::metrics
