#include "campaignd/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "sim/report.hpp"  // json_escape

namespace mts::campaignd::json {

namespace {

bool is_integral_text(const std::string& t) {
  for (const char c : t) {
    if (c == '.' || c == 'e' || c == 'E') return false;
  }
  return true;
}

}  // namespace

Value Value::number_u64(std::uint64_t v) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.str_ = std::to_string(v);
  return out;
}

Value Value::number_i64(std::int64_t v) {
  Value out;
  out.kind_ = Kind::kNumber;
  out.str_ = std::to_string(v);
  return out;
}

Value Value::number_double(double v) {
  Value out;
  out.kind_ = Kind::kNumber;
  if (!std::isfinite(v)) {
    out.str_ = "0";
    return out;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out.str_ = buf;
  return out;
}

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw ProtocolError("expected bool");
  return bool_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw ProtocolError("expected string");
  return str_;
}

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::kNumber) throw ProtocolError("expected number");
  if (!is_integral_text(str_) || (!str_.empty() && str_[0] == '-')) {
    throw ProtocolError("expected unsigned integer, got '" + str_ + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(str_.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    throw ProtocolError("unsigned integer out of range: '" + str_ + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::int64_t Value::as_i64() const {
  if (kind_ != Kind::kNumber) throw ProtocolError("expected number");
  if (!is_integral_text(str_)) {
    throw ProtocolError("expected integer, got '" + str_ + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(str_.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    throw ProtocolError("integer out of range: '" + str_ + "'");
  }
  return static_cast<std::int64_t>(v);
}

double Value::as_double() const {
  if (kind_ != Kind::kNumber) throw ProtocolError("expected number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(str_.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw ProtocolError("bad number: '" + str_ + "'");
  }
  return v;
}

unsigned Value::as_unsigned() const {
  const std::uint64_t v = as_u64();
  if (v > std::numeric_limits<unsigned>::max()) {
    throw ProtocolError("unsigned out of range: '" + str_ + "'");
  }
  return static_cast<unsigned>(v);
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) throw ProtocolError("expected array");
  return arr_;
}

const Members& Value::as_object() const {
  if (kind_ != Kind::kObject) throw ProtocolError("expected object");
  return obj_;
}

const std::string& Value::number_text() const {
  if (kind_ != Kind::kNumber) throw ProtocolError("expected number");
  return str_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) throw ProtocolError("expected object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw ProtocolError("missing member '" + key + "'");
  return *v;
}

void Value::set(const std::string& key, Value v) {
  if (kind_ != Kind::kObject) throw ProtocolError("expected object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

std::uint64_t Value::get_u64(const std::string& key,
                             std::uint64_t dflt) const {
  const Value* v = find(key);
  return v == nullptr ? dflt : v->as_u64();
}

double Value::get_double(const std::string& key, double dflt) const {
  const Value* v = find(key);
  return v == nullptr ? dflt : v->as_double();
}

std::string Value::get_string(const std::string& key,
                              const std::string& dflt) const {
  const Value* v = find(key);
  return v == nullptr ? dflt : v->as_string();
}

bool Value::get_bool(const std::string& key, bool dflt) const {
  const Value* v = find(key);
  return v == nullptr ? dflt : v->as_bool();
}

void Value::push(Value v) {
  if (kind_ != Kind::kArray) throw ProtocolError("expected array");
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  throw ProtocolError("size() on scalar");
}

namespace {

void dump_into(const Value& v, std::string& out);

void dump_members(const Members& obj, std::string& out) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : obj) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += sim::json_escape(k);
    out += "\":";
    dump_into(v, out);
  }
  out += '}';
}

void dump_into(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Kind::kNumber: out += v.number_text(); return;
    case Kind::kString:
      out += '"';
      out += sim::json_escape(v.as_string());
      out += '"';
      return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_into(e, out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: dump_members(v.as_object(), out); return;
  }
}

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_into(*this, out);
  return out;
}

// -- parser -----------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing data");
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw ProtocolError(why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of document");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_lit(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (!consume_lit("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_lit("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_lit("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The repo's emitters only \u-escape control characters; encode
          // the BMP code point as UTF-8 (surrogate pairs unsupported --
          // reject rather than emit broken sequences).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail("bad number");
    if (s_[int_start] == '0' && pos_ - int_start > 1) {
      fail("bad number (leading zero)");  // RFC 8259: 0 / digit1-9 *DIGIT
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number (fraction)");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad number (exponent)");
    }
    Value v;
    v.kind_ = Kind::kNumber;
    v.str_ = s_.substr(start, pos_ - start);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace mts::campaignd::json
