// Run watchdog: wall-clock deadlines plus a progress heartbeat that tells
// deadlock from livelock and names the stuck sites.
//
// A hung mixed-timing run has exactly two shapes:
//
//   deadlock  -- the event queue DRAINS while transactions are still in
//                flight (e.g. an async put blocked on a withheld ack with
//                every clock stopped): nothing will ever run again.
//                Diagnosed by on_drain(), called by Simulation::run /
//                run_until when the queue empties.
//   livelock  -- events keep executing (clocks tick, detectors settle) but
//                no token moves for a whole progress window (e.g. a relay
//                chain with stopIn held forever): the run burns host time
//                without advancing the protocol. Diagnosed by the periodic
//                poll when every probe's progress counter is frozen while
//                items remain in flight.
//
// Probes are named (site, in_flight, progress) closures registered by the
// harness -- e.g. a driver's issued-minus-completed count and a sink's
// accepted count -- so the thrown diagnostic lists WHICH sites are stuck,
// alongside the scheduler's KernelStats.
//
// Cost model: the scheduler calls tick() once per executed event when armed
// (one pointer branch when not, same pattern as the profiler); tick() is a
// counter decrement until poll_interval_events elapse, then one poll doing
// the wall-clock read and probe scan. Campaign supervision arms a
// deadline-only watchdog per run (CampaignOptions::run_deadline_sec).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/error.hpp"
#include "sim/time.hpp"

namespace mts::sim {

class Scheduler;
class Simulation;

/// Base of every watchdog diagnosis.
class WatchdogError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// Wall-clock deadline exceeded (the run may be healthy but too slow).
class DeadlineError : public WatchdogError {
 public:
  using WatchdogError::WatchdogError;
};

/// Queue drained with transactions in flight: nothing can ever complete.
class DeadlockError : public WatchdogError {
 public:
  using WatchdogError::WatchdogError;
};

/// Events executing, zero token movement over the progress window.
class LivelockError : public WatchdogError {
 public:
  using WatchdogError::WatchdogError;
};

struct WatchdogConfig {
  /// Wall-clock budget for the run; 0 disables the deadline.
  double wall_deadline_sec = 0.0;
  /// Sim-time window with no probe progress (while items are in flight)
  /// that convicts a livelock; 0 disables the heartbeat.
  Time progress_window = 0;
  /// Events between polls: the cost/latency knob. Detection latency is at
  /// most one interval; the per-event cost is one decrement.
  std::size_t poll_interval_events = 65'536;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig cfg = {}) : cfg_(cfg) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a named probe. `in_flight` returns the transactions the
  /// site is still responsible for (counted by the deadlock/livelock
  /// verdicts); `progress` (optional) returns a monotonic completion
  /// counter -- any change across a poll means the protocol is moving.
  void watch(std::string site, std::function<std::uint64_t()> in_flight,
             std::function<std::uint64_t()> progress = {});

  /// Arms this watchdog on `sim`'s scheduler and starts the wall clock.
  /// The watchdog must outlive the simulation or be disarmed first
  /// (Simulation::reset disarms it, like the profiler).
  void arm(Simulation& sim);

  /// Returns `sim` to the dormant fast path.
  static void disarm(Simulation& sim);

  /// Per-event hook (called by the scheduler when armed): counts down to
  /// the next poll.
  void tick(Time now) {
    if (++events_since_poll_ >= cfg_.poll_interval_events) {
      events_since_poll_ = 0;
      poll(now);
    }
  }

  /// Deadline + livelock checks; throws DeadlineError / LivelockError.
  /// Normally driven by tick(); callable directly from harness loops.
  void poll(Time now);

  /// Queue-drain hook (called by Simulation when the queue empties):
  /// throws DeadlockError if any probe still reports in-flight items.
  void on_drain(Time now);

  std::uint64_t polls() const noexcept { return polls_; }
  const WatchdogConfig& config() const noexcept { return cfg_; }

 private:
  struct Probe {
    std::string site;
    std::function<std::uint64_t()> in_flight;
    std::function<std::uint64_t()> progress;
    std::uint64_t last_progress = 0;
  };

  /// "site-a (3 in flight), site-b (1 in flight)" over probes with items.
  std::string stuck_sites() const;
  /// Appends the armed scheduler's kernel counters to a diagnostic.
  std::string kernel_suffix() const;

  WatchdogConfig cfg_;
  std::vector<Probe> probes_;
  Scheduler* sched_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
  Time last_progress_time_ = 0;
  std::size_t events_since_poll_ = 0;
  std::uint64_t polls_ = 0;
};

}  // namespace mts::sim
