# Empty compiler generated dependencies file for example_latency_insensitive_soc.
# This may be replaced when dependencies are built.
