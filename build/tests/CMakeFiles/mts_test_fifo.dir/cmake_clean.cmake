file(REMOVE_RECURSE
  "CMakeFiles/mts_test_fifo.dir/fifo/test_ablation.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_ablation.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_area.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_area.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_async_async.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_async_async.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_async_sync.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_async_sync.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_async_timing.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_async_timing.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_baseline.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_baseline.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_cell_parts.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_cell_parts.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_detectors.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_detectors.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_detectors_property.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_detectors_property.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_mixed_clock.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_mixed_clock.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_protocol_outcomes.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_protocol_outcomes.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_sync_async.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_sync_async.cpp.o.d"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_timing.cpp.o"
  "CMakeFiles/mts_test_fifo.dir/fifo/test_timing.cpp.o.d"
  "mts_test_fifo"
  "mts_test_fifo.pdb"
  "mts_test_fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
