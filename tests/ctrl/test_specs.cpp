#include "ctrl/specs.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace mts::ctrl {
namespace {

struct OptFixture {
  sim::Simulation sim;
  sim::Wire we1{sim, "we1"};
  sim::Wire we{sim, "we"};
  sim::Wire ptok{sim, "ptok"};
  void settle() { sim.run_until(sim.now() + 1000); }
};

TEST(OptSpec, TokenArrivesOnWe1Pulse) {
  OptFixture f;
  BurstModeMachine opt(f.sim, "opt", opt_spec(), {&f.we1, &f.we}, {&f.ptok}, 50,
                       kOptStateIdle);
  EXPECT_FALSE(f.ptok.read());
  f.we1.set(true);
  f.settle();
  EXPECT_FALSE(f.ptok.read());  // pulse not complete
  f.we1.set(false);
  f.settle();
  EXPECT_TRUE(f.ptok.read());  // token obtained (Fig. 10a)
  EXPECT_EQ(opt.state(), kOptStateHolding);
}

TEST(OptSpec, PutOperationReleasesToken) {
  OptFixture f;
  f.ptok.set(true);
  BurstModeMachine opt(f.sim, "opt", opt_spec(), {&f.we1, &f.we}, {&f.ptok}, 50,
                       kOptStateHolding);
  f.we.set(true);  // put starts
  f.settle();
  EXPECT_FALSE(f.ptok.read());  // OPT reset
  f.we.set(false);  // put completes; token pass done
  f.settle();
  EXPECT_EQ(opt.state(), kOptStateIdle);
  // Next cycle: token can come around again.
  f.we1.set(true);
  f.settle();
  f.we1.set(false);
  f.settle();
  EXPECT_TRUE(f.ptok.read());
}

struct DvFixture {
  sim::Simulation sim;
  sim::Wire we{sim, "we"};
  sim::Wire re{sim, "re"};
  sim::Wire e{sim, "e", true};
  sim::Wire f_{sim, "f", false};
  void settle() { sim.run_until(sim.now() + 1000); }
};

TEST(DvAsNet, PutSetsFullGetClearsInTwoSteps) {
  DvFixture d;
  PetriEngine dv(d.sim, "dv", dv_as_net(), {&d.we, &d.re}, {&d.e, &d.f_}, 25);
  d.settle();
  EXPECT_TRUE(d.e.read());
  EXPECT_FALSE(d.f_.read());

  // Put: we+ declares the cell not-empty then full.
  d.we.set(true);
  d.settle();
  EXPECT_FALSE(d.e.read());
  EXPECT_TRUE(d.f_.read());
  d.we.set(false);
  d.settle();

  // Get begins: f- immediately (asynchronously, mid CLK_get cycle)...
  d.re.set(true);
  d.settle();
  EXPECT_FALSE(d.f_.read());
  EXPECT_FALSE(d.e.read());  // ...but NOT yet empty (prevents corruption)

  // Get completes at the next CLK_get edge (re-): now empty.
  d.re.set(false);
  d.settle();
  EXPECT_TRUE(d.e.read());
}

TEST(DvAsNet, WriteReadWriteConcurrency) {
  DvFixture d;
  PetriEngine dv(d.sim, "dv", dv_as_net(), {&d.we, &d.re}, {&d.e, &d.f_}, 25);
  d.settle();
  // Full cycle twice to prove the net is re-entrant (1-safe ring).
  for (int round = 0; round < 2; ++round) {
    d.we.set(true);
    d.settle();
    d.we.set(false);
    d.settle();
    d.re.set(true);
    d.settle();
    d.re.set(false);
    d.settle();
    EXPECT_TRUE(d.e.read()) << "round " << round;
    EXPECT_FALSE(d.f_.read()) << "round " << round;
  }
}

TEST(DvLinearNet, FullOnlyAfterWriteCompletes) {
  DvFixture d;
  PetriEngine dv(d.sim, "dv", dv_linear_net(), {&d.we, &d.re}, {&d.e, &d.f_}, 25);
  d.settle();

  d.we.set(true);
  d.settle();
  EXPECT_FALSE(d.e.read());
  EXPECT_FALSE(d.f_.read());  // data not provably latched yet

  d.we.set(false);
  d.settle();
  EXPECT_TRUE(d.f_.read());  // now visible to the asynchronous reader

  d.re.set(true);
  d.settle();
  EXPECT_FALSE(d.f_.read());
  d.re.set(false);
  d.settle();
  EXPECT_TRUE(d.e.read());
}

TEST(Specs, NetsValidate) {
  EXPECT_NO_THROW(dv_as_net().validate(2, 2));
  EXPECT_NO_THROW(dv_linear_net().validate(2, 2));
  EXPECT_NO_THROW(opt_spec().validate());
}

}  // namespace
}  // namespace mts::ctrl
