// Campaign streaming-telemetry suite: engine-armed per-run samplers,
// timeline artifacts, SLO gates and the campaign-health document -- all
// proven worker-count independent the same way test_campaign.cpp proves
// the core engine: byte-comparing the 1-worker artifacts against 4-worker.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "sim/campaign.hpp"
#include "sim/observe.hpp"
#include "sim/telemetry.hpp"

namespace mts {
namespace {

using sim::Time;

/// Deterministic run body: a tick chain whose length depends on the run
/// index, an occupancy-style telemetry source, and a latency histogram in
/// the engine's per-run registry (the SLO target). Everything derives from
/// ctx.spec(), never from the worker, so artifacts must be
/// placement-independent.
void telemetry_body(sim::CampaignContext& ctx) {
  sim::Simulation& sim = ctx.sim();
  const std::size_t index = ctx.spec().index;

  if (ctx.telemetry() != nullptr) {
    ctx.telemetry()->add_source("dut", "bus", "occupancy", [index] {
      return static_cast<double>(index + 1);
    });
  }
  metrics::Registry* reg = sim.observability() != nullptr
                               ? sim.observability()->metrics
                               : nullptr;
  if (reg != nullptr) {
    metrics::Histogram& h = reg->histogram("dut", "latency_ps", {1e9});
    // Run i's p100 is 100 * (i + 1): run 0 stays under a 150 ps budget,
    // every later run breaches it.
    for (int s = 1; s <= 20; ++s) {
      h.observe(static_cast<double>(s) * 5.0 * static_cast<double>(index + 1));
    }
  }

  // Keep the queue busy for 50 ns so the 1 ns sampler gets ~50 ticks.
  struct Chain {
    sim::Simulation* sim;
    std::uint64_t* left;
    void operator()() const {
      if (*left > 0) {
        --*left;
        sim->sched().after(sim::kNanosecond, *this);
      }
    }
  };
  std::uint64_t left = 50;
  sim.sched().after(sim::kNanosecond, Chain{&sim, &left});
  sim.run();
  ctx.set("ticks", 50.0 - static_cast<double>(left));
}

sim::CampaignOptions telemetry_options(unsigned workers) {
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 42;
  opt.telemetry_interval = sim::kNanosecond;
  opt.telemetry_max_points = 256;
  opt.telemetry_window = 64;
  opt.capture_timelines = true;
  opt.slo.metric = "latency_ps";
  opt.slo.percentile = 0.99;
  opt.slo.budget = 150.0;
  return opt;
}

TEST(CampaignTelemetry, PerRunSamplersProduceTimelinesAndSloVerdicts) {
  sim::Campaign c(2, 2, telemetry_options(1));
  c.run(telemetry_body);
  ASSERT_EQ(c.results().size(), 4u);
  for (const sim::RunResult& r : c.results()) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.telemetry_samples, 10u) << "run " << r.index;
    EXPECT_FALSE(r.timeline_jsonl.empty());
    // The per-run timeline carries the body's source and its rollup.
    EXPECT_NE(r.timeline_jsonl.find("dut.occupancy"), std::string::npos);
    EXPECT_NE(r.timeline_jsonl.find("domain.bus.occupancy"),
              std::string::npos);
    // ... and the windowed percentile series of the SLO histogram.
    EXPECT_NE(r.timeline_jsonl.find("dut.latency_ps.p99"), std::string::npos);
    // Host-dependent kernel series must stay out of run artifacts.
    EXPECT_EQ(r.timeline_jsonl.find("pool_high_water"), std::string::npos);
  }
  // Run i observes max latency 100 * (i + 1) vs budget 150: run 0 passes,
  // runs 1..3 breach (fail_run is off, so ok stays true).
  EXPECT_EQ(c.results()[0].slo_breaches, 0u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.results()[i].slo_breaches, 1u) << "run " << i;
    EXPECT_EQ(c.results()[i].slo_worst_instance, "dut");
    EXPECT_GT(c.results()[i].slo_worst, 150.0);
  }
  // Breaches land in the merged report under the campaign-slo category.
  EXPECT_EQ(c.merged_report().count("campaign-slo"), 3u);
  EXPECT_FALSE(c.merged_timeline().empty());
}

TEST(CampaignTelemetry, SloFailRunFailsBreachingRunsLikeExceptions) {
  sim::CampaignOptions opt = telemetry_options(1);
  opt.slo.fail_run = true;
  sim::Campaign c(2, 2, opt);
  c.run(telemetry_body);
  EXPECT_TRUE(c.results()[0].ok);
  EXPECT_EQ(c.failed(), 3u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(c.results()[i].ok);
    EXPECT_EQ(c.results()[i].error_type, "SloBreach");
    EXPECT_NE(c.results()[i].error.find("latency_ps"), std::string::npos);
  }
}

TEST(CampaignTelemetry, TimelinesAndHealthAreWorkerCountIndependent) {
  sim::Campaign c1(2, 3, telemetry_options(1));
  c1.run(telemetry_body);
  sim::Campaign c4(2, 3, telemetry_options(4));
  c4.run(telemetry_body);

  ASSERT_EQ(c1.results().size(), c4.results().size());
  for (std::size_t i = 0; i < c1.results().size(); ++i) {
    EXPECT_EQ(c1.results()[i].timeline_jsonl, c4.results()[i].timeline_jsonl)
        << "run " << i;
    EXPECT_EQ(c1.results()[i].telemetry_samples,
              c4.results()[i].telemetry_samples);
    EXPECT_EQ(c1.results()[i].slo_worst, c4.results()[i].slo_worst);
  }
  // The run-index-ordered folds: merged timeline and health doc, byte for
  // byte. (Host stats stay out of health_json by default.)
  EXPECT_EQ(c1.merged_timeline().to_jsonl(), c4.merged_timeline().to_jsonl());
  EXPECT_EQ(c1.health_json(), c4.health_json());
  EXPECT_EQ(c1.to_json(false), c4.to_json(false));
}

TEST(CampaignTelemetry, TimelineDirWritesOneFilePerSampledRun) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mts_campaign_timeline_test";
  fs::remove_all(dir);
  sim::CampaignOptions opt = telemetry_options(2);
  opt.timeline_dir = dir.string();
  sim::Campaign c(2, 2, opt);
  c.run(telemetry_body);
  for (const sim::RunResult& r : c.results()) {
    ASSERT_FALSE(r.timeline_path.empty());
    std::ifstream in(r.timeline_path);
    ASSERT_TRUE(in.good()) << r.timeline_path;
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(os.str(), r.timeline_jsonl);  // file mirrors the capture
  }
  // Health doc writes and parses as the same bytes health_json() returns.
  const std::string health_path = (dir / "campaign_health.json").string();
  ASSERT_TRUE(c.write_health_json(health_path));
  std::ifstream in(health_path);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), c.health_json());
  fs::remove_all(dir);
}

TEST(CampaignTelemetry, HealthJsonSummarizesVerdictsDeterministically) {
  sim::Campaign c(2, 2, telemetry_options(1));
  c.run(telemetry_body);
  const std::string h = c.health_json();
  EXPECT_NE(h.find("\"runs\": 4"), std::string::npos);
  EXPECT_NE(h.find("\"ok\": 4"), std::string::npos);
  EXPECT_NE(h.find("\"slo_breaches\": 3"), std::string::npos);
  EXPECT_NE(h.find("\"worst\""), std::string::npos);
  EXPECT_NE(h.find("\"latency_ps\""), std::string::npos);
  // No volatile host numbers unless asked for.
  EXPECT_EQ(h.find("wall_seconds"), std::string::npos);
  EXPECT_NE(c.health_json(true).find("wall_seconds"), std::string::npos);
}

TEST(CampaignTelemetry, ProgressSinkStreamsHealthLines) {
  sim::CampaignOptions opt = telemetry_options(2);
  std::vector<std::string> lines;
  std::mutex mu;
  opt.progress = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  opt.health_every = 1;  // one line per completed run + the final line
  sim::Campaign c(2, 2, opt);
  c.run(telemetry_body);
  ASSERT_GE(lines.size(), 4u);
  // The last line always reports the full campaign.
  EXPECT_NE(lines.back().find("4/4 runs"), std::string::npos);
  EXPECT_NE(lines.back().find("runs/s"), std::string::npos);
  EXPECT_NE(lines.back().find("SLO"), std::string::npos);
}

TEST(CampaignTelemetry, SloOnlyModeIsolatesRegistryWithoutSampler) {
  // budget > 0 with telemetry_interval == 0: per-run registry + SLO
  // verdicts, no sampler, no timelines.
  sim::CampaignOptions opt;
  opt.workers = 1;
  opt.seed = 42;
  opt.slo.metric = "latency_ps";
  opt.slo.percentile = 0.99;
  opt.slo.budget = 150.0;
  sim::Campaign c(2, 2, opt);
  c.run(telemetry_body);
  EXPECT_EQ(c.results()[0].slo_breaches, 0u);
  EXPECT_EQ(c.results()[1].slo_breaches, 1u);
  for (const sim::RunResult& r : c.results()) {
    EXPECT_EQ(r.telemetry_samples, 0u);
    EXPECT_TRUE(r.timeline_jsonl.empty());
  }
  EXPECT_TRUE(c.merged_timeline().empty());
}

// --- Report::merge edge cases (the campaign reduction primitive) ----------

TEST(ReportMerge, EmptyIntoEmptyAndPopulatedEdges) {
  sim::Report a;
  sim::Report b;
  a.merge(b);
  EXPECT_EQ(a.failure_count(), 0u);
  a.add(0, sim::Severity::kError, "cat", "boom");
  a.merge(b);  // populated <- empty: unchanged
  EXPECT_EQ(a.count("cat"), 1u);
  EXPECT_EQ(a.failure_count(), 1u);
  b.merge(a);  // empty <- populated: becomes a copy
  EXPECT_EQ(b.count("cat"), 1u);
  EXPECT_EQ(b.failure_count(), 1u);
}

TEST(ReportMerge, DisjointCategoriesUnion) {
  sim::Report a;
  a.add(0, sim::Severity::kInfo, "alpha", "one");
  sim::Report b;
  b.add(1, sim::Severity::kWarning, "beta", "two");
  a.merge(b);
  EXPECT_EQ(a.count("alpha"), 1u);
  EXPECT_EQ(a.count("beta"), 1u);
  EXPECT_EQ(a.failure_count(), 0u);  // info + warning: no failures
}

}  // namespace
}  // namespace mts
