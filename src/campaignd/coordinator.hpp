// The campaignd coordinator: fault-tolerant multi-process campaign
// execution with checkpoint/resume.
//
// The coordinator shards a campaign's run matrix into WORK UNITS (explicit
// run-index lists), spawns `workers` crash-isolated worker processes
// (fork/exec of this binary's `worker` subcommand, or any command with a
// {port} placeholder), and dispatches units over a length-prefixed
// TCP/JSON protocol on 127.0.0.1. Every completed run returns a snapshot
// record; at finalize the records are REFOLDED in run-index order with the
// engine's own merge() machinery, so the merged report / metrics /
// coverage / timeline -- and the rendered campaign + health JSON -- are
// byte-identical to the sequential in-process run (run_local is that
// oracle, sharing executor, record construction and fold).
//
// Fault tolerance:
//   * Crash detection: worker EOF / nonzero exit / signal death, a lost
//     heartbeat (deadline without beats), or a frozen runs-done counter
//     while beats still flow (wedged run: progress deadline). Detected
//     workers are killed, reaped and respawned (up to respawn_limit per
//     slot; beyond it the slot retires and the campaign degrades to fewer
//     workers).
//   * Re-dispatch with backoff: a failed unit returns to the queue minus
//     the runs that already completed, with capped exponential backoff.
//     Each failure gets a signature ("signal:9@run3", "heartbeat-timeout
//     @run7", ...); a unit failing with the SAME signature twice -- the
//     deterministic-failure criterion PR 5 applies to runs -- or exceeding
//     its retry budget is QUARANTINED: its remaining runs are recorded as
//     failed ("quarantined") instead of being retried forever.
//   * Checkpoint/resume: every checkpoint_every completed runs (and at
//     every shutdown path) the coordinator atomically persists all
//     completed records. `resume` reloads them, re-dispatches only the
//     remainder, and -- because the fold is a pure function of the records
//     -- renders byte-identical artifacts while REPLAYING NOTHING.
//   * Graceful shutdown: SIGTERM/SIGINT (install_signal_handlers) or
//     request_shutdown() stops dispatching, writes a final checkpoint,
//     kills the fleet and returns with Outcome::interrupted set.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaignd/json.hpp"
#include "metrics/coverage.hpp"
#include "metrics/registry.hpp"
#include "metrics/timeseries.hpp"
#include "sim/campaign.hpp"
#include "sim/report.hpp"

namespace mts::campaignd {

class CoordinatorError : public std::runtime_error {
 public:
  explicit CoordinatorError(const std::string& msg)
      : std::runtime_error("coordinator: " + msg) {}
};

/// What to run: a named workload over a configs x reps matrix.
struct JobSpec {
  std::string workload = "fifo_soak";
  json::Value params = json::Value::object();
  std::size_t configs = 1;
  std::size_t reps = 1;
  /// Engine options (workers / progress are process-local and ignored here;
  /// the coordinator's own worker count lives in CoordinatorOptions).
  sim::CampaignOptions opt;
  /// Non-empty: execute only these run indices (repro replay). Empty: the
  /// whole matrix.
  std::vector<std::size_t> run_filter;
};

/// A coordinator lifecycle event, for logging and the chaos suite.
struct Event {
  std::string kind;  ///< worker_spawned|worker_connected|worker_lost|
                     ///< unit_dispatched|unit_requeued|unit_quarantined|
                     ///< run_done|checkpoint_written|degraded|shutdown
  int worker = -1;          ///< slot index, when applicable
  long pid = -1;            ///< worker pid, when applicable
  std::int64_t unit = -1;   ///< unit id, when applicable
  std::string detail;       ///< human-readable specifics (signatures, paths)
};

struct CoordinatorOptions {
  unsigned workers = 2;
  /// Worker command line; "{port}" is replaced with the listener port.
  /// Empty: {"/proc/self/exe", "worker", "--port", "{port}"}.
  std::vector<std::string> worker_cmd;
  /// Runs per work unit; 0 picks ceil(runs / (4 * workers)), min 1.
  std::size_t unit_size = 0;
  int heartbeat_interval_ms = 100;
  /// No heartbeat for this long -> the worker is dead (kill + re-dispatch).
  int heartbeat_timeout_ms = 1000;
  /// Beats flow but the runs-done counter is frozen for this long -> the
  /// worker is wedged (kill + re-dispatch). Must comfortably exceed the
  /// longest single run.
  int progress_timeout_ms = 10000;
  /// Re-dispatches after a unit's first failure before quarantine.
  unsigned unit_retries = 3;
  int backoff_initial_ms = 100;  ///< doubles per failure, capped below
  int backoff_max_ms = 2000;
  /// Respawns per worker slot before it retires (graceful degradation).
  unsigned respawn_limit = 3;
  /// Non-empty: periodic + shutdown checkpoints land here.
  std::string checkpoint_path;
  /// Checkpoint cadence in completed runs (checkpoint_path set only).
  std::size_t checkpoint_every = 8;
  /// Load checkpoint_path first and execute only the remainder.
  bool resume = false;
  /// Chaos directives [{mode, at_run, marker}, ...] forwarded to workers
  /// with the unit containing at_run (tests only).
  json::Value chaos = json::Value::array();
  /// Lifecycle event sink (nullable). Called from the coordinator thread.
  std::function<void(const Event&)> on_event;
};

class Coordinator {
 public:
  /// The campaign's merged artifacts, refolded from per-run records in
  /// run-index order. Non-copyable (Coverage is).
  struct Outcome {
    std::vector<sim::RunResult> results;  ///< run-index order
    sim::Report report;
    metrics::Registry metrics;
    metrics::Coverage coverage;
    metrics::TimeSeriesStore timeline;
    std::vector<std::size_t> quarantined_configs;  ///< engine semantics
    std::vector<std::int64_t> quarantined_units;   ///< campaignd semantics
    bool interrupted = false;  ///< graceful shutdown before completion
    unsigned workers_used = 1;
    double wall_seconds = 0.0;

    std::size_t configs = 0;
    std::size_t reps = 0;
    std::uint64_t seed = 1;
    sim::SloGate slo;

    Outcome() = default;
    Outcome(const Outcome&) = delete;
    Outcome& operator=(const Outcome&) = delete;

    /// The canonical campaign artifact (sim::campaign_json). With
    /// include_host_stats=false, byte-identical across worker counts,
    /// placements, crashes and resumes.
    std::string to_json(bool include_host_stats = true) const;
    /// The deterministic health document (sim::campaign_health_json).
    std::string health_json(bool include_host_stats = false) const;
  };

  Coordinator(JobSpec job, CoordinatorOptions opt);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Executes the campaign. Throws CoordinatorError when every worker slot
  /// retired with work still outstanding (after writing a checkpoint, so
  /// nothing is lost). On graceful shutdown returns normally with
  /// out.interrupted == true.
  void run(Outcome& out);

  /// Asks a running campaign to stop at the next loop turn: final
  /// checkpoint, fleet teardown, Outcome::interrupted. Callable from any
  /// thread (and the only coordinator method that is).
  void request_shutdown() noexcept { shutdown_.store(true); }

  /// Installs SIGTERM/SIGINT handlers that flag EVERY coordinator in the
  /// process for graceful shutdown (sig_atomic_t flag; checked each loop
  /// turn). Idempotent.
  static void install_signal_handlers();

 private:
  struct Impl;
  JobSpec job_;
  CoordinatorOptions opt_;
  std::atomic<bool> shutdown_{false};
};

/// The sequential in-process oracle: executes the same job in this process
/// (one shard, run-index order) through the SAME executor, record
/// construction and fold as the distributed path -- so its Outcome renders
/// byte-identical JSON by construction. The chaos suite diffs against this.
void run_local(const JobSpec& job, Coordinator::Outcome& out);

/// The shared finalize step: sorts records by run index, restores each into
/// fresh objects and merges them in order, then appends the failure/SLO
/// manifests. Exposed for checkpoint tooling ("render artifacts from a
/// checkpoint without re-running anything").
void fold_records(const JobSpec& job, std::vector<json::Value> records,
                  Coordinator::Outcome& out);

}  // namespace mts::campaignd
