# Empty dependencies file for mts_sync.
# This may be replaced when dependencies are built.
