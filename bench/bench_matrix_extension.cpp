// Extension bench: the full 2x2 interface matrix of Fig. 1, measured with
// the Table 1 methodology. The paper evaluates the sync-sync and
// async-sync designs; the sync-async design was "designed, to be described
// in a forthcoming technical report" and async-async was published
// separately ([4]). This bench completes the matrix.
//
// Usage: bench_matrix_extension [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "fifo/config.hpp"
#include "metrics/experiments.hpp"
#include "metrics/table.hpp"

int main(int argc, char** argv) {
  using namespace mts;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }

  std::printf("Full interface matrix (8-bit items; sync rates in MHz, async "
              "rates in MegaOps/s; latency in ns through an empty FIFO)\n\n");

  metrics::Table t({"design", "places", "put", "get", "latency min",
                    "latency max", "ok"});
  for (unsigned cap : {4u, 8u, 16u}) {
    fifo::FifoConfig cfg;
    cfg.capacity = cap;
    cfg.width = 8;

    {
      const auto tp = metrics::throughput_mixed_clock(cfg, 800);
      const auto lat = metrics::latency_mixed_clock(cfg, 12);
      t.add_row({"sync-sync", std::to_string(cap), metrics::fmt(tp.put, 0),
                 metrics::fmt(tp.get, 0), metrics::fmt(lat.min_ns, 2),
                 metrics::fmt(lat.max_ns, 2), tp.validated ? "yes" : "NO"});
    }
    {
      const auto tp = metrics::throughput_async_sync(cfg, 800);
      const auto lat = metrics::latency_async_sync(cfg, 12);
      t.add_row({"async-sync", std::to_string(cap), metrics::fmt(tp.put, 0),
                 metrics::fmt(tp.get, 0), metrics::fmt(lat.min_ns, 2),
                 metrics::fmt(lat.max_ns, 2), tp.validated ? "yes" : "NO"});
    }
    {
      const auto tp = metrics::throughput_sync_async(cfg, 800);
      const auto lat = metrics::latency_sync_async(cfg);
      t.add_row({"sync-async", std::to_string(cap), metrics::fmt(tp.put, 0),
                 metrics::fmt(tp.get, 0), metrics::fmt(lat.min_ns, 2),
                 metrics::fmt(lat.max_ns, 2), tp.validated ? "yes" : "NO"});
    }
    {
      const auto tp = metrics::throughput_async_async(cfg, 400);
      const auto lat = metrics::latency_async_async(cfg);
      t.add_row({"async-async", std::to_string(cap),
                 metrics::fmt(tp.put_mops, 0), metrics::fmt(tp.get_mops, 0),
                 metrics::fmt(lat.min_ns, 2), metrics::fmt(lat.max_ns, 2),
                 tp.validated ? "yes" : "NO"});
    }
  }
  std::fputs(csv ? t.to_csv().c_str() : t.to_string().c_str(), stdout);
  std::printf("\nExpected shape: fully synchronous interfaces fastest; each "
              "asynchronous interface trades throughput for clock-free "
              "operation; asynchronous receivers see lower latency (no "
              "synchronizer crossing on the read side).\n");
  return 0;
}
