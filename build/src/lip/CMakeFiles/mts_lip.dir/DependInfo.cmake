
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lip/chain.cpp" "src/lip/CMakeFiles/mts_lip.dir/chain.cpp.o" "gcc" "src/lip/CMakeFiles/mts_lip.dir/chain.cpp.o.d"
  "/root/repo/src/lip/micropipeline.cpp" "src/lip/CMakeFiles/mts_lip.dir/micropipeline.cpp.o" "gcc" "src/lip/CMakeFiles/mts_lip.dir/micropipeline.cpp.o.d"
  "/root/repo/src/lip/relay_station.cpp" "src/lip/CMakeFiles/mts_lip.dir/relay_station.cpp.o" "gcc" "src/lip/CMakeFiles/mts_lip.dir/relay_station.cpp.o.d"
  "/root/repo/src/lip/relay_station_structural.cpp" "src/lip/CMakeFiles/mts_lip.dir/relay_station_structural.cpp.o" "gcc" "src/lip/CMakeFiles/mts_lip.dir/relay_station_structural.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/mts_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/fifo/CMakeFiles/mts_fifo.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mts_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mts_ctrl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
