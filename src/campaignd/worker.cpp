#include "campaignd/worker.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaignd/json.hpp"
#include "campaignd/net.hpp"
#include "campaignd/snapshots.hpp"
#include "campaignd/wire.hpp"
#include "campaignd/workload.hpp"
#include "sim/campaign.hpp"

namespace mts::campaignd {

namespace {

/// One scripted failure, delivered with a work unit. `marker` (when
/// non-empty) is an exactly-once gate shared across re-dispatches: the
/// first worker to O_CREAT|O_EXCL it executes the directive, every later
/// attempt sees EEXIST and runs normally -- which is precisely the
/// "crash once, succeed on retry" schedule the chaos suite needs.
struct ChaosDirective {
  std::string mode;  ///< kill | abort | hang | mute_heartbeat | drop_connection
  std::size_t at_run = 0;
  std::string marker;
};

/// Atomically claims a chaos marker. Empty marker: always fires.
bool claim_marker(const std::string& marker) {
  if (marker.empty()) return true;
  const int fd = ::open(marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

/// Periodic heartbeat sender. Shares the connection's send mutex with the
/// main loop so beats never interleave bytes with run_done frames.
class Heartbeater {
 public:
  Heartbeater(const Fd& fd, std::mutex& send_mu) : fd_(fd), send_mu_(send_mu) {}

  ~Heartbeater() { stop(); }

  void start(int interval_ms) {
    interval_ms_ = interval_ms > 0 ? interval_ms : 100;
    thread_ = std::thread([this] { loop(); });
  }

  void set_unit(std::int64_t unit) { unit_.store(unit); }
  void note_run_done() { runs_done_.fetch_add(1); }
  /// Chaos mute_heartbeat: beats stop, the process stays alive.
  void mute() { muted_.store(true); }

  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopping_) {
      cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_));
      if (stopping_) return;
      if (muted_.load()) continue;
      json::Value m = json::Value::object();
      m.set("type", json::Value("heartbeat"));
      const std::int64_t unit = unit_.load();
      if (unit >= 0) m.set("unit", json::Value::number_i64(unit));
      m.set("runs_done", json::Value::number_u64(runs_done_.load()));
      const std::string frame = encode_frame(m.dump());
      lk.unlock();
      try {
        std::lock_guard<std::mutex> sl(send_mu_);
        send_all(fd_, frame);
      } catch (const NetError&) {
        // Coordinator is gone; the main recv loop will see EOF and exit.
        lk.lock();
        return;
      }
      lk.lock();
    }
  }

  const Fd& fd_;
  std::mutex& send_mu_;
  int interval_ms_ = 100;
  std::atomic<std::int64_t> unit_{-1};
  std::atomic<std::uint64_t> runs_done_{0};
  std::atomic<bool> muted_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

class Worker {
 public:
  explicit Worker(const WorkerOptions& opt)
      : conn_(connect_local(opt.port)), beats_(conn_, send_mu_) {}

  int run() {
    {
      json::Value hello = json::Value::object();
      hello.set("type", json::Value("hello"));
      hello.set("pid", json::Value::number_i64(::getpid()));
      send_msg(hello);
    }
    FrameDecoder dec;
    std::vector<std::string> payloads;
    char buf[4096];
    for (;;) {
      // Drain decoded messages before reading more.
      for (const std::string& p : payloads) {
        if (!handle(json::parse(p))) return 0;  // shutdown
      }
      payloads.clear();
      const std::size_t n = recv_some(conn_, buf, sizeof buf);
      if (n == 0) return 0;  // coordinator went away: orderly exit
      dec.feed(buf, n, payloads);
    }
  }

  /// Best-effort structured error to the coordinator before dying.
  void report_error(const std::string& what) {
    try {
      json::Value m = json::Value::object();
      m.set("type", json::Value("error"));
      m.set("message", json::Value(what));
      send_msg(m);
    } catch (...) {
      // Connection already dead; exit code carries the news.
    }
  }

 private:
  /// Returns false on shutdown.
  bool handle(const json::Value& m) {
    const std::string type = m.at("type").as_string();
    if (type == "job") {
      handle_job(m);
      return true;
    }
    if (type == "unit") {
      handle_unit(m);
      return true;
    }
    if (type == "shutdown") return false;
    throw json::ProtocolError("worker: unexpected message type '" + type +
                              "'");
  }

  void handle_job(const json::Value& m) {
    configs_ = m.at("configs").as_size();
    reps_ = m.at("reps").as_size();
    opt_ = options_from_json(m.at("options"));
    workload_ = make_workload(m.at("workload").as_string(), m.at("params"));
    body_ = workload_->body();
    shard_ = std::make_unique<sim::RunShard>(opt_);
    beats_.start(static_cast<int>(m.get_u64("heartbeat_interval_ms", 100)));
  }

  void handle_unit(const json::Value& m) {
    if (!shard_) throw json::ProtocolError("worker: unit before job");
    const std::int64_t unit = m.at("unit").as_i64();
    std::vector<ChaosDirective> chaos;
    if (const json::Value* c = m.find("chaos")) {
      for (const json::Value& d : c->as_array()) {
        ChaosDirective cd;
        cd.mode = d.at("mode").as_string();
        cd.at_run = d.at("at_run").as_size();
        cd.marker = d.get_string("marker", "");
        chaos.push_back(std::move(cd));
      }
    }
    beats_.set_unit(unit);
    for (const json::Value& iv : m.at("indices").as_array()) {
      const std::size_t index = iv.as_size();
      for (const ChaosDirective& d : chaos) {
        if (d.at_run == index && d.mode != "drop_connection") {
          pre_run_chaos(d);
        }
      }
      execute_one(unit, index);
      for (const ChaosDirective& d : chaos) {
        if (d.at_run == index && d.mode == "drop_connection" &&
            claim_marker(d.marker)) {
          drop_connection_chaos();
        }
      }
      json::Value done = json::Value::object();
      done.set("type", json::Value("run_done"));
      done.set("unit", json::Value::number_i64(unit));
      done.set("record", std::move(record_));
      send_msg(done);
      beats_.note_run_done();
    }
    beats_.set_unit(-1);
    json::Value ud = json::Value::object();
    ud.set("type", json::Value("unit_done"));
    ud.set("unit", json::Value::number_i64(unit));
    send_msg(ud);
  }

  /// Executes run `index` exactly as a Campaign pool thread would and
  /// stages its snapshot record in record_. The worker-lifetime registry is
  /// cleared first so the record carries this run's DELTA: per-run deltas
  /// merge (counters/histograms add) to exactly the worker-lifetime
  /// accumulation the in-process engine reduces. (Gauges merge by max
  /// rather than last-write; bodies that need byte-identical distributed
  /// artifacts keep gauges out of ctx.metrics() -- see snapshots.hpp.)
  void execute_one(std::int64_t unit, std::size_t index) {
    (void)unit;
    shard_->registry.clear();
    workload_->begin_run();
    sim::RunSpec spec;
    spec.index = index;
    spec.config = reps_ > 0 ? index / reps_ : 0;
    spec.rep = reps_ > 0 ? index % reps_ : 0;
    spec.seed = sim::campaign_run_seed(opt_.seed, index);
    sim::RunResult result;
    sim::Report report;
    metrics::TimeSeriesStore timeline;
    sim::execute_run(*shard_, opt_, spec, 0, body_, result, &report,
                     &timeline);
    if (!result.ok && !opt_.repro_dir.empty()) {
      sim::write_repro_bundle(opt_.repro_dir, opt_.seed, configs_, reps_,
                              spec, result);
    }
    record_ = make_run_record(result, report, shard_->registry,
                              workload_->coverage(), timeline);
  }

  void pre_run_chaos(const ChaosDirective& d) {
    if (!claim_marker(d.marker)) return;
    if (d.mode == "kill") {
      ::raise(SIGKILL);  // the scripted "kill -9 mid-unit"
    } else if (d.mode == "abort") {
      std::abort();
    } else if (d.mode == "hang") {
      // Wedged run: beats keep flowing, the runs-done counter freezes.
      // Only the coordinator's progress deadline can end this.
      for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    } else if (d.mode == "mute_heartbeat") {
      // Alive but silent: the heartbeat deadline must fire.
      beats_.mute();
      for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    } else {
      throw json::ProtocolError("worker: unknown chaos mode '" + d.mode +
                                "'");
    }
  }

  /// Dies mid-message: a frame header promising more bytes than will ever
  /// arrive, then a hard exit. The coordinator's decoder must report
  /// pending bytes at EOF, not hang or mis-sync.
  [[noreturn]] void drop_connection_chaos() {
    const std::string truncated =
        std::string("\x00\x00\x00\x40", 4) + "{\"type\":\"run_done\"";
    try {
      std::lock_guard<std::mutex> sl(send_mu_);
      send_all(conn_, truncated);
    } catch (const NetError&) {
    }
    ::_exit(3);
  }

  void send_msg(const json::Value& m) {
    const std::string frame = encode_frame(m.dump());
    std::lock_guard<std::mutex> sl(send_mu_);
    send_all(conn_, frame);
  }

  Fd conn_;
  std::mutex send_mu_;
  Heartbeater beats_;

  std::size_t configs_ = 0;
  std::size_t reps_ = 0;
  sim::CampaignOptions opt_;
  std::unique_ptr<Workload> workload_;
  sim::Campaign::Body body_;
  std::unique_ptr<sim::RunShard> shard_;
  json::Value record_;
};

}  // namespace

int run_worker(const WorkerOptions& opt) {
  try {
    Worker w(opt);
    try {
      return w.run();
    } catch (const std::exception& e) {
      w.report_error(e.what());
      return 2;
    }
  } catch (const std::exception&) {
    return 2;  // could not even connect
  }
}

}  // namespace mts::campaignd
