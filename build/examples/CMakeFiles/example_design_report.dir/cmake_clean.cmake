file(REMOVE_RECURSE
  "CMakeFiles/example_design_report.dir/design_report.cpp.o"
  "CMakeFiles/example_design_report.dir/design_report.cpp.o.d"
  "example_design_report"
  "example_design_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
