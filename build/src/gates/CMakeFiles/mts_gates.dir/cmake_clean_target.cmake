file(REMOVE_RECURSE
  "libmts_gates.a"
)
