#include "lip/chain.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "sync/clock.hpp"

namespace mts::lip {
namespace {

using sim::Time;

fifo::FifoConfig rs_cfg(unsigned capacity = 8) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;
  return cfg;
}

TEST(SyncRelayChainTest, PipelineOfLengthFiveKeepsOrder) {
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const Time period = 2000;
  sync::Clock clk(sim, "clk", {period, period, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Word& in_d = nl.word("ind");
  sim::Wire& in_v = nl.wire("inv");
  sim::Wire& s_out = nl.wire("sout");
  sim::Word& out_d = nl.word("outd");
  sim::Wire& out_v = nl.wire("outv");
  sim::Wire& s_in = nl.wire("sin");
  SyncRelayChain chain(sim, "chain", clk.out(), 5, dm, in_d, in_v, s_out, out_d,
                       out_v, s_in);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", clk.out(), in_d, in_v, s_out, dm, 0.9, 0xFF, sb);
  bfm::RsSink sink(sim, "sink", clk.out(), out_d, out_v, s_in, dm, 0.3, sb);
  sim.run_until(1500 * period);
  EXPECT_GT(sink.received_valid(), 500u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(SyncRelayChainTest, LengthZeroIsAWire) {
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const Time period = 2000;
  sync::Clock clk(sim, "clk", {period, period, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Word& in_d = nl.word("ind");
  sim::Wire& in_v = nl.wire("inv");
  sim::Wire& s_out = nl.wire("sout");
  sim::Word& out_d = nl.word("outd");
  sim::Wire& out_v = nl.wire("outv");
  sim::Wire& s_in = nl.wire("sin");
  SyncRelayChain chain(sim, "chain", clk.out(), 0, dm, in_d, in_v, s_out, out_d,
                       out_v, s_in);
  in_d.set(0x5A);
  in_v.set(true);
  s_in.set(true);
  sim.run_until(10000);
  EXPECT_EQ(out_d.read(), 0x5Au);
  EXPECT_TRUE(out_v.read());
  EXPECT_TRUE(s_out.read());  // stop passes backwards
}

TEST(MixedClockLinkTest, EndToEndAcrossDomainsAndChains) {
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(8);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg) * 9 / 8;
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 1234, 0.5, 0});
  MixedClockLink link(sim, "link", cfg, cp.out(), cg.out(), 3, 4);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", cp.out(), link.data_in(), link.valid_in(),
                    link.stop_out(), cfg.dm, 1.0, 0xFF, sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, 0.1, sb);
  sim.run_until(4 * pp + 1200 * pp);
  EXPECT_GT(sink.received_valid(), 400u);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(link.mcrs().fifo().overflow_count(), 0u);
  EXPECT_EQ(link.mcrs().fifo().underflow_count(), 0u);
}

TEST(AsyncSyncLinkTest, Fig14TopologyEndToEnd) {
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(4);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  AsyncSyncLink link(sim, "link", cfg, cg.out(), 3, 3);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", link.put_req(), link.put_ack(),
                          link.put_data(), cfg.dm, 0, 0xFF, &sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, 0.1, sb);
  sim.run_until(4 * gp + 1200 * gp);
  EXPECT_GT(sink.received_valid(), 300u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(AsyncSyncLinkTest, DirectConnectionWithoutArs) {
  // "In principle, no relay stations need to be inserted in the
  // asynchronous communication channels" (Section 5.3).
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(4);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  AsyncSyncLink link(sim, "link", cfg, cg.out(), 0, 2);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", link.put_req(), link.put_ack(),
                          link.put_data(), cfg.dm, 0, 0xFF, &sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, 0.0, sb);
  sim.run_until(4 * gp + 600 * gp);
  EXPECT_GT(sink.received_valid(), 150u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(MixedClockLinkTest, ThroughputIndependentOfChainLength) {
  // The latency-insensitivity claim: longer wires (more relay stations)
  // add latency but do not reduce steady-state throughput.
  auto run = [](unsigned len) {
    sim::Simulation sim(1);
    const fifo::FifoConfig cfg = rs_cfg(8);
    const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
    const Time gp = pp;
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + 997, 0.5, 0});
    MixedClockLink link(sim, "link", cfg, cp.out(), cg.out(), len, len);
    bfm::Scoreboard sb(sim, "sb");
    bfm::RsSource src(sim, "src", cp.out(), link.data_in(), link.valid_in(),
                      link.stop_out(), cfg.dm, 1.0, 0xFF, sb);
    bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                     link.stop_in(), cfg.dm, 0.0, sb);
    sim.run_until(4 * pp + 800 * pp);
    EXPECT_EQ(sb.errors(), 0u);
    return sink.received_valid();
  };
  const auto t1 = run(1);
  const auto t8 = run(8);
  EXPECT_GT(t1, 300u);
  // Longer chains add only pipeline-fill latency, bounded by ~2 packets
  // per extra station out of ~700 delivered.
  EXPECT_NEAR(static_cast<double>(t8), static_cast<double>(t1),
              0.05 * static_cast<double>(t1));
}

}  // namespace
}  // namespace mts::lip
