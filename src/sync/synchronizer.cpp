#include "sync/synchronizer.hpp"

#include <random>

#include "gates/combinational.hpp"
#include "sim/fault.hpp"
#include "sim/observe.hpp"
#include "sim/report.hpp"
#include "verify/hub.hpp"

namespace mts::sync {

Synchronizer::Synchronizer(sim::Simulation& sim, const std::string& name,
                           sim::Wire& clk, sim::Wire& in,
                           const gates::DelayModel& dm, const SyncConfig& config,
                           gates::TimingDomain* domain, bool initial,
                           sim::Wire* force_high)
    : sim_(sim), nl_(sim, name), config_(config), dm_(dm) {
  if (sim::Observability* o = sim.observability();
      o != nullptr && o->metrics != nullptr) {
    // Per-chain synchronization-hazard counters: in-window samples at the
    // front stage (routine) and escapes past the final stage (the MTBF
    // events of Section 7).
    in_window_ctr_ = &o->metrics->counter(name, "sync_in_window");
    escape_ctr_ = &o->metrics->counter(name, "sync_escapes");
  }
  if (sim::Observability* o = sim.observability();
      o != nullptr && o->telemetry != nullptr) {
    // Per-interval synchronization-hazard telemetry: escapes past the final
    // stage and in-window samples at the front stage since the previous
    // sampling tick.
    o->telemetry->add_source(name, "sync", "escape_rate",
                             [this, prev = std::uint64_t{0}]() mutable {
                               const std::uint64_t d = failures_ - prev;
                               prev = failures_;
                               return static_cast<double>(d);
                             });
    o->telemetry->add_source(name, "sync", "in_window_rate",
                             [this, prev = std::uint64_t{0}]() mutable {
                               const std::uint64_t d = front_events_ - prev;
                               prev = front_events_;
                               return static_cast<double>(d);
                             });
  }
  mon_ = sim.monitors();
  if (config_.depth == 0) {
    // Ablation passthrough: a buffer only; the raw asynchronous level feeds
    // the synchronous controller directly.
    sim::Wire& bypass = nl_.wire("bypass", initial);
    if (force_high != nullptr) {
      gates::gate_into(nl_, "bypassor", gates::GateOp::kOr, {&in, force_high},
                       bypass, dm.gate(2));
    } else {
      gates::gate_into(nl_, "bypassbuf", gates::GateOp::kBuf, {&in}, bypass,
                       dm.gate(1));
    }
    out_ = &bypass;
    return;
  }

  sim::Wire* stage_in = &in;
  if (config_.depth == 1 && force_high != nullptr) {
    stage_in = &gates::make_gate(nl_, "preOr", gates::GateOp::kOr,
                                 {stage_in, force_high}, dm);
  }

  // The veto must hold the chain in the forced state until the true input
  // value has had time to propagate through the earlier stages: stretch it
  // across depth-1 cycles with a small shift register (for the paper's
  // depth 2 this degenerates to the bare veto wire).
  std::vector<sim::Wire*> veto_taps;
  if (force_high != nullptr && config_.depth >= 2) {
    veto_taps.push_back(force_high);
    sim::Wire* tap = force_high;
    for (unsigned extra = 0; extra + 2 < config_.depth; ++extra) {
      sim::Wire& q = nl_.wire("veto" + std::to_string(extra));
      nl_.add<gates::Etdff>(sim, nl_.qualified("vetoff" + std::to_string(extra)),
                            clk, *tap, nullptr, q, dm.flop, domain, false);
      veto_taps.push_back(&q);
      tap = &q;
    }
  }
  for (unsigned stage = 0; stage < config_.depth; ++stage) {
    sim::Wire& q = nl_.wire("s" + std::to_string(stage), initial);
    auto& ff = nl_.add<gates::Etdff>(sim, nl_.qualified("ff" + std::to_string(stage)),
                                     clk, *stage_in, nullptr, q, dm.flop,
                                     domain, initial);
    const bool front = stage == 0;
    const bool last = stage + 1 == config_.depth;
    if (front || config_.mode == MetaMode::kStochastic) {
      // Front stage always absorbs async input. In stochastic mode every
      // stage can be hit by a late-settling predecessor.
      ff.set_async_sampling([this, &ff, front, last](bool old_value,
                                                     bool new_value,
                                                     sim::Time edge) {
        if (front) {
          ++front_events_;
          if (in_window_ctr_ != nullptr) in_window_ctr_->inc();
        }
        if (last && !front) {
          ++failures_;
          if (escape_ctr_ != nullptr) escape_ctr_->inc();
          sim_.report().add(edge, sim::Severity::kWarning, "sync-failure",
                            nl_.prefix() + ": metastability escaped final stage");
          if (mon_ != nullptr) {
            verify::Violation v;
            v.time = edge;
            v.invariant = verify::Invariant::kMetastabilityEscape;
            v.site = nl_.prefix();
            v.observed = "in-window sample at the final stage";
            v.expected = "metastability resolved within the chain";
            mon_->report(std::move(v));
          }
        }
        if (config_.mode == MetaMode::kDeterministic) {
          return gates::AsyncSample{old_value, 0};
        }
        // Fault injection: an armed plan stretches tau (resolutions settle
        // later) and biases the resolved value; its draws come from the
        // plan's own RNG so arming never perturbs baseline stochastic runs.
        // The site key is the stage flop's full name (e.g. "...neSync.ff0"),
        // the same key the Etdff window hook matches, so a plan can stress
        // just the front stages ("Sync.ff0") or a whole chain ("neSync").
        double tau = static_cast<double>(dm_.meta_tau);
        double p_new = 0.5;
        std::mt19937_64* rng = &sim_.rng();
        sim::FaultPlan* fp = sim_.faults();
        const sim::MetaFault* mf =
            fp != nullptr ? fp->meta(ff.name()) : nullptr;
        if (mf != nullptr) {
          tau *= mf->tau_scale;
          p_new = mf->p_new;
          rng = &fp->rng();
          if (front) fp->note("meta.sample");
        }
        std::bernoulli_distribution coin(p_new);
        std::exponential_distribution<double> settle(1.0 / tau);
        const auto extra = static_cast<sim::Time>(settle(*rng));
        if (mf != nullptr && last && mf->escape_threshold > 0 &&
            extra > mf->escape_threshold) {
          // The final stage will not settle within the receiving clock's
          // resolution slack: unresolved metastability reaches fan-out
          // logic mid-cycle (the event the MTBF model rates).
          fp->note("meta.escape");
          sim_.report().add(edge, sim::Severity::kWarning, "meta-escape",
                            nl_.prefix() +
                                ": injected metastability settled " +
                                std::to_string(extra) + "ps after sampling");
          if (mon_ != nullptr) {
            verify::Violation v;
            v.time = edge;
            v.invariant = verify::Invariant::kMetastabilityEscape;
            v.site = nl_.prefix();
            v.observed = "settled " + std::to_string(extra) +
                         "ps after sampling";
            v.expected = "resolution within " +
                         std::to_string(mf->escape_threshold) + "ps";
            mon_->report(std::move(v));
          }
        }
        return gates::AsyncSample{coin(*rng) ? new_value : old_value, extra};
      });
    }
    stage_in = &q;
    if (config_.depth >= 2 && stage + 2 == config_.depth &&
        force_high != nullptr) {
      // Fig. 7b: the (synchronous) veto joins just before the LAST latch so
      // it reaches the controller one cycle after the get regardless of the
      // chain's depth; the stretched taps keep it asserted until the true
      // value catches up.
      std::vector<sim::Wire*> or_inputs{stage_in};
      or_inputs.insert(or_inputs.end(), veto_taps.begin(), veto_taps.end());
      stage_in = &gates::make_gate(nl_, "vetoOr", gates::GateOp::kOr,
                                   std::move(or_inputs), dm);
    }
  }
  out_ = stage_in;
}

}  // namespace mts::sync
