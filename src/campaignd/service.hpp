// The campaignd job service: submit / status / fetch over the same framed
// TCP/JSON protocol the workers speak.
//
// A Service owns a job queue and a runner thread that executes queued jobs
// sequentially, each through its own Coordinator (multi-process fleet,
// checkpointing, the works). Clients open a connection, send ONE request
// frame and read ONE response frame:
//
//   {"type":"submit", "job": {...}, "coordinator": {...}}
//       -> {"ok":true, "job_id":N}
//   {"type":"status"}
//       -> {"ok":true, "jobs":[{"id","state","done","total"},...]}
//   {"type":"fetch", "id":N}
//       -> {"ok":true, "state":"done", "campaign":{...}, "health":{...}}
//
// Malformed requests get {"ok":false,"error":...} -- the service never
// dies on client input. States: queued -> running -> done | failed |
// interrupted (a SIGTERM'd service checkpoints the running job through the
// coordinator's graceful-shutdown path, so a later submit of the same job
// with resume=true picks up where it stopped).
#pragma once

#include <cstdint>
#include <string>

#include "campaignd/coordinator.hpp"
#include "campaignd/json.hpp"

namespace mts::campaignd {

// -- job / options wire forms (shared by service and CLI) -------------------

json::Value job_to_json(const JobSpec& job);
JobSpec job_from_json(const json::Value& v);
/// `on_event` does not transit; `worker_cmd` does (local trust domain).
json::Value coordinator_options_to_json(const CoordinatorOptions& opt);
CoordinatorOptions coordinator_options_from_json(const json::Value& v);

struct ServiceOptions {
  std::uint16_t port = 0;  ///< 0: ephemeral (Service::port() reports it)
};

class Service {
 public:
  explicit Service(ServiceOptions opt);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  std::uint16_t port() const noexcept;

  /// Accept loop. Serves until stop() (checked every poll tick); with
  /// `max_connections` > 0, returns after that many connections (tests).
  void serve(std::size_t max_connections = 0);

  /// Stops the accept loop and interrupts the running job's coordinator
  /// (graceful: final checkpoint). Callable from any thread or from a
  /// signal-flag poller.
  void stop();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace mts::campaignd
