# Empty compiler generated dependencies file for mts_ctrl.
# This may be replaced when dependencies are built.
