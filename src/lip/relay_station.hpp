// Synchronous relay station (Carloni et al., ICCAD'99; paper Fig. 11b).
//
// A two-register pipeline element inserted to break long wires into
// clock-cycle-length segments. Packets (data + valid bit) flow left to
// right every cycle; back-pressure flows right to left on stop.
//
// Transfer convention (shared by every latency-insensitive component in
// this library): a transfer occurs on a link at a clock edge iff the link's
// stop wire was low during the cycle ending at that edge. Both endpoints
// sample the same wire at the same edge, so packets are never duplicated or
// dropped.
//
// Behaviour: the main register MR forwards one packet per cycle. When the
// right neighbour raises stopIn, the relay station parks the in-flight
// packet in the auxiliary register AUX and raises stopOut; on release it
// first sends MR, then AUX (paper Section 5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "gates/delay_model.hpp"
#include "sim/observe.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"
#include "verify/checkers.hpp"

namespace mts::lip {

class RelayStation {
 public:
  /// All wires are owned by the caller (typically a chain's netlist); the
  /// relay station drives out_data/out_valid/stop_out with clk-to-q delay.
  RelayStation(sim::Simulation& sim, std::string name, sim::Wire& clk,
               sim::Word& in_data, sim::Wire& in_valid, sim::Wire& stop_out,
               sim::Word& out_data, sim::Wire& out_valid, sim::Wire& stop_in,
               const gates::DelayModel& dm);

  RelayStation(const RelayStation&) = delete;
  RelayStation& operator=(const RelayStation&) = delete;

  /// Number of valid packets currently buffered (0..2), for tests.
  unsigned buffered_valid() const noexcept {
    return (mr_valid_ ? 1u : 0u) + (aux_occupied_ && aux_valid_ ? 1u : 0u);
  }
  bool stalled() const noexcept { return aux_occupied_; }

 private:
  void on_edge();

  std::string name_;
  sim::Word& in_data_;
  sim::Wire& in_valid_;
  sim::Wire& stop_out_;
  sim::Word& out_data_;
  sim::Wire& out_valid_;
  sim::Wire& stop_in_;
  sim::Time clk_to_q_;

  std::uint64_t mr_data_ = 0;
  bool mr_valid_ = false;
  std::uint64_t aux_data_ = 0;
  bool aux_valid_ = false;
  bool aux_occupied_ = false;
  /// Non-null only when observability was armed at construction time.
  std::unique_ptr<sim::TransitObserver> obs_;
  /// Non-null only when a verify::Hub was armed at construction time: a
  /// packet scoreboard (no loss / duplication / reorder through MR+AUX).
  std::unique_ptr<verify::MonitorSet> mon_;
};

}  // namespace mts::lip
