#include "ctrl/petri.hpp"

#include <utility>

#include "sim/error.hpp"

namespace mts::ctrl {

void PetriNet::validate(std::size_t num_inputs, std::size_t num_outputs) const {
  if (num_places == 0) throw ConfigError("PetriNet '" + name + "': no places");
  for (unsigned p : initial_marking) {
    if (p >= num_places) {
      throw ConfigError("PetriNet '" + name + "': initial marking out of range");
    }
  }
  for (const PnTransition& t : transitions) {
    const std::size_t limit = t.is_input ? num_inputs : num_outputs;
    if (t.signal >= limit) {
      throw ConfigError("PetriNet '" + name + "': transition '" + t.label +
                        "' signal index out of range");
    }
    for (unsigned p : t.pre) {
      if (p >= num_places) {
        throw ConfigError("PetriNet '" + name + "': pre-place out of range");
      }
    }
    for (unsigned p : t.post) {
      if (p >= num_places) {
        throw ConfigError("PetriNet '" + name + "': post-place out of range");
      }
    }
  }
}

PnMarking pn_initial_marking(const PetriNet& net) {
  PnMarking m(net.num_places, false);
  for (unsigned p : net.initial_marking) m[p] = true;
  return m;
}

bool pn_enabled(const PetriNet& net, const PnMarking& m, const PnTransition& t) {
  (void)net;
  for (unsigned p : t.pre) {
    if (!m[p]) return false;
  }
  return true;
}

PnFire pn_fire(const PetriNet& net, PnMarking& m, const PnTransition& t) {
  (void)net;
  PnFire r;
  for (unsigned p : t.pre) m[p] = false;
  for (unsigned p : t.post) {
    if (m[p]) {
      r.safe = false;
      r.bad_place = p;
      return r;
    }
    m[p] = true;
  }
  return r;
}

PnStep pn_input_step(const PetriNet& net, PnMarking& m, unsigned signal,
                     bool rising) {
  PnStep step;
  for (std::size_t ti = 0; ti < net.transitions.size(); ++ti) {
    const PnTransition& t = net.transitions[ti];
    if (t.is_input && t.signal == signal && t.rising == rising &&
        pn_enabled(net, m, t)) {
      const PnFire f = pn_fire(net, m, t);
      step.fired = true;
      step.transition = ti;
      step.safe = f.safe;
      step.bad_place = f.bad_place;
      return step;
    }
  }
  return step;
}

PnSweep pn_run_outputs(const PetriNet& net, PnMarking& m) {
  PnSweep sweep;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t ti = 0; ti < net.transitions.size(); ++ti) {
      const PnTransition& t = net.transitions[ti];
      if (!t.is_input && pn_enabled(net, m, t)) {
        const PnFire f = pn_fire(net, m, t);
        if (!f.safe) {
          sweep.safe = false;
          sweep.bad_transition = ti;
          sweep.bad_place = f.bad_place;
          return sweep;
        }
        sweep.fired.push_back(ti);
        progressed = true;
      }
    }
  }
  return sweep;
}

PetriEngine::PetriEngine(sim::Simulation& sim, std::string instance,
                         const PetriNet& net, std::vector<sim::Wire*> inputs,
                         std::vector<sim::Wire*> outputs, sim::Time output_delay)
    : sim_(sim),
      instance_(std::move(instance)),
      net_(net),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      output_delay_(output_delay) {
  net_.validate(inputs_.size(), outputs_.size());
  marking_ = pn_initial_marking(net_);
  for (unsigned i = 0; i < inputs_.size(); ++i) {
    MTS_ASSERT(inputs_[i] != nullptr, "null input wire");
    inputs_[i]->on_change([this, i](bool, bool now) { on_input_edge(i, now); });
  }
  sim_.sched().after(0, [this] { run_output_transitions(); });
}

void PetriEngine::throw_unsafe(const PnTransition& t, unsigned place) const {
  throw SimulationError("PetriEngine '" + instance_ + "': firing '" + t.label +
                        "' violates 1-safety at place " + std::to_string(place));
}

void PetriEngine::run_output_transitions() {
  const PnSweep sweep = pn_run_outputs(net_, marking_);
  for (std::size_t ti : sweep.fired) {
    const PnTransition& t = net_.transitions[ti];
    ++firings_;
    outputs_[t.signal]->write(t.rising, output_delay_, sim::DelayKind::kInertial);
  }
  if (!sweep.safe) {
    throw_unsafe(net_.transitions[sweep.bad_transition], sweep.bad_place);
  }
}

void PetriEngine::on_input_edge(unsigned signal, bool rising) {
  const PnStep step = pn_input_step(net_, marking_, signal, rising);
  if (step.fired) {
    if (!step.safe) {
      throw_unsafe(net_.transitions[step.transition], step.bad_place);
    }
    ++firings_;
    run_output_transitions();
    return;
  }
  sim_.report().add(sim_.now(), sim::Severity::kError, "pn-illegal-input",
                    instance_ + ": unexpected edge on input " +
                        std::to_string(signal) + (rising ? "+" : "-"));
}

}  // namespace mts::ctrl
