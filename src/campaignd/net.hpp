// Thin POSIX TCP wrappers for campaignd: loopback listeners on ephemeral
// ports, blocking connects with a deadline, and whole-buffer send/recv.
//
// Everything campaignd needs from the network fits in a handful of calls;
// wrapping them keeps the coordinator/worker logic free of errno plumbing
// and gives RAII ownership of descriptors (a coordinator juggling a fleet
// of sockets must never leak one across a retry path). All functions throw
// NetError on failure; EINTR is retried internally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace mts::campaignd {

class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& msg)
      : std::runtime_error("net: " + msg) {}
};

/// RAII file descriptor (sockets here, but any fd works). Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Closes the descriptor (idempotent).
  void reset() noexcept;
  /// Releases ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 (the default) picks an
/// ephemeral port; port() reports the bound one.
struct Listener {
  Fd fd;
  std::uint16_t port = 0;
};

/// Binds + listens on 127.0.0.1:`port` (0: ephemeral).
Listener listen_local(std::uint16_t port = 0, int backlog = 16);

/// Blocking accept; throws on error (callers poll() first, so a blocking
/// accept here never actually blocks).
Fd accept_conn(const Fd& listener);

/// Connects to 127.0.0.1:`port`, retrying for up to `timeout_ms` while the
/// listener is not yet up (worker processes race the coordinator's accept
/// loop at spawn).
Fd connect_local(std::uint16_t port, int timeout_ms = 5000);

/// Sends the whole buffer (retrying partial writes); throws NetError on a
/// closed peer. SIGPIPE is suppressed (MSG_NOSIGNAL) -- a dying worker must
/// surface as an error code, not kill the coordinator.
void send_all(const Fd& fd, const std::string& buf);

/// Reads up to `cap` bytes; returns 0 at orderly EOF. Throws on error.
std::size_t recv_some(const Fd& fd, char* buf, std::size_t cap);

}  // namespace mts::campaignd
