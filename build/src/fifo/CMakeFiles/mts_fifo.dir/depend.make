# Empty dependencies file for mts_fifo.
# This may be replaced when dependencies are built.
