# Empty dependencies file for bench_relay_chain.
# This may be replaced when dependencies are built.
