// Checkpoint file: atomic write, exact reload, and rejection of torn,
// foreign or malformed files.
#include "campaignd/checkpoint.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "campaignd/json.hpp"

namespace campaignd = mts::campaignd;
namespace json = mts::campaignd::json;
using campaignd::Checkpoint;
using campaignd::CheckpointError;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "mts_ckpt_" + name + ".json";
}

json::Value run_record(std::size_t index) {
  json::Value result = json::Value::object();
  result.set("index", json::Value::number_size(index));
  result.set("seed", json::Value::number_u64(0x123456789abcdef0ull + index));
  result.set("ok", json::Value(true));
  json::Value rec = json::Value::object();
  rec.set("result", std::move(result));
  return rec;
}

Checkpoint sample_checkpoint() {
  Checkpoint cp;
  cp.configs = 2;
  cp.reps = 3;
  cp.digest = "00deadbeef001122";
  cp.complete = false;
  // Completion order deliberately != index order; load must preserve it
  // (the fold re-sorts, the file does not).
  cp.runs.push_back(run_record(4));
  cp.runs.push_back(run_record(0));
  cp.runs.push_back(run_record(5));
  return cp;
}

bool file_exists(const std::string& p) {
  struct stat st{};
  return ::stat(p.c_str(), &st) == 0;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

}  // namespace

TEST(CampaigndCheckpoint, RoundTrip) {
  const std::string path = temp_path("roundtrip");
  const Checkpoint cp = sample_checkpoint();
  campaignd::write_checkpoint(path, cp);

  const Checkpoint back = campaignd::load_checkpoint(path, cp.digest);
  EXPECT_EQ(back.configs, cp.configs);
  EXPECT_EQ(back.reps, cp.reps);
  EXPECT_EQ(back.digest, cp.digest);
  EXPECT_EQ(back.complete, cp.complete);
  ASSERT_EQ(back.runs.size(), cp.runs.size());
  for (std::size_t i = 0; i < cp.runs.size(); ++i) {
    EXPECT_EQ(back.runs[i].dump(), cp.runs[i].dump());
  }
  EXPECT_EQ(campaignd::record_run_index(back.runs[0]), 4u);
  std::remove(path.c_str());
}

TEST(CampaigndCheckpoint, CompleteFlagRoundTrips) {
  const std::string path = temp_path("complete");
  Checkpoint cp = sample_checkpoint();
  cp.complete = true;
  campaignd::write_checkpoint(path, cp);
  EXPECT_TRUE(campaignd::load_checkpoint(path, cp.digest).complete);
  std::remove(path.c_str());
}

TEST(CampaigndCheckpoint, WriteIsAtomicNoTmpResidue) {
  const std::string path = temp_path("atomic");
  campaignd::write_checkpoint(path, sample_checkpoint());
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // Overwrite in place (the periodic checkpoint path).
  Checkpoint cp2 = sample_checkpoint();
  cp2.runs.push_back(run_record(1));
  campaignd::write_checkpoint(path, cp2);
  EXPECT_EQ(campaignd::load_checkpoint(path, cp2.digest).runs.size(), 4u);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CampaigndCheckpoint, DigestMismatchRejected) {
  const std::string path = temp_path("digest");
  campaignd::write_checkpoint(path, sample_checkpoint());
  EXPECT_THROW(campaignd::load_checkpoint(path, "ffffffffffffffff"),
               CheckpointError);
  // Empty expectation skips the compatibility gate (status tooling).
  EXPECT_NO_THROW(campaignd::load_checkpoint(path, ""));
  std::remove(path.c_str());
}

TEST(CampaigndCheckpoint, MissingFileRejected) {
  EXPECT_THROW(campaignd::load_checkpoint(temp_path("nonexistent-zz"), ""),
               CheckpointError);
}

TEST(CampaigndCheckpoint, ForeignOrCorruptFilesRejected) {
  const std::string path = temp_path("corrupt");
  const Checkpoint cp = sample_checkpoint();

  // Not JSON at all (a torn write can't produce this -- rename is atomic --
  // but a user pointing --resume at the wrong file can).
  write_text(path, "not json {{{");
  EXPECT_THROW(campaignd::load_checkpoint(path, ""), CheckpointError);

  // Valid JSON, wrong magic.
  write_text(path, "{\"magic\":\"something-else\",\"version\":1}");
  EXPECT_THROW(campaignd::load_checkpoint(path, ""), CheckpointError);

  // Right magic, unknown version.
  campaignd::write_checkpoint(path, cp);
  {
    json::Value doc = json::parse(slurp(path));
    doc.set("version", json::Value::number_i64(99));
    write_text(path, doc.dump());
  }
  EXPECT_THROW(campaignd::load_checkpoint(path, ""), CheckpointError);

  // Run index outside the declared matrix.
  campaignd::write_checkpoint(path, cp);
  {
    json::Value doc = json::parse(slurp(path));
    json::Value runs = doc.at("runs");
    runs.push(run_record(6));  // configs*reps == 6 -> max index 5
    doc.set("runs", std::move(runs));
    write_text(path, doc.dump());
  }
  EXPECT_THROW(campaignd::load_checkpoint(path, ""), CheckpointError);

  // Record without result.index.
  campaignd::write_checkpoint(path, cp);
  {
    json::Value doc = json::parse(slurp(path));
    json::Value runs = doc.at("runs");
    runs.push(json::Value::object());
    doc.set("runs", std::move(runs));
    write_text(path, doc.dump());
  }
  EXPECT_THROW(campaignd::load_checkpoint(path, ""), CheckpointError);

  std::remove(path.c_str());
}

TEST(CampaigndCheckpoint, RecordRunIndexValidates) {
  EXPECT_EQ(campaignd::record_run_index(run_record(7)), 7u);
  EXPECT_THROW(campaignd::record_run_index(json::Value::object()),
               CheckpointError);
  EXPECT_THROW(campaignd::record_run_index(json::parse("[1]")),
               CheckpointError);
}
