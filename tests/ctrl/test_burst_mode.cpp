#include "ctrl/burst_mode.hpp"

#include <gtest/gtest.h>

#include "sim/error.hpp"
#include "sim/simulation.hpp"

namespace mts::ctrl {
namespace {

// A two-input toggle-ish machine used to exercise the interpreter:
//   S0 --{a+,b+} / x+--> S1 --{a-} / x---> S0
BmSpec two_input_spec() {
  BmSpec s;
  s.name = "test";
  s.num_states = 2;
  s.input_names = {"a", "b"};
  s.output_names = {"x"};
  s.transitions = {
      {0, {{0, true}, {1, true}}, {{0, true}}, 1},
      {1, {{0, false}}, {{0, false}}, 0},
  };
  return s;
}

struct Fixture {
  sim::Simulation sim;
  sim::Wire a{sim, "a"};
  sim::Wire b{sim, "b"};
  sim::Wire x{sim, "x"};
  void settle() { sim.run_until(sim.now() + 1000); }
};

TEST(BurstMode, FiresWhenFullBurstArrives) {
  Fixture f;
  const BmSpec spec = two_input_spec();
  BurstModeMachine m(f.sim, "m", spec, {&f.a, &f.b}, {&f.x}, 50, 0);

  f.a.set(true);
  f.settle();
  EXPECT_EQ(m.state(), 0u);  // partial burst: no firing
  EXPECT_FALSE(f.x.read());

  f.b.set(true);
  f.settle();
  EXPECT_EQ(m.state(), 1u);
  EXPECT_TRUE(f.x.read());
  EXPECT_EQ(m.firings(), 1u);
}

TEST(BurstMode, BurstEdgesArriveInAnyOrder) {
  Fixture f;
  const BmSpec spec = two_input_spec();
  BurstModeMachine m(f.sim, "m", spec, {&f.a, &f.b}, {&f.x}, 50, 0);
  f.b.set(true);
  f.settle();
  EXPECT_EQ(m.state(), 0u);
  f.a.set(true);
  f.settle();
  EXPECT_EQ(m.state(), 1u);
}

TEST(BurstMode, CompletesRoundTrip) {
  Fixture f;
  const BmSpec spec = two_input_spec();
  BurstModeMachine m(f.sim, "m", spec, {&f.a, &f.b}, {&f.x}, 50, 0);
  f.a.set(true);
  f.b.set(true);
  f.settle();
  f.a.set(false);
  f.settle();
  EXPECT_EQ(m.state(), 0u);
  EXPECT_FALSE(f.x.read());
  EXPECT_EQ(m.firings(), 2u);
}

TEST(BurstMode, IllegalEdgeReported) {
  Fixture f;
  const BmSpec spec = two_input_spec();
  BurstModeMachine m(f.sim, "m", spec, {&f.a, &f.b}, {&f.x}, 50, 0);
  // b- in S0 belongs to no burst.
  f.b.set(true);
  f.settle();
  f.b.set(false);
  f.settle();
  EXPECT_GE(f.sim.report().count("bm-illegal-input"), 1u);
}

TEST(BurstMode, InitialStateSelectable) {
  Fixture f;
  const BmSpec spec = two_input_spec();
  BurstModeMachine m(f.sim, "m", spec, {&f.a, &f.b}, {&f.x}, 50, 1);
  EXPECT_EQ(m.state(), 1u);
  f.a.set(true);  // a+ is not expected in S1 (only a-)
  f.settle();
  EXPECT_EQ(m.state(), 1u);
}

TEST(BmSpecValidate, RejectsBadSpecs) {
  BmSpec s = two_input_spec();
  s.transitions[0].to = 9;
  EXPECT_THROW(s.validate(), ConfigError);

  BmSpec empty_burst = two_input_spec();
  empty_burst.transitions[0].in_burst.clear();
  EXPECT_THROW(empty_burst.validate(), ConfigError);

  BmSpec bad_signal = two_input_spec();
  bad_signal.transitions[0].in_burst[0].signal = 5;
  EXPECT_THROW(bad_signal.validate(), ConfigError);

  // Ambiguity: {a+} subset of {a+, b+} from the same state.
  BmSpec ambiguous = two_input_spec();
  ambiguous.transitions.push_back({0, {{0, true}}, {}, 1});
  EXPECT_THROW(ambiguous.validate(), ConfigError);
}

TEST(BurstMode, WireCountMismatchRejected) {
  Fixture f;
  const BmSpec spec = two_input_spec();
  EXPECT_THROW(
      BurstModeMachine(f.sim, "m", spec, {&f.a}, {&f.x}, 50, 0),
      ConfigError);
}

}  // namespace
}  // namespace mts::ctrl
