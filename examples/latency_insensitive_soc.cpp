// Latency-insensitive SoC link (the paper's Fig. 14, end to end): an
// asynchronous sensor-fusion block on one corner of the die streams packets
// to a synchronous display pipeline on the other corner. The wire is far
// too long for one clock cycle, so it is segmented:
//
//   async producer --[3 micropipeline ARS]--> ASRS --[5 SRS @ clk]--> sink
//
// Demonstrates:
//   - the paper's headline combination: mixed async/sync interfaces AND
//     multi-cycle interconnect, solved together,
//   - tolerance to downstream stalls (the sink drops its readiness 20% of
//     cycles; stop back-pressure ripples through the whole chain with no
//     packet loss),
//   - void packets: when the producer pauses, invalid packets flow and the
//     sink simply sees valid_out low.
//
//   $ ./example_latency_insensitive_soc
#include <cstdio>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "lip/lip.hpp"
#include "sync/clock.hpp"

int main() {
  using namespace mts;
  using sim::Time;

  sim::Simulation sim(11);

  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 16;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  const Time clk_period = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sync::Clock clk(sim, "clk_display", {clk_period, 4 * clk_period, 0.5, 0});

  // Fig. 14 topology: 3 asynchronous relay stations, the ASRS, 5
  // synchronous relay stations.
  lip::AsyncSyncLink link(sim, "link", cfg, clk.out(), /*ars=*/3, /*srs=*/5);

  bfm::Scoreboard sb(sim, "sb");

  // Bursty asynchronous producer: 24 packets back to back, then idle.
  bfm::AsyncPutDriver producer(sim, "sensor", link.put_req(), link.put_ack(),
                               link.put_data(), cfg.dm, 0, 0xFFFF, &sb);
  // Toggle the producer off/on every 150 display cycles (bursty traffic).
  auto bursts = std::make_shared<std::uint64_t>(0);
  auto toggle = std::make_shared<std::function<void()>>();
  *toggle = [&sim, &producer, bursts, toggle, clk_period] {
    const bool on = ((*bursts)++ % 2) == 1;
    producer.set_enabled(on);
    if (on) producer.issue_one();
    sim.sched().after(150 * clk_period, [toggle] { (*toggle)(); });
  };
  sim.sched().after(300 * clk_period, [toggle] { (*toggle)(); });

  // Display pipeline: consumes valid packets, stalls 20% of cycles.
  bfm::RsSink display(sim, "display", clk.out(), link.data_out(),
                      link.valid_out(), link.stop_in(), cfg.dm, 0.2, sb);

  const unsigned horizon_cycles = 3000;
  sim.run_until(4 * clk_period + horizon_cycles * clk_period);

  std::printf("Fig. 14 latency-insensitive link: async sensor -> 3 ARS -> "
              "ASRS -> 5 SRS -> display @ %.0f MHz\n",
              sim::period_to_mhz(clk_period));
  std::printf("  packets sent       : %llu\n",
              static_cast<unsigned long long>(producer.completed()));
  std::printf("  packets displayed  : %llu\n",
              static_cast<unsigned long long>(display.received_valid()));
  std::printf("  in flight at end   : %llu\n",
              static_cast<unsigned long long>(sb.in_flight()));
  std::printf("  order violations   : %llu\n",
              static_cast<unsigned long long>(sb.errors()));
  const bool ok = sb.errors() == 0 && display.received_valid() > 500 &&
                  sb.in_flight() < 32;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
