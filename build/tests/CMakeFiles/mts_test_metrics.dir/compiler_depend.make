# Empty compiler generated dependencies file for mts_test_metrics.
# This may be replaced when dependencies are built.
