// Determinism guarantees: identical seeds must give bit-identical runs
// (the property that makes every experiment in EXPERIMENTS.md
// regenerable), and different seeds must actually vary the stochastic
// elements.
#include <gtest/gtest.h>

#include "fifo/interface_sides.hpp"
#include "metrics/experiments.hpp"

namespace mts {
namespace {

fifo::FifoConfig cfg_of(unsigned capacity) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = 8;
  return cfg;
}

TEST(Determinism, IdenticalSeedsGiveIdenticalValidationRuns) {
  const fifo::FifoConfig cfg = cfg_of(8);
  const sim::Time pp = fifo::SyncPutSide::min_period(cfg);
  const sim::Time gp = fifo::SyncGetSide::min_period(cfg);
  const auto a = metrics::validate_mixed_clock(cfg, pp, gp, 400, 7);
  const auto b = metrics::validate_mixed_clock(cfg, pp, gp, 400, 7);
  EXPECT_EQ(a.enqueued, b.enqueued);
  EXPECT_EQ(a.dequeued, b.dequeued);
  EXPECT_EQ(a.timing_violations, b.timing_violations);
  EXPECT_EQ(a.scoreboard_errors, b.scoreboard_errors);
}

TEST(Determinism, StochasticModeIsSeedReproducible) {
  fifo::FifoConfig cfg = cfg_of(8);
  cfg.sync.mode = sync::MetaMode::kStochastic;
  const sim::Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
  const sim::Time gp = fifo::SyncGetSide::min_period(cfg) * 4 / 3;
  const auto a = metrics::validate_mixed_clock(cfg, pp, gp, 400, 99);
  const auto b = metrics::validate_mixed_clock(cfg, pp, gp, 400, 99);
  EXPECT_EQ(a.enqueued, b.enqueued);
  EXPECT_EQ(a.dequeued, b.dequeued);
}

TEST(Determinism, ThroughputRowsAreStableAcrossRepeats) {
  const auto a = metrics::throughput_mixed_clock(cfg_of(4), 300);
  const auto b = metrics::throughput_mixed_clock(cfg_of(4), 300);
  EXPECT_DOUBLE_EQ(a.put, b.put);
  EXPECT_DOUBLE_EQ(a.get, b.get);
  EXPECT_EQ(a.validated, b.validated);

  const auto c = metrics::throughput_async_sync(cfg_of(4), 300);
  const auto d = metrics::throughput_async_sync(cfg_of(4), 300);
  EXPECT_DOUBLE_EQ(c.put, d.put);
}

TEST(Determinism, LatencyRowsAreStableAcrossRepeats) {
  const auto a = metrics::latency_mixed_clock(cfg_of(4), 6);
  const auto b = metrics::latency_mixed_clock(cfg_of(4), 6);
  EXPECT_DOUBLE_EQ(a.min_ns, b.min_ns);
  EXPECT_DOUBLE_EQ(a.max_ns, b.max_ns);
}

}  // namespace
}  // namespace mts
