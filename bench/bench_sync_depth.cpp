// Robustness ablation: synchronizer depth vs metastability exposure
// (Sections 3.2 and 7: "the designs can be made arbitrarily robust with
// regard to metastability ... for arbitrary robustness, the designer might
// use more than two [latches]").
//
// Part 1 (analytic): MTBF of the full/empty synchronizers as a function of
// depth at the mixed-clock FIFO's operating point.
//
// Part 2 (simulated): stochastic metastability soak -- front-stage
// metastability events absorbed, chain escapes, and end-to-end correctness
// per depth.
//
// The 4-depth x 3-seed soak matrix runs through a sim::Campaign worker
// pool; --jobs N sets the worker count (default: one per hardware thread).
//
// Usage: bench_sync_depth [--csv] [--cycles N] [--jobs N]
#include <array>
#include <cstdio>
#include <cstring>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "metrics/table.hpp"
#include "sim/campaign.hpp"
#include "sync/clock.hpp"
#include "sync/mtbf.hpp"

namespace {

using namespace mts;
using sim::Time;

struct SoakResult {
  std::uint64_t delivered = 0;
  std::uint64_t corruptions = 0;
};

SoakResult soak(sim::Simulation& sim, unsigned depth, unsigned cycles,
                std::uint64_t seed) {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.sync.depth = depth;
  cfg.sync.mode = sync::MetaMode::kStochastic;

  // Reseed with the cell's own seed so results match the historical
  // standalone-Simulation runs exactly, on any worker count.
  sim.reset(seed);
  const Time pp = fifo::SyncPutSide::min_period(cfg) * 4 / 3;
  const Time gp = static_cast<Time>(
      static_cast<double>(fifo::SyncGetSide::min_period(cfg)) * 1.377);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 577, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});

  sim.run_until(4 * pp + static_cast<Time>(cycles) * pp);
  return SoakResult{gm.dequeued(), sb.errors() + dut.overflow_count() +
                                       dut.underflow_count()};
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  unsigned cycles = 4000;
  unsigned jobs = 0;  // 0: one worker per hardware thread
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = static_cast<unsigned>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }

  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  const Time get_p = fifo::SyncGetSide::min_period(cfg);

  std::printf("Analytic MTBF of the empty-detector synchronizer (clock "
              "period %llu ps, async toggle rate 100 MHz):\n\n",
              static_cast<unsigned long long>(get_p));
  metrics::Table t1({"depth", "stage slack (ps)", "MTBF"});
  for (unsigned depth : {1u, 2u, 3u, 4u}) {
    sync::MtbfParams p;
    p.depth = depth;
    p.clock_period = get_p;
    p.data_rate_hz = 100e6;
    p.dm = cfg.dm;
    const double mtbf = sync::mtbf_seconds(p);
    std::string human;
    if (mtbf > 3.15e9) {
      human = metrics::fmt(mtbf / 3.15e7, 0) + " years";
    } else if (mtbf > 3.15e7) {
      human = metrics::fmt(mtbf / 3.15e7, 1) + " years";
    } else if (mtbf > 3600) {
      human = metrics::fmt(mtbf / 3600, 1) + " hours";
    } else {
      human = metrics::fmt(mtbf, 3) + " s";
    }
    t1.add_row({std::to_string(depth),
                std::to_string(sync::stage_slack(p)), human});
  }
  std::fputs(csv ? t1.to_csv().c_str() : t1.to_string().c_str(), stdout);

  std::printf("\nThroughput cost of robustness (deeper synchronizers widen "
              "the anticipating detectors -- DESIGN.md finding 3):\n\n");
  metrics::Table t_cost({"depth", "put MHz", "get MHz", "usable cells"});
  for (unsigned depth : {1u, 2u, 3u, 4u}) {
    fifo::FifoConfig c;
    c.capacity = 8;
    c.width = 8;
    c.sync.depth = depth;
    t_cost.add_row(
        {std::to_string(depth),
         metrics::fmt(sim::period_to_mhz(fifo::SyncPutSide::min_period(c)), 0),
         metrics::fmt(sim::period_to_mhz(fifo::SyncGetSide::min_period(c)), 0),
         std::to_string(c.capacity - (fifo::anticipation_window(depth) - 1))});
  }
  std::fputs(csv ? t_cost.to_csv().c_str() : t_cost.to_string().c_str(),
             stdout);

  std::printf("\nStochastic soak (%u put cycles, exponential settling, "
              "saturated traffic, 3 seeds):\n\n", cycles);
  // 4 depths x 3 seeds as one campaign matrix: config = depth-1, rep =
  // seed index. Per-cell results land in distinct slots; the per-depth
  // totals are summed after the pool joins, so the table is identical for
  // any worker count.
  static constexpr std::array<std::uint64_t, 3> kSeeds{11, 22, 33};
  std::array<SoakResult, 4 * kSeeds.size()> cells{};
  sim::CampaignOptions opt;
  opt.workers = jobs;
  opt.seed = 11;
  sim::Campaign campaign(4, kSeeds.size(), opt);
  campaign.run([&cells, cycles](sim::CampaignContext& ctx) {
    const unsigned depth = static_cast<unsigned>(ctx.spec().config) + 1;
    cells[ctx.spec().index] =
        soak(ctx.sim(), depth, cycles, kSeeds[ctx.spec().rep]);
  });

  metrics::Table t2({"depth", "delivered", "corruptions"});
  for (unsigned depth : {1u, 2u, 3u, 4u}) {
    SoakResult total;
    for (std::size_t rep = 0; rep < kSeeds.size(); ++rep) {
      const SoakResult& r = cells[(depth - 1) * kSeeds.size() + rep];
      total.delivered += r.delivered;
      total.corruptions += r.corruptions;
    }
    t2.add_row({std::to_string(depth), std::to_string(total.delivered),
                std::to_string(total.corruptions)});
  }
  std::fputs(csv ? t2.to_csv().c_str() : t2.to_string().c_str(), stdout);
  std::printf("\nsoak campaign: %u workers, %.1f runs/sec\n",
              campaign.workers(), campaign.runs_per_sec());
  std::printf("\nNote: depth >= 2 (the paper's design point) is expected to "
              "stay clean; the analytic table shows why each extra stage "
              "multiplies MTBF exponentially.\n");
  return 0;
}
