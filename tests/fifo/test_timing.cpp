// Timing validation: the static critical-path analysis (which generates
// Table 1's throughput numbers) must agree with dynamic behaviour --
// clean at the reported minimum period, failing when clocked meaningfully
// faster.
#include <gtest/gtest.h>

#include "fifo/interface_sides.hpp"
#include "metrics/experiments.hpp"

namespace mts::fifo {
namespace {

FifoConfig cfg_of(unsigned capacity, unsigned width) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

TEST(Timing, MixedClockCleanAtStaticMinimum) {
  const FifoConfig cfg = cfg_of(4, 8);
  const auto v = metrics::validate_mixed_clock(
      cfg, SyncPutSide::min_period(cfg), SyncGetSide::min_period(cfg), 800);
  EXPECT_TRUE(v.clean()) << "violations=" << v.timing_violations
                         << " over=" << v.overflows << " under=" << v.underflows
                         << " sb=" << v.scoreboard_errors;
  EXPECT_GT(v.enqueued, 200u);
  EXPECT_GT(v.dequeued, 200u);
}

TEST(Timing, MixedClockCleanAtStaticMinimumLarge) {
  const FifoConfig cfg = cfg_of(16, 16);
  const auto v = metrics::validate_mixed_clock(
      cfg, SyncPutSide::min_period(cfg), SyncGetSide::min_period(cfg), 600);
  EXPECT_TRUE(v.clean());
  EXPECT_GT(v.dequeued, 150u);
}

TEST(Timing, MixedClockFailsWellBelowMinimumGetPeriod) {
  // Clock the get interface 25% beyond its critical path while the put
  // interface saturates: the empty-detector loop misses edges and the
  // design underflows or corrupts data.
  const FifoConfig cfg = cfg_of(4, 8);
  const auto v = metrics::validate_mixed_clock(
      cfg, SyncPutSide::min_period(cfg),
      SyncGetSide::min_period(cfg) * 3 / 4, 800);
  EXPECT_FALSE(v.clean());
}

TEST(Timing, MixedClockFailsWellBelowMinimumPutPeriod) {
  const FifoConfig cfg = cfg_of(4, 8);
  // Consumer much slower: the FIFO rides the full boundary, where a late
  // full flag manifests as overwrites.
  const auto v = metrics::validate_mixed_clock(
      cfg, SyncPutSide::min_period(cfg) * 3 / 4,
      SyncGetSide::min_period(cfg) * 3, 800);
  EXPECT_FALSE(v.clean());
}

TEST(Timing, AsyncSyncCleanAtStaticMinimum) {
  const FifoConfig cfg = cfg_of(4, 8);
  const auto v = metrics::validate_async_sync(
      cfg, SyncGetSide::min_period(cfg), 0, 800);
  EXPECT_TRUE(v.clean()) << "violations=" << v.timing_violations
                         << " over=" << v.overflows << " under=" << v.underflows
                         << " sb=" << v.scoreboard_errors;
  EXPECT_GT(v.dequeued, 100u);
}

TEST(Timing, RelayStationVariantsCleanAtStaticMinimum) {
  FifoConfig cfg = cfg_of(4, 8);
  cfg.controller = ControllerKind::kRelayStation;
  const auto mc = metrics::validate_mixed_clock(
      cfg, SyncPutSide::min_period(cfg), SyncGetSide::min_period(cfg), 800);
  EXPECT_TRUE(mc.clean());
  EXPECT_GT(mc.dequeued, 200u);

  const auto as = metrics::validate_async_sync(
      cfg, SyncGetSide::min_period(cfg), 0, 800);
  EXPECT_TRUE(as.clean());
  EXPECT_GT(as.dequeued, 100u);
}

TEST(Timing, RelayStationPutFasterThanFifoPut) {
  // Table 1: the MCRS put interface (inverter controller) beats the FIFO
  // put interface (AND controller); the get sides differ by at most one
  // gate (the paper measures the MCRS get ~2% slower; our model lands
  // within ~2% in the other direction -- see EXPERIMENTS.md).
  FifoConfig fifo_cfg = cfg_of(8, 8);
  FifoConfig rs_cfg = fifo_cfg;
  rs_cfg.controller = ControllerKind::kRelayStation;
  EXPECT_LT(SyncPutSide::min_period(rs_cfg), SyncPutSide::min_period(fifo_cfg));
  const double fifo_get = static_cast<double>(SyncGetSide::min_period(fifo_cfg));
  const double rs_get = static_cast<double>(SyncGetSide::min_period(rs_cfg));
  EXPECT_NEAR(rs_get, fifo_get, 0.05 * fifo_get);
}

TEST(Timing, Table1RelationshipsAreProcessInvariant) {
  // A uniformly shrunk technology must preserve every Table 1 ordering;
  // only absolute rates change.
  for (double factor : {0.6, 1.5}) {
    FifoConfig cfg = cfg_of(8, 8);
    cfg.dm = gates::DelayModel::hp06().scaled(factor);
    FifoConfig rs = cfg;
    rs.controller = ControllerKind::kRelayStation;
    FifoConfig big = cfg;
    big.capacity = 16;

    EXPECT_LT(SyncPutSide::min_period(cfg), SyncGetSide::min_period(cfg));
    EXPECT_LT(SyncPutSide::min_period(rs), SyncPutSide::min_period(cfg));
    EXPECT_LT(SyncPutSide::min_period(cfg), SyncPutSide::min_period(big));
    // Faster process => shorter periods overall.
    if (factor < 1.0) {
      EXPECT_LT(SyncPutSide::min_period(cfg),
                SyncPutSide::min_period(cfg_of(8, 8)));
    } else {
      EXPECT_GT(SyncPutSide::min_period(cfg),
                SyncPutSide::min_period(cfg_of(8, 8)));
    }
  }
}

TEST(Timing, ScaledProcessStillValidatesDynamically) {
  FifoConfig cfg = cfg_of(4, 8);
  cfg.dm = gates::DelayModel::hp06().scaled(0.6);
  const auto v = metrics::validate_mixed_clock(
      cfg, SyncPutSide::min_period(cfg), SyncGetSide::min_period(cfg), 600);
  EXPECT_TRUE(v.clean());
  EXPECT_GT(v.dequeued, 150u);
}

TEST(Timing, BreakdownSumsToMinPeriod) {
  for (unsigned cap : {4u, 8u, 16u}) {
    for (unsigned width : {8u, 16u}) {
      for (bool rs : {false, true}) {
        FifoConfig cfg = cfg_of(cap, width);
        cfg.controller =
            rs ? ControllerKind::kRelayStation : ControllerKind::kFifo;
        EXPECT_EQ(path_total(SyncPutSide::describe_min_period(cfg)),
                  SyncPutSide::min_period(cfg));
        EXPECT_EQ(path_total(SyncGetSide::describe_min_period(cfg)),
                  SyncGetSide::min_period(cfg));
      }
    }
  }
}

TEST(Timing, BreakdownElementsAreNamedAndNonTrivial) {
  const auto put_path = SyncPutSide::describe_min_period(cfg_of(8, 8));
  ASSERT_GE(put_path.size(), 5u);
  for (const PathElement& e : put_path) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_GT(e.delay, 0u);
  }
  // The detector and the token/controller leg are the two big terms.
  const auto get_path = SyncGetSide::describe_min_period(cfg_of(8, 8));
  bool has_detector = false;
  for (const PathElement& e : get_path) {
    has_detector = has_detector || e.name.find("detector") != std::string::npos;
  }
  EXPECT_TRUE(has_detector);
}

TEST(Timing, PeriodsScaleWithCapacityAndWidth) {
  for (bool rs : {false, true}) {
    FifoConfig base = cfg_of(4, 8);
    base.controller = rs ? ControllerKind::kRelayStation : ControllerKind::kFifo;
    FifoConfig big_cap = base;
    big_cap.capacity = 16;
    FifoConfig big_width = base;
    big_width.width = 16;
    EXPECT_LT(SyncPutSide::min_period(base), SyncPutSide::min_period(big_cap));
    EXPECT_LT(SyncPutSide::min_period(base), SyncPutSide::min_period(big_width));
    EXPECT_LT(SyncGetSide::min_period(base), SyncGetSide::min_period(big_cap));
    EXPECT_LT(SyncGetSide::min_period(base), SyncGetSide::min_period(big_width));
  }
}

}  // namespace
}  // namespace mts::fifo
