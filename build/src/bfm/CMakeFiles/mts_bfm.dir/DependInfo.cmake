
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bfm/async_drivers.cpp" "src/bfm/CMakeFiles/mts_bfm.dir/async_drivers.cpp.o" "gcc" "src/bfm/CMakeFiles/mts_bfm.dir/async_drivers.cpp.o.d"
  "/root/repo/src/bfm/rs_drivers.cpp" "src/bfm/CMakeFiles/mts_bfm.dir/rs_drivers.cpp.o" "gcc" "src/bfm/CMakeFiles/mts_bfm.dir/rs_drivers.cpp.o.d"
  "/root/repo/src/bfm/sync_drivers.cpp" "src/bfm/CMakeFiles/mts_bfm.dir/sync_drivers.cpp.o" "gcc" "src/bfm/CMakeFiles/mts_bfm.dir/sync_drivers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/mts_gates.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
