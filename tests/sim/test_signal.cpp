#include "sim/signal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace mts::sim {
namespace {

TEST(Signal, InitialValue) {
  Simulation sim;
  Wire w(sim, "w", true);
  EXPECT_TRUE(w.read());
  Word d(sim, "d", 42);
  EXPECT_EQ(d.read(), 42u);
}

TEST(Signal, SetNotifiesOnChangeOnly) {
  Simulation sim;
  Wire w(sim, "w");
  int changes = 0;
  w.on_change([&](bool, bool) { ++changes; });
  w.set(false);  // no change
  EXPECT_EQ(changes, 0);
  w.set(true);
  EXPECT_EQ(changes, 1);
  w.set(true);  // no change
  EXPECT_EQ(changes, 1);
}

TEST(Signal, ListenerSeesOldAndNewValues) {
  Simulation sim;
  Word d(sim, "d", 7);
  std::uint64_t seen_old = 0, seen_new = 0;
  d.on_change([&](const std::uint64_t& o, const std::uint64_t& n) {
    seen_old = o;
    seen_new = n;
  });
  d.set(9);
  EXPECT_EQ(seen_old, 7u);
  EXPECT_EQ(seen_new, 9u);
}

TEST(Signal, TransportWritesAllCommitInOrder) {
  Simulation sim;
  Wire w(sim, "w");
  std::vector<bool> history;
  w.on_change([&](bool, bool n) { history.push_back(n); });
  w.write(true, 10, DelayKind::kTransport);
  w.write(false, 20, DelayKind::kTransport);
  w.write(true, 30, DelayKind::kTransport);
  sim.run();
  EXPECT_EQ(history, (std::vector<bool>{true, false, true}));
}

TEST(Signal, InertialWriteCancelsPending) {
  Simulation sim;
  Wire w(sim, "w");
  int changes = 0;
  w.on_change([&](bool, bool) { ++changes; });
  w.write(true, 100, DelayKind::kInertial);
  // Before the first commits, the driver changes its mind: pulse filtered.
  sim.run_until(50);
  w.write(false, 100, DelayKind::kInertial);
  sim.run();
  EXPECT_EQ(changes, 0);
  EXPECT_FALSE(w.read());
}

TEST(Signal, InertialGlitchFilteredButSteadyValuePasses) {
  Simulation sim;
  Wire w(sim, "w");
  w.write(true, 100, DelayKind::kInertial);
  sim.run();
  EXPECT_TRUE(w.read());
}

TEST(Signal, PendingWritesTracked) {
  Simulation sim;
  Wire w(sim, "w");
  w.write(true, 10, DelayKind::kTransport);
  w.write(true, 20, DelayKind::kTransport);
  EXPECT_EQ(w.pending_writes(), 2u);
  sim.run();
  EXPECT_EQ(w.pending_writes(), 0u);
}

TEST(Signal, EdgeHelpers) {
  Simulation sim;
  Wire w(sim, "w");
  int rises = 0, falls = 0;
  on_rise(w, [&] { ++rises; });
  on_fall(w, [&] { ++falls; });
  w.set(true);
  w.set(false);
  w.set(true);
  EXPECT_EQ(rises, 2);
  EXPECT_EQ(falls, 1);
}

TEST(Signal, ListenersAddedDuringNotificationMissThatEvent) {
  Simulation sim;
  Wire w(sim, "w");
  int second_listener_hits = 0;
  w.on_change([&](bool, bool) {
    w.on_change([&](bool, bool) { ++second_listener_hits; });
  });
  w.set(true);
  EXPECT_EQ(second_listener_hits, 0);
  w.set(false);
  EXPECT_EQ(second_listener_hits, 1);
}

TEST(Signal, NameAndSimulationAccessors) {
  Simulation sim;
  Wire w(sim, "top.sub.w");
  EXPECT_EQ(w.name(), "top.sub.w");
  EXPECT_EQ(&w.simulation(), &sim);
}

TEST(Signal, MemberEdgeListenersFireOnMatchingEdgeOnly) {
  Simulation sim;
  Wire w(sim, "w");
  int rises = 0, falls = 0, changes = 0;
  w.on_rise([&] { ++rises; });
  w.on_fall([&] { ++falls; });
  w.on_change([&](bool, bool) { ++changes; });
  w.set(true);
  w.set(false);
  w.set(true);
  EXPECT_EQ(rises, 2);
  EXPECT_EQ(falls, 1);
  EXPECT_EQ(changes, 3);
}

// Edge and change listeners interleave in registration order within one
// notification.
TEST(Signal, EdgeAndChangeListenersRunInRegistrationOrder) {
  Simulation sim;
  Wire w(sim, "w");
  std::vector<int> order;
  w.on_change([&](bool, bool) { order.push_back(1); });
  w.on_rise([&] { order.push_back(2); });
  w.on_change([&](bool, bool) { order.push_back(3); });
  w.set(true);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Edge listeners registered while a notification is being delivered must
// not observe the in-flight change -- same guarantee as on_change, and the
// registration must not invalidate the listener list mid-dispatch.
TEST(Signal, EdgeListenersAddedDuringNotificationMissThatEvent) {
  Simulation sim;
  Wire w(sim, "w");
  int late_rises = 0;
  w.on_rise([&] { w.on_rise([&] { ++late_rises; }); });
  w.set(true);
  EXPECT_EQ(late_rises, 0);
  w.set(false);
  w.set(true);
  // First rise registered one new listener; the second rise registered
  // another and fired the first.
  EXPECT_EQ(late_rises, 1);
}

// Transaction slots are recycled through the free list: a long sequence of
// write+commit cycles must not grow the pool past the peak number of
// simultaneously outstanding writes.
TEST(Signal, TransactionPoolRecyclesSlots) {
  Simulation sim;
  Wire w(sim, "w");
  bool v = false;
  for (int i = 0; i < 10'000; ++i) {
    v = !v;
    w.write(v, 1, DelayKind::kTransport);
    sim.run();
  }
  EXPECT_LE(w.pool_slots(), 4u);
}

// Regression for the seed's O(n) pending-list erase: with thousands of
// transport writes outstanding, each commit must be O(1), so the whole
// burst commits in time proportional to n, not n^2. Guarded by comparing
// pool growth (which is linear by construction) rather than wall-clock:
// every slot is used exactly once and the sim completes within the default
// run budget.
TEST(Signal, ThousandsOfPendingTransportWritesCommitLinearly) {
  Simulation sim;
  Word w(sim, "w");
  constexpr std::uint64_t kWrites = 20'000;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    w.write(i + 1, static_cast<Time>(i + 1), DelayKind::kTransport);
  }
  EXPECT_EQ(w.pending_writes(), kWrites);
  EXPECT_EQ(w.pool_slots(), kWrites);  // all outstanding at once
  sim.run();
  EXPECT_EQ(w.pending_writes(), 0u);
  EXPECT_EQ(w.read(), kWrites);
  // A second identical burst reuses the recycled slots: no pool growth.
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    w.write(i + 1, static_cast<Time>(i + 1), DelayKind::kTransport);
  }
  EXPECT_EQ(w.pool_slots(), kWrites);
  sim.run();
}

// An inertial write cancels every pending write in O(1) via the generation
// watermark; cancelled transactions still recycle their slots.
TEST(Signal, InertialCancellationRecyclesCancelledSlots) {
  Simulation sim;
  Wire w(sim, "w");
  for (int i = 0; i < 100; ++i) {
    w.write(true, static_cast<Time>(i + 10), DelayKind::kTransport);
  }
  w.write(false, 1, DelayKind::kInertial);  // cancels all 100
  EXPECT_EQ(w.pending_writes(), 1u);
  sim.run();
  EXPECT_FALSE(w.read());
  const std::size_t pool_after_cancel = w.pool_slots();
  // The freed slots satisfy the next burst without new allocations.
  for (int i = 0; i < 100; ++i) {
    w.write(true, static_cast<Time>(i + 10), DelayKind::kTransport);
  }
  EXPECT_EQ(w.pool_slots(), pool_after_cancel);
  sim.run();
}

}  // namespace
}  // namespace mts::sim
