// Property tests for the gate library: trees of any arity/size must equal
// the flat reduction of their inputs for random patterns, and every GateOp
// must match its reference function across random vectors.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "gates/combinational.hpp"
#include "gates/netlist.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {
namespace {

struct TreeParam {
  unsigned leaves;
  unsigned arity;
  bool is_or;
};

class TreeProperty : public ::testing::TestWithParam<TreeParam> {};

TEST_P(TreeProperty, MatchesFlatReductionOnRandomPatterns) {
  const TreeParam p = GetParam();
  sim::Simulation sim(p.leaves * 31 + p.arity);
  Netlist nl(sim, "t");
  const DelayModel dm = DelayModel::hp06();

  std::vector<sim::Wire*> leaves;
  for (unsigned i = 0; i < p.leaves; ++i) {
    leaves.push_back(&nl.wire("l" + std::to_string(i)));
  }
  sim::Wire& root = p.is_or ? make_or_tree(nl, "tree", leaves, dm, p.arity)
                            : make_and_tree(nl, "tree", leaves, dm, p.arity);

  std::mt19937 rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    bool acc = !p.is_or;
    for (sim::Wire* leaf : leaves) {
      const bool v = (rng() & 1u) != 0;
      leaf->set(v);
      acc = p.is_or ? (acc || v) : (acc && v);
    }
    sim.run_until(sim.now() + 20'000);
    EXPECT_EQ(root.read(), acc) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeProperty,
    ::testing::Values(TreeParam{1, 2, true}, TreeParam{2, 2, true},
                      TreeParam{3, 2, true}, TreeParam{7, 2, true},
                      TreeParam{16, 2, true}, TreeParam{4, 4, true},
                      TreeParam{5, 4, true}, TreeParam{16, 4, true},
                      TreeParam{17, 4, true}, TreeParam{3, 2, false},
                      TreeParam{16, 4, false}, TreeParam{9, 3, false}),
    [](const ::testing::TestParamInfo<TreeParam>& info) {
      std::ostringstream os;
      os << (info.param.is_or ? "or" : "and") << info.param.leaves << "a"
         << info.param.arity;
      return os.str();
    });

TEST(TreeDepth, MatchesCeilLog) {
  EXPECT_EQ(tree_depth(1, 2), 0u);
  EXPECT_EQ(tree_depth(2, 2), 1u);
  EXPECT_EQ(tree_depth(3, 2), 2u);
  EXPECT_EQ(tree_depth(8, 2), 3u);
  EXPECT_EQ(tree_depth(9, 2), 4u);
  EXPECT_EQ(tree_depth(4, 4), 1u);
  EXPECT_EQ(tree_depth(5, 4), 2u);
  EXPECT_EQ(tree_depth(16, 4), 2u);
  EXPECT_EQ(tree_depth(17, 4), 3u);
}

class GateOpProperty : public ::testing::TestWithParam<GateOp> {};

TEST_P(GateOpProperty, SimulatedGateMatchesTruthFunction) {
  const GateOp op = GetParam();
  const unsigned fanin = (op == GateOp::kNot || op == GateOp::kBuf) ? 1 : 3;

  sim::Simulation sim(99);
  Netlist nl(sim, "t");
  const DelayModel dm = DelayModel::hp06();
  std::vector<sim::Wire*> ins;
  for (unsigned i = 0; i < fanin; ++i) {
    ins.push_back(&nl.wire("i" + std::to_string(i)));
  }
  sim::Wire& out = make_gate(nl, "g", op, ins, dm);
  const Gate::Func ref = gate_func(op);

  for (unsigned pattern = 0; pattern < (1u << fanin); ++pattern) {
    std::vector<bool> values;
    for (unsigned i = 0; i < fanin; ++i) {
      const bool v = (pattern >> i & 1u) != 0;
      ins[i]->set(v);
      values.push_back(v);
    }
    sim.run_until(sim.now() + 10'000);
    EXPECT_EQ(out.read(), ref(values)) << "pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, GateOpProperty,
    ::testing::Values(GateOp::kNot, GateOp::kBuf, GateOp::kAnd, GateOp::kOr,
                      GateOp::kNand, GateOp::kNor, GateOp::kXor,
                      GateOp::kAndNotLast, GateOp::kOrNotLast),
    [](const ::testing::TestParamInfo<GateOp>& info) {
      switch (info.param) {
        case GateOp::kNot: return std::string("Not");
        case GateOp::kBuf: return std::string("Buf");
        case GateOp::kAnd: return std::string("And");
        case GateOp::kOr: return std::string("Or");
        case GateOp::kNand: return std::string("Nand");
        case GateOp::kNor: return std::string("Nor");
        case GateOp::kXor: return std::string("Xor");
        case GateOp::kAndNotLast: return std::string("AndNotLast");
        case GateOp::kOrNotLast: return std::string("OrNotLast");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace mts::gates
