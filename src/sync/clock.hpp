// Clock generation.
//
// Each synchronous interface of a mixed-timing FIFO is driven by its own
// Clock (CLK_put / CLK_get in the paper), with independent period, phase
// and optional cycle-to-cycle jitter. Phase sweeps of CLK_get against the
// put instant produce the Min/Max latency columns of Table 1.
#pragma once

#include <string>

#include "sim/profiler.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::sync {

struct ClockConfig {
  sim::Time period = 0;   ///< required, > 0
  sim::Time phase = 0;    ///< time of the first rising edge
  double duty = 0.5;      ///< high fraction of the period, in (0, 1)
  sim::Time jitter = 0;   ///< uniform +/- perturbation of each period
};

class Clock {
 public:
  /// Starts toggling immediately; the first rising edge is at `phase`.
  Clock(sim::Simulation& sim, std::string name, const ClockConfig& config);

  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;

  sim::Wire& out() noexcept { return out_; }
  sim::Time period() const noexcept { return config_.period; }

  /// Stops after the current cycle completes; the wire rests low.
  void stop() noexcept { running_ = false; }

  /// Number of rising edges generated so far.
  std::uint64_t edges() const noexcept { return edges_; }

 private:
  void schedule_rise(sim::Time t);

  sim::Simulation& sim_;
  ClockConfig config_;
  sim::Wire out_;
  bool running_ = true;
  std::uint64_t edges_ = 0;
  /// Profiler site for this clock's edge events (0 when no profiler was
  /// armed at construction). Everything scheduled downstream of an edge
  /// inherits it, so the hot-sites table groups work by clock domain.
  sim::KernelProfiler::SiteId site_ = 0;
  /// Set only when a verify::Hub was armed at construction: each generated
  /// period is checked against the configured envelope (nominal +/- the
  /// larger of the configured jitter and the hub's fractional tolerance).
  verify::Hub* mon_ = nullptr;
};

}  // namespace mts::sync
