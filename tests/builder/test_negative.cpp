// The negative path: every malformed graph is rejected by Design::check()
// with a ConfigError that NAMES the offending node and port -- never an
// assert, never undefined behaviour, never a mystery string. Each test
// builds one specific illegal design and pins the diagnostic's substance.
#include <gtest/gtest.h>

#include <string>

#include "builder/design.hpp"
#include "sim/error.hpp"

namespace mts {
namespace {

using builder::Design;
using builder::DomainId;
using builder::LinkOptions;
using builder::NodeId;
using builder::Primitive;

/// Runs `fn`, requires it to throw ConfigError, returns the message.
template <typename Fn>
std::string config_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const ConfigError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ConfigError, nothing thrown";
  return {};
}

void expect_mentions(const std::string& msg,
                     std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    EXPECT_NE(msg.find(n), std::string::npos)
        << "diagnostic should mention '" << n << "', got: " << msg;
  }
}

TEST(BuilderNegative, WidthMismatchWithoutIntegerRatioNamesBothPorts) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  const NodeId a = d.external("alu", {Design::sync_out("res", c, 16)});
  const NodeId b = d.sink("wb", Design::sync_in("in", c, 12));
  d.connect(a, "res", b, "in");
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"alu.res", "wb.in", "16 bits", "12 bits",
                   "no integer gearbox ratio"});
}

TEST(BuilderNegative, DanglingPortIsNamed) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  d.external("dsp", {Design::sync_out("tap", c, 8)});
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"dangling port", "dsp.tap"});
}

TEST(BuilderNegative, DoubleDrivenInputIsNamedWithDriverCount) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  const NodeId s1 = d.source("s1", Design::sync_out("out", c, 8));
  const NodeId s2 = d.source("s2", Design::sync_out("out", c, 8));
  const NodeId k = d.sink("merge", Design::sync_in("in", c, 8));
  d.connect(s1, "out", k, "in");
  d.connect(s2, "out", k, "in");
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"merge.in", "2 drivers", "exactly one"});
}

TEST(BuilderNegative, FannedOutOutputIsRejectedToo) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  const NodeId s = d.source("s", Design::sync_out("out", c, 8));
  const NodeId k1 = d.sink("k1", Design::sync_in("in", c, 8));
  const NodeId k2 = d.sink("k2", Design::sync_in("in", c, 8));
  d.connect(s, "out", k1, "in");
  d.connect(s, "out", k2, "in");
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"s.out", "2 consumers"});
}

TEST(BuilderNegative, SameDomainEdgeCannotRequestCdcPrimitive) {
  Design d;
  const DomainId c = d.domain("core", {1000, 0, 0.5, 0});
  const NodeId s = d.source("s", Design::sync_out("out", c, 8));
  const NodeId k = d.sink("k", Design::sync_in("in", c, 8));
  LinkOptions opt;
  opt.primitive = Primitive::kMixedClockFifo;
  d.connect(s, "out", k, "in", opt, "bad");
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"bad", "domain 'core'",
                   "same-domain edge cannot request the CDC primitive"});
}

TEST(BuilderNegative, SameDomainOnDemandFifoEdgeHasNoPrimitive) {
  Design d;
  const DomainId c = d.domain("core", {1000, 0, 0.5, 0});
  const NodeId a = d.external("a", {Design::sync_out("o", c, 8)});
  const NodeId b = d.external("b", {Design::sync_in("i", c, 8)});
  LinkOptions opt;
  opt.controller = fifo::ControllerKind::kFifo;
  d.connect(a, "o", b, "i", opt);
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"domain 'core'", "no CDC primitive applies"});
}

TEST(BuilderNegative, OnDemandFifoEdgeRejectsLatencyAnnotation) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  const NodeId s = d.source("s", Design::async_out("out", 8));
  const NodeId k = d.sink("k", Design::sync_in("in", c, 8));
  LinkOptions opt;
  opt.controller = fifo::ControllerKind::kFifo;
  opt.latency_left = 2;
  d.connect(s, "out", k, "in", opt);
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"relay-station latency requires"});
}

TEST(BuilderNegative, AsyncPortsCannotBeGearboxed) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  const NodeId s = d.source("s", Design::async_out("out", 16));
  const NodeId k = d.sink("k", Design::sync_in("in", c, 16));
  LinkOptions opt;
  opt.link_width = 8;
  d.connect(s, "out", k, "in", opt);
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"s.out", "cannot be gearboxed"});
}

TEST(BuilderNegative, TaggedTrafficCannotCrossAGearbox) {
  // Tagged packets carry dest/flow in the top bits; a serializer would
  // truncate them, so the graph is rejected up front.
  Design d;
  const DomainId a = d.domain("a_clk", {1000, 0, 0.5, 0});
  const DomainId b = d.domain("b_clk", {1300, 0, 0.5, 0});
  builder::SourceAttrs attrs;
  attrs.tagged = true;
  attrs.dests = {0};
  const NodeId s = d.source("s", Design::sync_out("out", a, 32), attrs);
  builder::SinkAttrs sk;
  sk.tagged = true;
  const NodeId k = d.sink("k", Design::sync_in("in", b, 32), sk);
  LinkOptions opt;
  opt.link_width = 8;
  d.connect(s, "out", k, "in", opt);
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"'s'", "tagged packets", "gearbox would truncate"});
}

TEST(BuilderNegative, TaggedEndpointsRejectOnDemandFifoEdges) {
  Design d;
  const DomainId a = d.domain("a_clk", {1000, 0, 0.5, 0});
  const DomainId b = d.domain("b_clk", {1300, 0, 0.5, 0});
  builder::SourceAttrs attrs;
  attrs.tagged = true;
  attrs.dests = {0};
  const NodeId s = d.source("s", Design::sync_out("out", a, 32), attrs);
  builder::SinkAttrs sk;
  sk.tagged = true;
  const NodeId k = d.sink("k", Design::sync_in("in", b, 32), sk);
  LinkOptions opt;
  opt.controller = fifo::ControllerKind::kFifo;
  d.connect(s, "out", k, "in", opt);
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"requires the relay-station controller"});
}

TEST(BuilderNegative, SyncAsyncEdgeRejectsRightLatency) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  const NodeId s = d.source("s", Design::sync_out("out", c, 8));
  const NodeId k = d.sink("k", Design::async_in("in", 8), {0.0, 100});
  LinkOptions opt;
  opt.latency_right = 1;
  d.connect(s, "out", k, "in", opt);
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"latency_right must be 0"});
}

TEST(BuilderNegative, GraphConstructionErrors) {
  Design d;
  // Zero-period domains.
  expect_mentions(config_error_of([&] { d.domain("z", {0, 0, 0.5, 0}); }),
                  {"'z'", "period 0"});
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  // Duplicate names.
  expect_mentions(config_error_of([&] { d.domain("clk", {500, 0, 0.5, 0}); }),
                  {"duplicate domain name 'clk'"});
  d.source("s", Design::sync_out("out", c, 8));
  expect_mentions(
      config_error_of([&] { d.source("s", Design::sync_out("out", c, 8)); }),
      {"duplicate node name 's'"});
  // Sync port with an undeclared domain.
  expect_mentions(config_error_of([&] {
                    d.external("x", {Design::sync_in("in", 7, 8)});
                  }),
                  {"x.in", "undeclared clock domain"});
  // Width out of range.
  expect_mentions(config_error_of([&] {
                    d.external("w", {Design::sync_in("in", c, 65)});
                  }),
                  {"w.in", "out of range 1..64"});
  // A source node must expose an out port.
  expect_mentions(config_error_of([&] {
                    d.source("bad", Design::sync_in("in", c, 8));
                  }),
                  {"'bad'", "needs an out port"});
  // Router port names are validated against the mesh compass.
  expect_mentions(config_error_of([&] {
                    d.router("r", c, 32, {0, 0, 4}, {"x_in"});
                  }),
                  {"'r'", "unknown port 'x_in'"});
  // Tagged sources must declare destinations.
  builder::SourceAttrs tagged;
  tagged.tagged = true;
  const NodeId t = d.source("t", Design::sync_out("out", c, 32), tagged);
  const NodeId k = d.sink("k", Design::sync_in("in", c, 32));
  d.connect(t, "out", k, "in");
  // (connect s.out too, so the dests error is the first one check() hits)
  const NodeId k2 = d.sink("k2", Design::sync_in("in", c, 8));
  d.connect(0, "out", k2, "in");
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"tagged source 't'", "no destinations"});
}

TEST(BuilderNegative, EdgeDirectionIsEnforced) {
  Design d;
  const DomainId c = d.domain("clk", {1000, 0, 0.5, 0});
  const NodeId a = d.external("a", {Design::sync_in("in", c, 8)});
  const NodeId b = d.external("b", {Design::sync_out("out", c, 8)});
  d.connect(a, "in", b, "out");  // backwards on both ends
  expect_mentions(config_error_of([&] { d.check(); }),
                  {"a.in", "edges run out -> in"});
}

}  // namespace
}  // namespace mts
