file(REMOVE_RECURSE
  "CMakeFiles/mts_test_integration.dir/integration/test_determinism.cpp.o"
  "CMakeFiles/mts_test_integration.dir/integration/test_determinism.cpp.o.d"
  "CMakeFiles/mts_test_integration.dir/integration/test_fuzz_campaign.cpp.o"
  "CMakeFiles/mts_test_integration.dir/integration/test_fuzz_campaign.cpp.o.d"
  "CMakeFiles/mts_test_integration.dir/integration/test_property_traffic.cpp.o"
  "CMakeFiles/mts_test_integration.dir/integration/test_property_traffic.cpp.o.d"
  "CMakeFiles/mts_test_integration.dir/integration/test_topologies.cpp.o"
  "CMakeFiles/mts_test_integration.dir/integration/test_topologies.cpp.o.d"
  "mts_test_integration"
  "mts_test_integration.pdb"
  "mts_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
