// Umbrella header for the declarative system builder.
#pragma once

#include "builder/bus.hpp"         // IWYU pragma: export
#include "builder/design.hpp"      // IWYU pragma: export
#include "builder/elaborate.hpp"   // IWYU pragma: export
#include "builder/gearbox.hpp"     // IWYU pragma: export
#include "builder/router.hpp"      // IWYU pragma: export
#include "builder/topologies.hpp"  // IWYU pragma: export
#include "builder/traffic.hpp"     // IWYU pragma: export
