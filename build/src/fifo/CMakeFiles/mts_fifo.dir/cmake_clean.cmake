file(REMOVE_RECURSE
  "CMakeFiles/mts_fifo.dir/area.cpp.o"
  "CMakeFiles/mts_fifo.dir/area.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/async_async_fifo.cpp.o"
  "CMakeFiles/mts_fifo.dir/async_async_fifo.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/async_sync_fifo.cpp.o"
  "CMakeFiles/mts_fifo.dir/async_sync_fifo.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/async_timing.cpp.o"
  "CMakeFiles/mts_fifo.dir/async_timing.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/baseline_shift_fifo.cpp.o"
  "CMakeFiles/mts_fifo.dir/baseline_shift_fifo.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/cell_parts.cpp.o"
  "CMakeFiles/mts_fifo.dir/cell_parts.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/config.cpp.o"
  "CMakeFiles/mts_fifo.dir/config.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/detectors.cpp.o"
  "CMakeFiles/mts_fifo.dir/detectors.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/interface_sides.cpp.o"
  "CMakeFiles/mts_fifo.dir/interface_sides.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/mixed_clock_fifo.cpp.o"
  "CMakeFiles/mts_fifo.dir/mixed_clock_fifo.cpp.o.d"
  "CMakeFiles/mts_fifo.dir/sync_async_fifo.cpp.o"
  "CMakeFiles/mts_fifo.dir/sync_async_fifo.cpp.o.d"
  "libmts_fifo.a"
  "libmts_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
