// Muller C-elements, symmetric and asymmetric.
//
// Symmetric: output rises when every input is 1 and falls when every input
// is 0; otherwise it holds state. Asymmetric (paper, footnote 1): "plus"
// inputs participate only in setting the output to 1; their values are
// irrelevant for the falling transition.
//
// The paper's async put part gates the write-enable `we` with an asymmetric
// C-element: we+ requires put_req & ptok & e_i; we- requires only put_req-.
#pragma once

#include <string>
#include <vector>

#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "sim/signal.hpp"

namespace mts::gates {

class CElement {
 public:
  /// `common` inputs participate in both transitions; `plus` inputs only in
  /// the rising one. All wires must outlive the element.
  CElement(sim::Simulation& sim, std::string name,
           std::vector<sim::Wire*> common, std::vector<sim::Wire*> plus,
           sim::Wire& out, Time delay, bool initial = false);

  CElement(const CElement&) = delete;
  CElement& operator=(const CElement&) = delete;

 private:
  void evaluate();

  std::string name_;
  std::vector<sim::Wire*> common_;
  std::vector<sim::Wire*> plus_;
  sim::Wire& out_;
  Time delay_;
  bool state_;
};

/// Builds a symmetric C-element driving a fresh wire.
sim::Wire& make_celement(Netlist& nl, const std::string& name,
                         std::vector<sim::Wire*> inputs, const DelayModel& dm);

/// Builds an asymmetric C-element driving a fresh wire.
sim::Wire& make_acelement(Netlist& nl, const std::string& name,
                          std::vector<sim::Wire*> common,
                          std::vector<sim::Wire*> plus, const DelayModel& dm);

}  // namespace mts::gates
