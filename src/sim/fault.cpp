#include "sim/fault.hpp"

#include <sstream>

namespace mts::sim {

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << seed_;
  for (const auto& [site, f] : meta_) {
    os << ", meta[" << (site.empty() ? "*" : site)
       << "]={window_scale=" << f.window_scale
       << ", tau_scale=" << f.tau_scale << ", p_new=" << f.p_new
       << ", escape_threshold=" << f.escape_threshold << "}";
  }
  for (const auto& [site, f] : clocks_) {
    os << ", clock[" << (site.empty() ? "*" : site)
       << "]={extra_jitter=" << f.extra_jitter << ", drift=" << f.drift << "}";
  }
  for (const auto& [site, f] : bundling_) {
    os << ", bundling[" << (site.empty() ? "*" : site)
       << "]={data_lag=" << f.data_lag << "}";
  }
  for (const auto& [kind, n] : counts_) {
    os << ", " << kind << "=" << n;
  }
  os << "}";
  return os.str();
}

}  // namespace mts::sim
