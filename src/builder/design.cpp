#include "builder/design.hpp"

#include <algorithm>
#include <sstream>

#include "sim/error.hpp"
#include "sim/report.hpp"  // json_escape

namespace mts::builder {

const char* to_string(TimingStyle s) noexcept {
  return s == TimingStyle::kSync ? "sync" : "async";
}

const char* to_string(PortDir d) noexcept {
  return d == PortDir::kOut ? "out" : "in";
}

const char* to_string(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::kExternal: return "external";
    case NodeKind::kSource: return "source";
    case NodeKind::kSink: return "sink";
    case NodeKind::kRepeater: return "repeater";
    case NodeKind::kRouter: return "router";
    case NodeKind::kBus: return "bus";
  }
  return "?";
}

const char* to_string(Primitive p) noexcept {
  switch (p) {
    case Primitive::kAuto: return "auto";
    case Primitive::kWire: return "wire";
    case Primitive::kSrsChain: return "srs_chain";
    case Primitive::kMixedClockFifo: return "mixed_clock_fifo";
    case Primitive::kAsyncSyncFifo: return "async_sync_fifo";
    case Primitive::kSyncAsyncFifo: return "sync_async_fifo";
    case Primitive::kAsyncAsyncFifo: return "async_async_fifo";
    case Primitive::kMicropipeline: return "micropipeline";
  }
  return "?";
}

Primitive resolve_primitive(TimingStyle from_style, DomainId from_domain,
                            TimingStyle to_style, DomainId to_domain,
                            fifo::ControllerKind controller,
                            unsigned latency) {
  const bool fifo_mode = controller == fifo::ControllerKind::kFifo;
  if (from_style == TimingStyle::kAsync && to_style == TimingStyle::kAsync) {
    if (fifo_mode) return Primitive::kAsyncAsyncFifo;
    return latency > 0 ? Primitive::kMicropipeline : Primitive::kWire;
  }
  if (from_style == TimingStyle::kAsync) return Primitive::kAsyncSyncFifo;
  if (to_style == TimingStyle::kAsync) return Primitive::kSyncAsyncFifo;
  if (from_domain != to_domain) return Primitive::kMixedClockFifo;
  // Same synchronous domain: never a CDC primitive.
  return latency > 0 ? Primitive::kSrsChain : Primitive::kWire;
}

DomainId Design::domain(const std::string& name,
                        const sync::ClockConfig& clock) {
  if (clock.period == 0) {
    throw ConfigError("builder: domain '" + name + "' has period 0");
  }
  for (const DomainDecl& d : domains_) {
    if (d.name == name) {
      throw ConfigError("builder: duplicate domain name '" + name + "'");
    }
  }
  domains_.push_back({name, clock});
  return domains_.size() - 1;
}

NodeId Design::external(const std::string& name, std::vector<PortDecl> ports) {
  Node n;
  n.kind = NodeKind::kExternal;
  n.name = name;
  n.ports = std::move(ports);
  return add_node(std::move(n));
}

NodeId Design::source(const std::string& name, PortDecl out, SourceAttrs a) {
  if (out.dir != PortDir::kOut) {
    throw ConfigError("builder: source '" + name +
                      "' needs an out port, got in port '" + out.name + "'");
  }
  Node n;
  n.kind = NodeKind::kSource;
  n.name = name;
  n.ports.push_back(std::move(out));
  n.source = std::move(a);
  return add_node(std::move(n));
}

NodeId Design::sink(const std::string& name, PortDecl in, SinkAttrs a) {
  if (in.dir != PortDir::kIn) {
    throw ConfigError("builder: sink '" + name +
                      "' needs an in port, got out port '" + in.name + "'");
  }
  Node n;
  n.kind = NodeKind::kSink;
  n.name = name;
  n.ports.push_back(std::move(in));
  n.sink = a;
  return add_node(std::move(n));
}

NodeId Design::repeater(const std::string& name, DomainId d, unsigned width) {
  Node n;
  n.kind = NodeKind::kRepeater;
  n.name = name;
  n.ports.push_back(sync_in("in", d, width));
  n.ports.push_back(sync_out("out", d, width));
  return add_node(std::move(n));
}

NodeId Design::router(const std::string& name, DomainId d, unsigned width,
                      RouterAttrs a, const std::vector<std::string>& ports) {
  static const char* kIn[] = {"n_in", "s_in", "e_in", "w_in", "l_in"};
  static const char* kOut[] = {"n_out", "s_out", "e_out", "w_out", "l_out"};
  Node n;
  n.kind = NodeKind::kRouter;
  n.name = name;
  n.router = a;
  for (const std::string& p : ports) {
    bool known = false;
    for (const char* q : kIn) {
      if (p == q) {
        n.ports.push_back(sync_in(p, d, width));
        known = true;
      }
    }
    for (const char* q : kOut) {
      if (p == q) {
        n.ports.push_back(sync_out(p, d, width));
        known = true;
      }
    }
    if (!known) {
      throw ConfigError("builder: router '" + name + "': unknown port '" + p +
                        "' (expected {n,s,e,w,l}_{in,out})");
    }
  }
  return add_node(std::move(n));
}

NodeId Design::bus(const std::string& name, DomainId d, unsigned width,
                   BusAttrs a) {
  if (a.inputs == 0 || a.outputs == 0) {
    throw ConfigError("builder: bus '" + name +
                      "' needs at least one input and one output port");
  }
  Node n;
  n.kind = NodeKind::kBus;
  n.name = name;
  n.bus = a;
  for (unsigned i = 0; i < a.inputs; ++i) {
    n.ports.push_back(sync_in("in" + std::to_string(i), d, width));
  }
  for (unsigned o = 0; o < a.outputs; ++o) {
    n.ports.push_back(sync_out("out" + std::to_string(o), d, width));
  }
  return add_node(std::move(n));
}

NodeId Design::add_node(Node n) {
  for (const Node& other : nodes_) {
    if (other.name == n.name) {
      throw ConfigError("builder: duplicate node name '" + n.name + "'");
    }
  }
  for (std::size_t i = 0; i < n.ports.size(); ++i) {
    for (std::size_t j = i + 1; j < n.ports.size(); ++j) {
      if (n.ports[i].name == n.ports[j].name) {
        throw ConfigError("builder: node '" + n.name +
                          "' declares port '" + n.ports[i].name + "' twice");
      }
    }
  }
  for (const PortDecl& p : n.ports) {
    if (p.width == 0 || p.width > 64) {
      throw ConfigError("builder: port '" + n.name + "." + p.name +
                        "': width " + std::to_string(p.width) +
                        " out of range 1..64");
    }
    if (p.style == TimingStyle::kSync) {
      if (p.domain == kNoDomain || p.domain >= domains_.size()) {
        throw ConfigError("builder: sync port '" + n.name + "." + p.name +
                          "' references an undeclared clock domain");
      }
    } else if (p.domain != kNoDomain) {
      throw ConfigError("builder: async port '" + n.name + "." + p.name +
                        "' must not carry a clock domain");
    }
  }
  n.id = nodes_.size();
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

EdgeId Design::connect(NodeId from_node, const std::string& from_port,
                       NodeId to_node, const std::string& to_port,
                       LinkOptions opt, std::string edge_name) {
  Edge e;
  e.id = edges_.size();
  e.name = edge_name.empty() ? "e" + std::to_string(e.id)
                             : std::move(edge_name);
  for (const Edge& other : edges_) {
    if (other.name == e.name) {
      throw ConfigError("builder: duplicate edge name '" + e.name + "'");
    }
  }
  e.from = from_node;
  e.from_port = port_index(from_node, from_port);
  e.to = to_node;
  e.to_port = port_index(to_node, to_port);
  e.opt = std::move(opt);
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

const Node& Design::node(NodeId id) const {
  if (id >= nodes_.size()) {
    throw ConfigError("builder: node id " + std::to_string(id) +
                      " out of range");
  }
  return nodes_[id];
}

const Edge& Design::edge(EdgeId id) const {
  if (id >= edges_.size()) {
    throw ConfigError("builder: edge id " + std::to_string(id) +
                      " out of range");
  }
  return edges_[id];
}

std::size_t Design::port_index(NodeId id, const std::string& port) const {
  const Node& n = node(id);
  for (std::size_t i = 0; i < n.ports.size(); ++i) {
    if (n.ports[i].name == port) return i;
  }
  throw ConfigError("builder: node '" + n.name + "' has no port '" + port +
                    "'");
}

const PortDecl& Design::port(NodeId id, const std::string& name) const {
  return node(id).ports[port_index(id, name)];
}

EdgeId Design::edge_at(NodeId n, std::size_t p) const {
  for (const Edge& e : edges_) {
    if ((e.from == n && e.from_port == p) || (e.to == n && e.to_port == p)) {
      return e.id;
    }
  }
  return kNoEdge;
}

std::string Design::port_ref(NodeId n, std::size_t p) const {
  return nodes_[n].name + "." + nodes_[n].ports[p].name;
}

unsigned Design::link_width_of(const Edge& e) const {
  const unsigned wp = nodes_[e.from].ports[e.from_port].width;
  const unsigned wc = nodes_[e.to].ports[e.to_port].width;
  return e.opt.link_width != 0 ? e.opt.link_width : std::min(wp, wc);
}

fifo::FifoConfig Design::edge_fifo_config(const Edge& e) const {
  fifo::FifoConfig cfg = e.opt.base_set ? e.opt.base : link_defaults_;
  cfg.capacity = e.opt.capacity;
  cfg.width = link_width_of(e);
  cfg.controller = e.opt.controller;
  return cfg;
}

void Design::check_edge(const Edge& e) const {
  const std::string where = "builder: edge '" + e.name + "' (" +
                            port_ref(e.from, e.from_port) + " -> " +
                            port_ref(e.to, e.to_port) + ")";
  const PortDecl& pp = nodes_[e.from].ports[e.from_port];
  const PortDecl& pc = nodes_[e.to].ports[e.to_port];
  if (pp.dir != PortDir::kOut) {
    throw ConfigError(where + ": '" + port_ref(e.from, e.from_port) +
                      "' is an in port; edges run out -> in");
  }
  if (pc.dir != PortDir::kIn) {
    throw ConfigError(where + ": '" + port_ref(e.to, e.to_port) +
                      "' is an out port; edges run out -> in");
  }

  // Width / gearbox feasibility.
  const unsigned lw = link_width_of(e);
  if (lw == 0 || lw > 64) {
    throw ConfigError(where + ": link width " + std::to_string(lw) +
                      " out of range 1..64");
  }
  if (lw > pp.width || lw > pc.width) {
    throw ConfigError(where + ": link width " + std::to_string(lw) +
                      " exceeds a port width (" + std::to_string(pp.width) +
                      " -> " + std::to_string(pc.width) +
                      "); links only gear down");
  }
  if (pp.width % lw != 0 || pc.width % lw != 0) {
    throw ConfigError(
        where + ": width mismatch: " + port_ref(e.from, e.from_port) + " is " +
        std::to_string(pp.width) + " bits, " + port_ref(e.to, e.to_port) +
        " is " + std::to_string(pc.width) + " bits, link is " +
        std::to_string(lw) + " bits -- no integer gearbox ratio");
  }
  // A serializer is needed on any side whose port is wider than the link;
  // gearboxes are synchronous circuits, so that side must be clocked.
  const bool gearboxed = pp.width != lw || pc.width != lw;
  if (pp.width != lw && pp.style == TimingStyle::kAsync) {
    throw ConfigError(where + ": async port '" + port_ref(e.from, e.from_port) +
                      "' cannot be gearboxed (sync-side only); match widths");
  }
  if (pc.width != lw && pc.style == TimingStyle::kAsync) {
    throw ConfigError(where + ": async port '" + port_ref(e.to, e.to_port) +
                      "' cannot be gearboxed (sync-side only); match widths");
  }

  const bool fifo_mode = e.opt.controller == fifo::ControllerKind::kFifo;
  const unsigned latency = e.opt.latency_left + e.opt.latency_right;
  if (fifo_mode && latency > 0) {
    throw ConfigError(where +
                      ": relay-station latency requires the relay-station "
                      "controller; on-demand FIFO edges take latency 0");
  }
  if (fifo_mode && gearboxed) {
    throw ConfigError(where + ": gearboxes speak the latency-insensitive "
                              "protocol; on-demand FIFO edges need matching "
                              "widths");
  }
  // Repeaters, routers, buses and tagged traffic speak the
  // latency-insensitive packet protocol; on-demand FIFO interfaces
  // (req/full handshakes) have no stop wire for them to drive.
  if (fifo_mode) {
    for (const NodeId end : {e.from, e.to}) {
      const Node& n = nodes_[end];
      const bool li_only =
          n.kind == NodeKind::kRepeater || n.kind == NodeKind::kRouter ||
          n.kind == NodeKind::kBus ||
          (n.kind == NodeKind::kSource && n.source.tagged) ||
          (n.kind == NodeKind::kSink && n.sink.tagged);
      if (li_only) {
        throw ConfigError(where + ": node '" + n.name + "' (" +
                          to_string(n.kind) +
                          ") requires the relay-station controller, not an "
                          "on-demand FIFO edge");
      }
    }
  }
  // Tagged packets carry their routing fields in the top bits ([63:56]
  // dest, [55:48] flow); a serializer chunks only the low link-width bits,
  // so a gearboxed edge would strip the very evidence routers switch on.
  if (gearboxed) {
    for (const NodeId end : {e.from, e.to}) {
      const Node& n = nodes_[end];
      const bool packeted =
          n.kind == NodeKind::kRouter || n.kind == NodeKind::kBus ||
          (n.kind == NodeKind::kSource && n.source.tagged) ||
          (n.kind == NodeKind::kSink && n.sink.tagged);
      if (packeted) {
        throw ConfigError(where + ": node '" + n.name + "' (" +
                          to_string(n.kind) +
                          ") carries tagged packets whose routing fields "
                          "live in the top bits; a gearbox would truncate "
                          "them -- match the link width to the port width");
      }
    }
  }
  if (fifo_mode && pp.style == TimingStyle::kSync &&
      pc.style == TimingStyle::kSync && pp.domain == pc.domain) {
    throw ConfigError(where + ": both ports are in domain '" +
                      domains_[pp.domain].name +
                      "'; no CDC primitive applies to a same-domain "
                      "on-demand FIFO edge (use distinct domains or the "
                      "relay-station controller)");
  }

  const Primitive resolved =
      resolve_primitive(pp.style, pp.domain, pc.style, pc.domain,
                        e.opt.controller, latency);
  if (e.opt.primitive != Primitive::kAuto && e.opt.primitive != resolved) {
    std::string why;
    if (e.opt.primitive == Primitive::kMixedClockFifo &&
        pp.style == TimingStyle::kSync && pc.style == TimingStyle::kSync &&
        pp.domain == pc.domain) {
      why = ": both ports are in domain '" + domains_[pp.domain].name +
            "'; a same-domain edge cannot request the CDC primitive '" +
            std::string(to_string(e.opt.primitive)) + "'";
    } else {
      why = ": requested primitive '" +
            std::string(to_string(e.opt.primitive)) +
            "' does not fit the annotations (selection resolves to '" +
            std::string(to_string(resolved)) + "')";
    }
    throw ConfigError(where + why);
  }

  // The sync->async lowering ends in the sync-async FIFO's pull interface;
  // there is nothing downstream to pump relay stations with.
  if (resolved == Primitive::kSyncAsyncFifo && e.opt.latency_right > 0) {
    throw ConfigError(where + ": latency_right must be 0 on a sync->async "
                              "edge (the sync-async FIFO's pull interface "
                              "terminates the link)");
  }

  // Inserted FIFOs must themselves be constructible.
  const bool inserts_fifo = resolved == Primitive::kMixedClockFifo ||
                            resolved == Primitive::kAsyncSyncFifo ||
                            resolved == Primitive::kSyncAsyncFifo ||
                            resolved == Primitive::kAsyncAsyncFifo;
  if (inserts_fifo) {
    try {
      edge_fifo_config(e).validate();
    } catch (const ConfigError& err) {
      throw ConfigError(where + ": inserted " +
                        std::string(to_string(resolved)) + " is invalid: " +
                        err.what());
    }
  }
}

void Design::check() const {
  // Every port connected by exactly one edge.
  std::vector<std::vector<unsigned>> uses(nodes_.size());
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    uses[n].assign(nodes_[n].ports.size(), 0);
  }
  for (const Edge& e : edges_) {
    ++uses[e.from][e.from_port];
    ++uses[e.to][e.to_port];
  }
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    for (std::size_t p = 0; p < nodes_[n].ports.size(); ++p) {
      if (uses[n][p] == 0) {
        throw ConfigError("builder: dangling port '" + port_ref(n, p) +
                          "': every declared port must be connected");
      }
      if (uses[n][p] > 1) {
        const bool input = nodes_[n].ports[p].dir == PortDir::kIn;
        throw ConfigError("builder: port '" + port_ref(n, p) + "' has " +
                          std::to_string(uses[n][p]) +
                          (input ? " drivers; an input accepts exactly one"
                                 : " consumers; an output drives exactly "
                                   "one edge"));
      }
    }
  }

  for (const Edge& e : edges_) check_edge(e);

  // Node-level rules.
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kSource && n.source.tagged) {
      if (n.ports[0].style != TimingStyle::kSync) {
        throw ConfigError("builder: tagged source '" + n.name +
                          "' must have a sync port");
      }
      if (n.source.dests.empty()) {
        throw ConfigError("builder: tagged source '" + n.name +
                          "' declares no destinations");
      }
    }
    if (n.kind == NodeKind::kSink && n.sink.tagged &&
        n.ports[0].style != TimingStyle::kSync) {
      throw ConfigError("builder: tagged sink '" + n.name +
                        "' must have a sync port");
    }
    const bool packeted = n.kind == NodeKind::kRouter ||
                          n.kind == NodeKind::kBus ||
                          (n.kind == NodeKind::kSource && n.source.tagged) ||
                          (n.kind == NodeKind::kSink && n.sink.tagged);
    if (packeted) {
      for (const PortDecl& p : n.ports) {
        if (p.width < 24) {
          throw ConfigError("builder: port '" + n.name + "." + p.name +
                            "': tagged packets need >= 24 bits (8 dest + 8 "
                            "flow + seq), got " + std::to_string(p.width));
        }
      }
    }
    if (n.kind == NodeKind::kRouter && n.router.queue < 2) {
      throw ConfigError("builder: router '" + n.name +
                        "': input queue depth must be >= 2");
    }
    // Untagged generated sinks check FIFO order against the upstream
    // source's scoreboard; routers and buses interleave flows, which only
    // the tagged per-flow checker understands.
    if (n.kind == NodeKind::kSink && !n.sink.tagged) {
      NodeId cur = n.id;
      std::size_t hops = 0;
      for (;;) {
        const EdgeId in = edge_at(cur, port_index(cur, cur == n.id
                                                           ? n.ports[0].name
                                                           : "in"));
        if (in == kNoEdge) break;
        const Node& up = nodes_[edges_[in].from];
        if (up.kind == NodeKind::kRouter || up.kind == NodeKind::kBus) {
          throw ConfigError("builder: sink '" + n.name +
                            "' consumes interleaved traffic from '" + up.name +
                            "'; mark it tagged for per-flow checking");
        }
        // The sink shares the source's scoreboard: an asymmetric gearbox
        // (unequal endpoint widths) would deliver chunks, not the pushed
        // values.
        if (up.kind == NodeKind::kSource &&
            up.ports[0].width != n.ports[0].width) {
          throw ConfigError(
              "builder: sink '" + n.name + "." + n.ports[0].name + "' (" +
              std::to_string(n.ports[0].width) + " bits) checks source '" +
              up.name + "." + up.ports[0].name + "' (" +
              std::to_string(up.ports[0].width) +
              " bits); scoreboard checking needs equal endpoint widths");
        }
        if (up.kind != NodeKind::kRepeater || ++hops > nodes_.size()) break;
        cur = up.id;
      }
    }
  }
}

// --- exports ---------------------------------------------------------------

namespace {

void json_port(std::ostringstream& os, const Design& d, const PortDecl& p) {
  os << "{\"name\": \"" << sim::json_escape(p.name) << "\", \"dir\": \""
     << to_string(p.dir) << "\", \"style\": \"" << to_string(p.style)
     << "\", \"domain\": ";
  if (p.style == TimingStyle::kSync && p.domain < d.domains().size()) {
    os << "\"" << sim::json_escape(d.domains()[p.domain].name) << "\"";
  } else {
    os << "null";
  }
  os << ", \"width\": " << p.width << "}";
}

}  // namespace

std::string Design::to_json() const {
  std::ostringstream os;
  os << "{\n  \"design\": \"" << sim::json_escape(name_) << "\",\n";
  os << "  \"domains\": [";
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    if (i) os << ", ";
    const DomainDecl& d = domains_[i];
    os << "{\"name\": \"" << sim::json_escape(d.name)
       << "\", \"period_ps\": " << d.clock.period
       << ", \"phase_ps\": " << d.clock.phase << ", \"duty\": " << d.clock.duty
       << ", \"jitter_ps\": " << d.clock.jitter << "}";
  }
  os << "],\n  \"nodes\": [";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i) os << ", ";
    const Node& n = nodes_[i];
    os << "\n    {\"name\": \"" << sim::json_escape(n.name)
       << "\", \"kind\": \"" << to_string(n.kind) << "\", \"ports\": [";
    for (std::size_t p = 0; p < n.ports.size(); ++p) {
      if (p) os << ", ";
      json_port(os, *this, n.ports[p]);
    }
    os << "]}";
  }
  os << "\n  ],\n  \"edges\": [";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i) os << ", ";
    const Edge& e = edges_[i];
    const PortDecl& pp = nodes_[e.from].ports[e.from_port];
    const PortDecl& pc = nodes_[e.to].ports[e.to_port];
    os << "\n    {\"name\": \"" << sim::json_escape(e.name)
       << "\", \"from\": \"" << sim::json_escape(port_ref(e.from, e.from_port))
       << "\", \"to\": \"" << sim::json_escape(port_ref(e.to, e.to_port))
       << "\", \"capacity\": " << e.opt.capacity << ", \"controller\": \""
       << fifo::to_string(e.opt.controller) << "\", \"latency\": [" << e.opt.latency_left << ", "
       << e.opt.latency_right << "], \"link_width\": " << link_width_of(e)
       << ", \"primitive\": \""
       << to_string(resolve_primitive(pp.style, pp.domain, pc.style, pc.domain,
                                      e.opt.controller,
                                      e.opt.latency_left + e.opt.latency_right))
       << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string Design::to_dot() const {
  static const char* kFills[] = {"#cfe2f3", "#d9ead3", "#fff2cc",
                                 "#f4cccc", "#d9d2e9", "#fce5cd"};
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=LR;\n"
     << "  node [shape=box, style=filled, fontname=\"Helvetica\"];\n";
  for (const Node& n : nodes_) {
    DomainId dom = kNoDomain;
    for (const PortDecl& p : n.ports) {
      if (p.style == TimingStyle::kSync) {
        dom = p.domain;
        break;
      }
    }
    const char* fill =
        dom == kNoDomain ? "#eeeeee" : kFills[dom % std::size(kFills)];
    os << "  \"" << n.name << "\" [label=\"" << n.name << "\\n("
       << to_string(n.kind);
    if (dom != kNoDomain) os << " @" << domains_[dom].name;
    os << ")\", fillcolor=\"" << fill << "\"];\n";
  }
  for (const Edge& e : edges_) {
    const PortDecl& pp = nodes_[e.from].ports[e.from_port];
    const PortDecl& pc = nodes_[e.to].ports[e.to_port];
    os << "  \"" << nodes_[e.from].name << "\" -> \"" << nodes_[e.to].name
       << "\" [label=\"" << e.name << ": "
       << to_string(resolve_primitive(pp.style, pp.domain, pc.style, pc.domain,
                                      e.opt.controller,
                                      e.opt.latency_left + e.opt.latency_right))
       << " w" << link_width_of(e) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace mts::builder
