#include "ctrl/petri.hpp"

#include <gtest/gtest.h>

#include "sim/error.hpp"
#include "sim/simulation.hpp"

namespace mts::ctrl {
namespace {

// Simple net: place0 -[in a+]-> place1 -[out x+]-> place2 -[in a-]->
// place3 -[out x-]-> place0.
PetriNet ring_net() {
  PetriNet n;
  n.name = "ring";
  n.num_places = 4;
  n.initial_marking = {0};
  n.transitions = {
      {"a+", true, 0, true, {0}, {1}},
      {"x+", false, 0, true, {1}, {2}},
      {"a-", true, 0, false, {2}, {3}},
      {"x-", false, 0, false, {3}, {0}},
  };
  return n;
}

struct Fixture {
  sim::Simulation sim;
  sim::Wire a{sim, "a"};
  sim::Wire x{sim, "x"};
  void settle() { sim.run_until(sim.now() + 1000); }
};

TEST(Petri, InputEdgeFiresEnabledTransition) {
  Fixture f;
  const PetriNet net = ring_net();
  PetriEngine eng(f.sim, "eng", net, {&f.a}, {&f.x}, 25);
  EXPECT_TRUE(eng.marked(0));

  f.a.set(true);
  f.settle();
  EXPECT_TRUE(f.x.read());
  EXPECT_TRUE(eng.marked(2));

  f.a.set(false);
  f.settle();
  EXPECT_FALSE(f.x.read());
  EXPECT_TRUE(eng.marked(0));
  EXPECT_EQ(eng.firings(), 4u);
}

TEST(Petri, OutputTransitionsFireEagerlyAndCascade) {
  PetriNet n;
  n.name = "cascade";
  n.num_places = 3;
  n.initial_marking = {0};
  n.transitions = {
      {"x+", false, 0, true, {0}, {1}},
      {"y+", false, 1, true, {1}, {2}},
  };
  sim::Simulation sim;
  sim::Wire x(sim, "x");
  sim::Wire y(sim, "y");
  PetriEngine eng(sim, "eng", n, {}, {&x, &y}, 25);
  sim.run_until(1000);
  EXPECT_TRUE(x.read());
  EXPECT_TRUE(y.read());
  EXPECT_TRUE(eng.marked(2));
}

TEST(Petri, UnexpectedEdgeReported) {
  Fixture f;
  const PetriNet net = ring_net();
  PetriEngine eng(f.sim, "eng", net, {&f.a}, {&f.x}, 25);
  // a- while in place0: not enabled.
  f.a.set(true);
  f.settle();
  f.a.set(false);
  f.settle();
  f.a.set(false);  // no edge; set same value is ignored by Signal
  f.sim.report().clear();
  // Force an illegal edge: a- arrives when place2 is not marked.
  f.a.set(true);
  f.settle();
  f.a.set(false);
  f.settle();
  f.a.set(false);
  EXPECT_EQ(f.sim.report().count("pn-illegal-input"), 0u);  // legal so far
  // Now inject a- again without a+ first: need a rising edge in between to
  // make a falling edge; use a+ then a+... instead drive a second wire set:
  // simplest: a- with marking at place0 is impossible to produce via edges,
  // so validate the reporting path directly with a fresh engine:
  sim::Simulation sim2;
  sim::Wire b(sim2, "b", true);
  sim::Wire x2(sim2, "x2");
  const PetriNet net2 = ring_net();
  PetriEngine eng2(sim2, "eng2", net2, {&b}, {&x2}, 25);
  b.set(false);  // a- while place0 marked: illegal
  sim2.run_until(100);
  EXPECT_GE(sim2.report().count("pn-illegal-input"), 1u);
}

TEST(Petri, OneSafetyViolationThrows) {
  PetriNet n;
  n.name = "unsafe";
  n.num_places = 2;
  n.initial_marking = {0, 1};
  n.transitions = {
      {"x+", false, 0, true, {0}, {1}},  // place1 already marked
  };
  sim::Simulation sim;
  sim::Wire x(sim, "x");
  PetriEngine eng(sim, "eng", n, {}, {&x}, 25);
  EXPECT_THROW(sim.run(), SimulationError);
}

TEST(PetriValidate, RejectsMalformedNets) {
  PetriNet n = ring_net();
  n.transitions[0].pre = {9};
  EXPECT_THROW(n.validate(1, 1), ConfigError);

  PetriNet m = ring_net();
  m.initial_marking = {7};
  EXPECT_THROW(m.validate(1, 1), ConfigError);

  PetriNet k = ring_net();
  k.transitions[0].signal = 3;
  EXPECT_THROW(k.validate(1, 1), ConfigError);
}

}  // namespace
}  // namespace mts::ctrl
