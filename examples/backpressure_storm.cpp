// Backpressure storm on a latency-insensitive relay chain, watched live
// through the time-series telemetry sampler.
//
// A full-rate producer feeds a Fig. 11a mixed-clock link (4 SRS + MCRS +
// 4 SRS); the consumer is a DETERMINISTIC bursty sink that slams stop high
// for 15 of every 40 cycles once the pipeline is warm. Each storm
// back-pressures the whole chain: the relay stations' stall duty jumps to
// 1.0 link-segment by link-segment (upstream of the sink first), occupancy
// piles up toward capacity, and when the storm clears the chain drains in
// reverse order -- the paper's stop/valid protocol doing its job with zero
// packet loss.
//
// The telemetry sampler records exactly that movie: per-station
// `.occupancy` / `.stall_duty` / `.in_flight` series plus the sink's own
// stop line, merged as Perfetto counter tracks into storm_trace.json (open
// in https://ui.perfetto.dev -- the "telemetry" process rides below the
// transaction spans) and exported as storm_timeline.jsonl for the
// mts_timeline CLI:
//
//   $ ./example_backpressure_storm
//   $ mts_timeline storm_timeline.jsonl --series stall_duty
//
// reproduce.sh copies both artifacts into out/ as the backpressure-
// timeline figure.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "lip/lip.hpp"
#include "metrics/registry.hpp"
#include "sim/observe.hpp"
#include "sim/trace_session.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

/// Deterministic storm sink: consumes like bfm::RsSink (on every edge where
/// its registered stop was low) but drives stop from a fixed cycle pattern
/// instead of the RNG -- `burst` stop cycles out of every `period`, starting
/// after `warmup` cycles. Same waveform every run, so the timeline artifact
/// is reproducible byte for byte.
class StormSink {
 public:
  StormSink(sim::Simulation& sim, sim::Wire& clk, sim::Word& in_data,
            sim::Wire& in_valid, sim::Wire& stop, const gates::DelayModel& dm,
            unsigned warmup, unsigned period, unsigned burst,
            bfm::Scoreboard& sb)
      : sim_(sim),
        in_data_(in_data),
        in_valid_(in_valid),
        stop_(stop),
        clk_to_q_(dm.flop.clk_to_q),
        warmup_(warmup),
        period_(period),
        burst_(burst),
        sb_(sb) {
    clk.on_rise([this] { on_edge(); });
  }

  std::uint64_t received() const noexcept { return received_; }
  bool stalling() const noexcept { return prev_stop_; }
  std::uint64_t stall_cycles() const noexcept { return stall_cycles_; }

 private:
  void on_edge() {
    if (!prev_stop_ && in_valid_.read()) {
      sb_.pop_check(in_data_.read());
      ++received_;
    }
    const bool stall =
        cycle_ >= warmup_ && (cycle_ - warmup_) % period_ < burst_;
    ++cycle_;
    if (stall) ++stall_cycles_;
    prev_stop_ = stall;
    stop_.write(stall, clk_to_q_, sim::DelayKind::kInertial);
  }

  sim::Simulation& sim_;
  sim::Word& in_data_;
  sim::Wire& in_valid_;
  sim::Wire& stop_;
  sim::Time clk_to_q_;
  unsigned warmup_;
  unsigned period_;
  unsigned burst_;
  bfm::Scoreboard& sb_;
  bool prev_stop_ = false;
  unsigned cycle_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

}  // namespace

int main() {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  sim::Simulation sim(7);

  // Observability armed before any component exists: trace spans +
  // metrics + the sampler (one sample per producer cycle batch).
  const Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
  const Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sim::TraceSession trace;
  metrics::Registry registry;
  sim::TelemetryConfig tcfg;
  tcfg.interval = 2 * pp;
  tcfg.max_points = 8192;
  sim::Telemetry telemetry(tcfg);
  sim::Observability obs;
  obs.trace = &trace;
  obs.metrics = &registry;
  obs.telemetry = &telemetry;
  obs.arm(sim);

  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 997, 0.5, 0});
  lip::MixedClockLink link(sim, "link", cfg, cp.out(), cg.out(), 4, 4);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", cp.out(), link.data_in(), link.valid_in(),
                    link.stop_out(), cfg.dm, 1.0, 0xFF, sb);
  StormSink sink(sim, cg.out(), link.data_out(), link.valid_out(),
                 link.stop_in(), cfg.dm, /*warmup=*/100, /*period=*/40,
                 /*burst=*/15, sb);

  // The sink's own stop line as a telemetry source: the storm generator's
  // duty cycle, to line up against the stations' stall_duty tracks.
  telemetry.add_source("sink", "cg", "stop",
                       [&sink] { return sink.stalling() ? 1.0 : 0.0; });

  const unsigned cycles = 800;
  sim.run_until(4 * pp + cycles * pp);

  std::printf("backpressure storm: 4 SRS -> MCRS -> 4 SRS, full-rate "
              "producer,\nsink slams stop for 15/40 cycles after cycle "
              "100\n");
  std::printf("  packets received   : %llu (order violations %llu)\n",
              static_cast<unsigned long long>(sink.received()),
              static_cast<unsigned long long>(sb.errors()));
  std::printf("  sink stall cycles  : %llu\n",
              static_cast<unsigned long long>(sink.stall_cycles()));
  std::printf("  telemetry          : %llu samples, %llu series\n",
              static_cast<unsigned long long>(telemetry.samples()),
              static_cast<unsigned long long>(
                  telemetry.store().series_count()));

  trace.write_json("storm_trace.json");
  telemetry.write_jsonl("storm_timeline.jsonl");
  std::printf("  wrote storm_trace.json (%llu counter points) and "
              "storm_timeline.jsonl\n",
              static_cast<unsigned long long>(
                  telemetry.store().total_points()));

  // The storm must actually show up in the telemetry: some station's stall
  // duty saturates during bursts, occupancy tracks exist, and the sink's
  // stop series toggles.
  double max_stall_duty = 0.0;
  std::size_t occupancy_series = 0;
  for (const std::string& name : telemetry.store().names()) {
    const metrics::TimeSeries* s = telemetry.store().find(name);
    if (name.find(".stall_duty") != std::string::npos) {
      for (const metrics::TimePoint& p : s->points()) {
        max_stall_duty = std::max(max_stall_duty, p.v);
      }
    }
    if (name.find(".occupancy") != std::string::npos) ++occupancy_series;
  }
  const metrics::TimeSeries* stop_series = telemetry.store().find("sink.stop");
  const bool storm_seen = max_stall_duty > 0.5 && occupancy_series >= 2 &&
                          stop_series != nullptr &&
                          stop_series->last() >= 0.0;

  const bool ok = sb.errors() == 0 && sink.received() > 200 &&
                  sink.stall_cycles() > 200 && telemetry.samples() > 100 &&
                  storm_seen;
  std::printf("  max stall duty %.2f over %zu occupancy tracks -> %s\n",
              max_stall_duty, occupancy_series, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
