#include "campaignd/workload.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sim/error.hpp"
#include "sync/clock.hpp"

namespace mts::campaignd {

namespace {

std::mutex g_registry_mu;
std::map<std::string, WorkloadFactory>& factories() {
  static std::map<std::string, WorkloadFactory> m;
  return m;
}

/// The representative mixed-clock FIFO soak (the bench workload's shape):
/// per-config capacity, seed-derived traffic rates, scoreboard + monitors,
/// standard coverage bins into the per-run sink.
class FifoSoak : public Workload {
 public:
  explicit FifoSoak(const json::Value& params) {
    if (params.is_object()) {
      cycles_ = static_cast<unsigned>(params.get_u64("cycles", 40));
      with_coverage_ = params.get_bool("coverage", true);
    } else if (!params.is_null()) {
      throw json::ProtocolError("fifo_soak params must be an object");
    }
  }

  void begin_run() override {
    if (with_coverage_) {
      cov_ = std::make_unique<metrics::Coverage>("fifo_soak");
    }
  }

  void run(sim::CampaignContext& ctx) override {
    constexpr unsigned kCaps[] = {4, 8, 16};
    fifo::FifoConfig cfg;
    cfg.capacity = kCaps[ctx.spec().config % 3];
    cfg.width = 8;

    sim::Simulation& sim = ctx.sim();
    const std::uint64_t seed = ctx.spec().seed;
    const double put_rate =
        0.5 + 0.5 * static_cast<double>(seed % 101) / 100.0;
    const double get_rate =
        0.5 + 0.5 * static_cast<double>((seed >> 16) % 101) / 100.0;

    const sim::Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
    const sim::Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3 + seed % 7, 0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    if (cov_ != nullptr) {
      metrics::cover_mixed_clock_fifo(*cov_, "dut", dut);
    }
    bfm::Scoreboard sb(sim, "sb");
    bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(),
                       dut.data_put(), sb);
    bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(),
                           dut.data_put(), dut.full(), cfg.dm,
                           {put_rate, 1}, 0xFF);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {get_rate, 1});

    sim.run_until(4 * pp + static_cast<sim::Time>(cycles_) * pp);
    ctx.set("errors", static_cast<double>(sb.errors()));
    ctx.set("dequeued", static_cast<double>(gm.dequeued()));
    if (sb.errors() > 0) {
      throw mts::SimulationError("scoreboard recorded " +
                                 std::to_string(sb.errors()) +
                                 " data errors");
    }
  }

  const metrics::Coverage* coverage() const override { return cov_.get(); }

 private:
  unsigned cycles_ = 40;
  bool with_coverage_ = true;
  std::unique_ptr<metrics::Coverage> cov_;
};

/// fifo_soak plus deterministic failure injection: runs whose index is in
/// fail_indices throw SimulationError (every attempt, or -- with
/// "flaky" -- only attempt 1, so supervision classifies them flaky).
class ChaosSoak : public FifoSoak {
 public:
  explicit ChaosSoak(const json::Value& params) : FifoSoak(params) {
    if (params.is_object()) {
      flaky_ = params.get_bool("flaky", false);
      if (const json::Value* fi = params.find("fail_indices")) {
        for (const json::Value& v : fi->as_array()) {
          fail_indices_.push_back(v.as_size());
        }
      }
    }
  }

  void run(sim::CampaignContext& ctx) override {
    const bool listed =
        std::find(fail_indices_.begin(), fail_indices_.end(),
                  ctx.spec().index) != fail_indices_.end();
    if (listed && (!flaky_ || ctx.attempt() == 1)) {
      // Run a slice of the soak first so the failing run still leaves
      // report/metrics state behind (the repro bundle should carry it).
      ctx.set("injected", 1.0);
      throw mts::SimulationError("injected failure at run " +
                                 std::to_string(ctx.spec().index));
    }
    FifoSoak::run(ctx);
  }

 private:
  std::vector<std::size_t> fail_indices_;
  bool flaky_ = false;
};

/// Registers the built-ins exactly once (first registry access).
struct BuiltinRegistrar {
  BuiltinRegistrar() {
    factories()["fifo_soak"] = [](const json::Value& p) {
      return std::make_unique<FifoSoak>(p);
    };
    factories()["chaos_soak"] = [](const json::Value& p) {
      return std::make_unique<ChaosSoak>(p);
    };
  }
};

std::map<std::string, WorkloadFactory>& registered() {
  static BuiltinRegistrar once;
  return factories();
}

}  // namespace

void register_workload(const std::string& name, WorkloadFactory factory) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  registered()[name] = std::move(factory);
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const json::Value& params) {
  WorkloadFactory factory;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    auto& m = registered();
    const auto it = m.find(name);
    if (it == m.end()) {
      std::string known;
      for (const auto& [n, f] : m) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw json::ProtocolError("unknown workload '" + name +
                                "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(params);
}

std::vector<std::string> workload_names() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  std::vector<std::string> names;
  for (const auto& [n, f] : registered()) names.push_back(n);
  return names;
}

}  // namespace mts::campaignd
