// Crash-consistent campaign checkpoints.
//
// The coordinator periodically persists every completed run's snapshot
// record (the same JSON document the worker sent over the wire: RunResult
// + per-run Report/Registry/Coverage/timeline deltas). `--resume` reloads
// the file, marks those run indices done, and the finalize step refolds
// everything in run-index order -- so a resumed campaign REPLAYS NOTHING
// and still renders byte-identical merged artifacts: the fold is a pure
// function of the per-run records, never of when or in which process they
// were produced. (Storing folded partial state instead would order the
// Report entry fold by checkpoint time, which is exactly the placement
// dependence the engine's run-index-order contract exists to kill.)
//
// Write protocol: serialize to `<path>.tmp`, fsync, rename over `<path>`.
// A SIGKILL between any two steps leaves either the old complete file or
// the new complete file -- never a torn one. The header pins the matrix
// shape and a job digest (snapshots.hpp); load_checkpoint rejects a file
// from a different job with CheckpointError rather than folding apples
// into oranges.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaignd/json.hpp"

namespace mts::campaignd {

class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& msg)
      : std::runtime_error("checkpoint: " + msg) {}
};

inline constexpr const char* kCheckpointMagic = "mts-campaignd-checkpoint";
inline constexpr int kCheckpointVersion = 1;

struct Checkpoint {
  std::size_t configs = 0;
  std::size_t reps = 0;
  std::string digest;  ///< job_digest() of the owning job
  /// Whether the campaign had finished when this checkpoint was written
  /// (a final checkpoint of a complete campaign; resume just re-renders).
  bool complete = false;
  /// One record per completed run, in the order they completed (the fold
  /// re-sorts by run index). Each record is the worker's run_done payload:
  /// {"result": ..., "report": ..., "registry": ..., "coverage"?, ...}.
  std::vector<json::Value> runs;
};

/// Extracts the record's run index (record.result.index); throws
/// CheckpointError on malformed records.
std::size_t record_run_index(const json::Value& record);

/// Atomically writes `cp` to `path` (tmp + fsync + rename). Throws
/// CheckpointError on I/O failure.
void write_checkpoint(const std::string& path, const Checkpoint& cp);

/// Loads and validates a checkpoint. `expect_digest` non-empty enforces
/// job compatibility. Malformed JSON, wrong magic/version, digest mismatch
/// or out-of-range run indices throw CheckpointError.
Checkpoint load_checkpoint(const std::string& path,
                           const std::string& expect_digest = "");

}  // namespace mts::campaignd
