// Metrics registry: counters, gauges and fixed-bucket histograms keyed by
// instance name, populated by the observability hooks in src/fifo, src/lip
// and src/sync (see sim/observability.hpp).
//
// Header-only by design: mts_metrics links against mts_fifo (for the
// coverage attachers), so the FIFO/LIP/sync libraries cannot link back to
// mts_metrics without a cycle. A header-only registry lets every layer --
// including mts_sim's observability shim -- use it with no link edge at all.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (std::map nodes never move), so components resolve
// them once at construction and the per-event cost is an increment.
//
// Serialization: to_json() emits the whole registry as one JSON object
// (instance -> metric -> value/summary); bind(report) attaches that emitter
// to a sim::Report so Report::to_json() carries a "metrics" section.
// to_csv() flattens histograms to one row per instance/metric with
// p50/p95/p99/max columns -- the format the benches append to BENCH_*.json
// sidecar tables and scripts/reproduce.sh tabulates.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/error.hpp"
#include "sim/report.hpp"

namespace mts::metrics {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

  /// Campaign reduction: counts add.
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

  /// Campaign reduction: max wins. "Last value" is meaningless across
  /// shards that finish in nondeterministic order; max is the only
  /// commutative choice that keeps high-water-mark gauges (the dominant
  /// use) exact and the merged artifact independent of worker count.
  void merge(const Gauge& other) noexcept {
    value_ = std::max(value_, other.value_);
  }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Buckets are defined by their upper bounds (an
/// implicit +inf bucket catches the tail); percentile() interpolates inside
/// the selected bucket and clamps to the exact observed max, so p99 of a
/// distribution entirely inside one bucket is still <= max().
///
/// Percentile edge contract (cumulative AND windowed):
///   * empty (no samples / empty window)  -> 0.0, always
///   * a single sample                    -> that sample, for every p
///   * p <= 0 -> observed min, p >= 1 -> observed max
/// These are definitions, not interpolation accidents, and are pinned by
/// tests/metrics/test_registry.cpp.
///
/// Sliding window: set_window(n) additionally retains the last n raw
/// observations in a ring. window_percentile(p) is the *exact* nearest-rank
/// (ceil(p*n)) percentile of that window -- no bucket interpolation -- so
/// tail percentiles over recent traffic (windowed p99.9) are exact sample
/// values. With fewer than ceil(1/(1-p)) samples the nearest-rank tail is
/// the window max (e.g. p99.9 of a 100-sample window is its max); this is
/// the defined behavior, not an error. Window state is run-local recency:
/// merge() combines cumulative buckets only and never transfers or mixes
/// windows.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

  /// Exponential-ish bounds 1-2-5 per decade over [lo, hi]; the standard
  /// latency bucketing (picoseconds).
  static std::vector<double> exponential_bounds(double lo, double hi) {
    std::vector<double> b;
    for (double decade = 1.0; decade <= hi; decade *= 10.0) {
      for (double m : {1.0, 2.0, 5.0}) {
        const double bound = decade * m;
        if (bound >= lo && bound <= hi) b.push_back(bound);
      }
    }
    if (b.empty() || b.back() < hi) b.push_back(hi);
    return b;
  }

  /// One bucket per integer level in [0, capacity] (occupancy histograms).
  static std::vector<double> linear_bounds(unsigned capacity) {
    std::vector<double> b;
    b.reserve(capacity + 1);
    for (unsigned i = 0; i <= capacity; ++i) b.push_back(static_cast<double>(i));
    return b;
  }

  void observe(double x) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    if (!window_.empty()) {
      window_[window_next_] = x;
      window_next_ = (window_next_ + 1) % window_.size();
      if (window_count_ < window_.size()) ++window_count_;
    }
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// p in [0, 1]; linear interpolation across the selected bucket, clamped
  /// to [observed min, observed max]. Edge contract (see class comment):
  /// 0 when empty, the sample itself when count()==1, min at p<=0 and max
  /// at p>=1.
  double percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    if (count_ == 1 || p >= 1.0) return max_;
    if (p <= 0.0) return min_;
    const double rank = p * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const double lo_cum = static_cast<double>(cum);
      cum += counts_[i];
      if (static_cast<double>(cum) >= rank) {
        const double lo = i == 0 ? min_ : bounds_[i - 1];
        const double hi = i < bounds_.size() ? bounds_[i] : max_;
        const double frac =
            (rank - lo_cum) / static_cast<double>(counts_[i]);
        const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        return std::clamp(v, min_, max_);
      }
    }
    return max_;
  }

  // -- sliding window (windowed tail percentiles; see class comment) -------

  /// Retains the last `n` raw observations (0 disables and frees the ring).
  /// Existing window contents are dropped on resize.
  void set_window(std::size_t n) {
    window_.assign(n, 0.0);
    if (n == 0) window_.shrink_to_fit();
    window_count_ = 0;
    window_next_ = 0;
  }
  std::size_t window_capacity() const noexcept { return window_.size(); }
  /// Observations currently in the window (<= capacity).
  std::size_t window_count() const noexcept { return window_count_; }
  /// Drops window contents, keeps the capacity (per-run reuse hook).
  void clear_window() noexcept {
    window_count_ = 0;
    window_next_ = 0;
  }

  /// Exact nearest-rank percentile of the sliding window: the
  /// ceil(p * window_count())-th smallest retained sample. Edge contract:
  /// empty window -> 0.0; single sample -> that sample for every p; p <= 0
  /// -> window min; p >= 1 -> window max. p99.9 with fewer than 1000
  /// samples is the window max by construction.
  double window_percentile(double p) const {
    if (window_count_ == 0) return 0.0;
    std::vector<double> sorted(window_.begin(),
                               window_.begin() +
                                   static_cast<std::ptrdiff_t>(window_count_));
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0) return sorted.front();
    if (p >= 1.0) return sorted.back();
    const auto n = static_cast<double>(window_count_);
    std::size_t rank = static_cast<std::size_t>(std::ceil(p * n));
    if (rank == 0) rank = 1;
    if (rank > window_count_) rank = window_count_;
    return sorted[rank - 1];
  }

  /// Campaign reduction: bucket-wise sum plus combined count/sum/min/max.
  /// Both histograms must share one bucket layout (campaign shards attach
  /// metrics through the same code, so layouts agree by construction);
  /// merging disagreeing layouts throws ConfigError. Percentiles of the
  /// merged histogram are exactly the percentiles of the pooled samples
  /// (to bucket resolution) -- merge then interpolate, never average
  /// per-shard percentiles.
  void merge(const Histogram& other) {
    if (other.bounds_ != bounds_) {
      throw ConfigError(
          "Histogram::merge: bucket layouts differ (" +
          std::to_string(bounds_.size()) + " vs " +
          std::to_string(other.bounds_.size()) + " bounds)");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

  /// Checkpoint/wire seam (src/campaignd): replaces this histogram's
  /// cumulative state with an exact snapshot previously captured through
  /// bucket_counts()/count()/sum()/min()/max(), so a restored histogram
  /// merges byte-identically to the original. `counts` must match this
  /// histogram's bucket layout (bounds().size() + 1 entries). The sliding
  /// window is run-local recency and is not part of a snapshot.
  void restore(const std::vector<std::uint64_t>& counts, std::uint64_t count,
               double sum, double min, double max) {
    if (counts.size() != counts_.size()) {
      throw ConfigError("Histogram::restore: snapshot has " +
                        std::to_string(counts.size()) + " buckets, layout has " +
                        std::to_string(counts_.size()));
    }
    counts_ = counts;
    count_ = count;
    sum_ = sum;
    if (count == 0) {
      min_ = std::numeric_limits<double>::infinity();
      max_ = -std::numeric_limits<double>::infinity();
    } else {
      min_ = min;
      max_ = max;
    }
  }

 private:
  std::vector<double> bounds_;          ///< upper bounds, ascending
  std::vector<std::uint64_t> counts_;   ///< bounds_.size() + 1 (+inf tail)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<double> window_;          ///< ring of recent raw samples
  std::size_t window_next_ = 0;         ///< ring write cursor
  std::size_t window_count_ = 0;        ///< valid samples in the ring
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// All three resolve-or-create; returned references are stable for the
  /// registry's lifetime. histogram() ignores `upper_bounds` when the
  /// metric already exists.
  Counter& counter(const std::string& instance, const std::string& name) {
    return instances_[instance].counters[name];
  }
  Gauge& gauge(const std::string& instance, const std::string& name) {
    return instances_[instance].gauges[name];
  }
  Histogram& histogram(const std::string& instance, const std::string& name,
                       std::vector<double> upper_bounds) {
    auto& m = instances_[instance].histograms;
    auto it = m.find(name);
    if (it == m.end()) {
      it = m.emplace(name, Histogram(std::move(upper_bounds))).first;
      if (default_window_ != 0) it->second.set_window(default_window_);
    }
    return it->second;
  }

  /// Sliding-window capacity applied to histograms created *after* this
  /// call (sim::Telemetry arms it before components construct, so every
  /// component histogram gets a window without per-callsite changes).
  /// 0 (the default) creates histograms without a window.
  void set_default_window(std::size_t n) noexcept { default_window_ = n; }
  std::size_t default_window() const noexcept { return default_window_; }

  /// Campaign reduction: accumulates every instance/metric of `other` into
  /// this registry (creating absent ones). Counters and histogram buckets
  /// add, gauges take the max -- all commutative and associative, so
  /// merging per-worker registries yields the same artifact regardless of
  /// worker count or completion order. Histogram layout mismatches throw
  /// ConfigError (see Histogram::merge).
  void merge(const Registry& other) {
    for (const auto& [iname, oinst] : other.instances_) {
      Instance& inst = instances_[iname];
      for (const auto& [n, c] : oinst.counters) inst.counters[n].merge(c);
      for (const auto& [n, g] : oinst.gauges) inst.gauges[n].merge(g);
      for (const auto& [n, h] : oinst.histograms) {
        const auto it = inst.histograms.find(n);
        if (it == inst.histograms.end()) {
          inst.histograms.emplace(n, Histogram(h.bounds())).first->second.merge(
              h);
        } else {
          it->second.merge(h);
        }
      }
    }
  }

  /// Drops every instance and metric; keeps the default window. Handles
  /// returned earlier are invalidated -- only use between runs, before
  /// components re-resolve their metrics (the campaign engine's per-run
  /// isolation hook).
  void clear() { instances_.clear(); }

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& instance,
                              const std::string& name) const {
    return find(instance, &Instance::counters, name);
  }
  const Gauge* find_gauge(const std::string& instance,
                          const std::string& name) const {
    return find(instance, &Instance::gauges, name);
  }
  const Histogram* find_histogram(const std::string& instance,
                                  const std::string& name) const {
    return find(instance, &Instance::histograms, name);
  }

  /// Deterministic per-tick snapshot walk (sim::Telemetry): every metric in
  /// (instance name, metric name) map order. CFn(instance, name, counter),
  /// GFn(instance, name, gauge), HFn(instance, name, histogram).
  template <typename CFn, typename GFn, typename HFn>
  void visit(CFn&& on_counter, GFn&& on_gauge, HFn&& on_histogram) const {
    for (const auto& [iname, inst] : instances_) {
      for (const auto& [n, c] : inst.counters) on_counter(iname, n, c);
      for (const auto& [n, g] : inst.gauges) on_gauge(iname, n, g);
      for (const auto& [n, h] : inst.histograms) on_histogram(iname, n, h);
    }
  }

  std::size_t instance_count() const noexcept { return instances_.size(); }
  std::vector<std::string> instance_names() const {
    std::vector<std::string> names;
    names.reserve(instances_.size());
    for (const auto& [k, v] : instances_) names.push_back(k);
    return names;
  }

  /// {"<instance>": {"counters": {...}, "gauges": {...},
  ///                 "histograms": {"<name>": {"count":..,"mean":..,
  ///                   "p50":..,"p95":..,"p99":..,"max":..,
  ///                   "buckets":[[bound,count],...]}}}}
  std::string to_json() const {
    std::ostringstream os;
    os << "{";
    bool first_inst = true;
    for (const auto& [iname, inst] : instances_) {
      if (!first_inst) os << ",";
      first_inst = false;
      os << "\n  \"" << sim::json_escape(iname) << "\": {";
      bool first_block = true;
      if (!inst.counters.empty()) {
        os << "\n    \"counters\": {";
        bool first = true;
        for (const auto& [n, c] : inst.counters) {
          if (!first) os << ", ";
          first = false;
          os << "\"" << sim::json_escape(n) << "\": " << c.value();
        }
        os << "}";
        first_block = false;
      }
      if (!inst.gauges.empty()) {
        if (!first_block) os << ",";
        os << "\n    \"gauges\": {";
        bool first = true;
        for (const auto& [n, g] : inst.gauges) {
          if (!first) os << ", ";
          first = false;
          os << "\"" << sim::json_escape(n) << "\": " << json_number(g.value());
        }
        os << "}";
        first_block = false;
      }
      if (!inst.histograms.empty()) {
        if (!first_block) os << ",";
        os << "\n    \"histograms\": {";
        bool first = true;
        for (const auto& [n, h] : inst.histograms) {
          if (!first) os << ",";
          first = false;
          os << "\n      \"" << sim::json_escape(n) << "\": {"
             << "\"count\": " << h.count() << ", \"mean\": "
             << json_number(h.mean()) << ", \"min\": " << json_number(h.min())
             << ", \"p50\": " << json_number(h.percentile(0.50))
             << ", \"p95\": " << json_number(h.percentile(0.95))
             << ", \"p99\": " << json_number(h.percentile(0.99))
             << ", \"max\": " << json_number(h.max()) << ", \"buckets\": [";
          const auto& bounds = h.bounds();
          const auto& counts = h.bucket_counts();
          bool first_b = true;
          for (std::size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] == 0) continue;  // sparse: elide empty buckets
            if (!first_b) os << ", ";
            first_b = false;
            os << "["
               << (i < bounds.size() ? json_number(bounds[i])
                                     : std::string("\"+inf\""))
               << ", " << counts[i] << "]";
          }
          os << "]}";
        }
        os << "\n    }";
      }
      os << "\n  }";
    }
    os << "\n}";
    return os.str();
  }

  /// instance,metric,kind,count,mean,p50,p95,p99,max -- one row per metric.
  std::string to_csv() const {
    std::ostringstream os;
    os << "instance,metric,kind,count,mean,p50,p95,p99,max\n";
    for (const auto& [iname, inst] : instances_) {
      for (const auto& [n, c] : inst.counters) {
        os << iname << "," << n << ",counter," << c.value() << ",,,,,\n";
      }
      for (const auto& [n, g] : inst.gauges) {
        os << iname << "," << n << ",gauge,," << g.value() << ",,,,\n";
      }
      for (const auto& [n, h] : inst.histograms) {
        os << iname << "," << n << ",histogram," << h.count() << ","
           << h.mean() << "," << h.percentile(0.50) << ","
           << h.percentile(0.95) << "," << h.percentile(0.99) << ","
           << h.max() << "\n";
      }
    }
    return os.str();
  }

  /// Attaches this registry as `report`'s "metrics" JSON section (see
  /// Report::to_json). The registry must outlive the report binding.
  void bind(sim::Report& report) {
    report.set_metrics_json_provider([this] { return to_json(); });
  }

  /// One kInfo "metrics" report line per histogram (its percentile summary)
  /// at time `t` -- the Coverage::report_into idiom.
  void report_into(sim::Report& r, sim::Time t) const {
    for (const auto& [iname, inst] : instances_) {
      for (const auto& [n, h] : inst.histograms) {
        std::ostringstream line;
        line << iname << "." << n << ": count=" << h.count()
             << " p50=" << h.percentile(0.50) << " p95=" << h.percentile(0.95)
             << " p99=" << h.percentile(0.99) << " max=" << h.max();
        r.add(t, sim::Severity::kInfo, "metrics", line.str());
      }
    }
  }

 private:
  struct Instance {
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
  };

  template <typename Map>
  const typename Map::mapped_type* find(const std::string& instance,
                                        Map Instance::*member,
                                        const std::string& name) const {
    const auto it = instances_.find(instance);
    if (it == instances_.end()) return nullptr;
    const Map& m = it->second.*member;
    const auto mit = m.find(name);
    return mit == m.end() ? nullptr : &mit->second;
  }

  /// JSON has no inf/nan; emit finite decimal (histograms clamp to observed
  /// extremes so this only defends gauges fed bad values).
  static std::string json_number(double v) {
    if (!std::isfinite(v)) return "0";
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::map<std::string, Instance> instances_;
  std::size_t default_window_ = 0;  ///< window for histograms created later
};

}  // namespace mts::metrics
