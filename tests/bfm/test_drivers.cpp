#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "gates/netlist.hpp"
#include "sync/clock.hpp"

namespace mts::bfm {
namespace {

using sim::Time;

TEST(SyncPutDriverTest, RespectsFullFlag) {
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  sync::Clock clk(sim, "clk", {2000, 1000, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Wire& req = nl.wire("req");
  sim::Word& data = nl.word("data");
  sim::Wire& full = nl.wire("full");
  SyncPutDriver drv(sim, "drv", clk.out(), req, data, full, dm, {1.0, 1}, 0xFF);

  sim.run_until(10'000);
  EXPECT_TRUE(req.read());
  const auto offered_before = drv.offered();

  full.set(true);
  sim.run_until(30'000);
  EXPECT_FALSE(req.read());
  // At most one more offer could have raced the flag.
  EXPECT_LE(drv.offered(), offered_before + 1);

  full.set(false);
  sim.run_until(40'000);
  EXPECT_TRUE(req.read());
  EXPECT_GT(drv.offered(), offered_before);
}

TEST(SyncPutDriverTest, RateZeroNeverOffers) {
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  sync::Clock clk(sim, "clk", {2000, 1000, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Wire& req = nl.wire("req");
  sim::Word& data = nl.word("data");
  sim::Wire& full = nl.wire("full");
  SyncPutDriver drv(sim, "drv", clk.out(), req, data, full, dm, {0.0, 1}, 0xFF);
  sim.run_until(50'000);
  EXPECT_EQ(drv.offered(), 0u);
  EXPECT_FALSE(req.read());
}

TEST(SyncPutDriverTest, ValuesCountUpMasked) {
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  sync::Clock clk(sim, "clk", {2000, 1000, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Wire& req = nl.wire("req");
  sim::Word& data = nl.word("data");
  sim::Wire& full = nl.wire("full");
  SyncPutDriver drv(sim, "drv", clk.out(), req, data, full, dm, {1.0, 14}, 0xF);
  // Edges at 1000, 3000, 5000; decisions clk-to-q after each edge.
  sim.run_until(2'500);
  EXPECT_EQ(data.read(), 14u);
  sim.run_until(4'500);
  EXPECT_EQ(data.read(), 15u);
  sim.run_until(6'500);  // wraps: 16 & 0xF == 0
  EXPECT_EQ(data.read(), 0u);
}

TEST(AsyncPutDriverTest, FourPhaseSequenceAgainstEagerReceiver) {
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  gates::Netlist nl(sim, "t");
  sim::Wire& req = nl.wire("req");
  sim::Wire& ack = nl.wire("ack");
  sim::Word& data = nl.word("data");
  Scoreboard sb(sim, "sb");
  AsyncPutDriver drv(sim, "drv", req, ack, data, dm, 500, 0xFF, &sb);
  // Eager receiver: ack follows req both ways.
  req.on_change([&](bool, bool now) {
    ack.write(now, 200, sim::DelayKind::kTransport);
  });
  sim.run_until(100'000);
  EXPECT_GT(drv.completed(), 20u);
  // Expectations are recorded at issue time; at most one handshake can be
  // in flight.
  EXPECT_GE(sb.pushed(), drv.completed());
  EXPECT_LE(sb.pushed() - drv.completed(), 1u);
}

TEST(RsSourceSinkTest, AccountingAgreesEndToEnd) {
  // Directly wire a source to a sink (a zero-length link) and verify their
  // transfer accounting matches cycle for cycle.
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  sync::Clock clk(sim, "clk", {2000, 1000, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Word& d = nl.word("d");
  sim::Wire& v = nl.wire("v");
  sim::Wire& s = nl.wire("s");
  Scoreboard sb(sim, "sb");
  RsSource src(sim, "src", clk.out(), d, v, s, dm, 0.7, 0xFF, sb);
  RsSink sink(sim, "sink", clk.out(), d, v, s, dm, 0.3, sb);
  sim.run_until(2'000'000);
  EXPECT_GT(sink.received_valid(), 300u);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_LE(sb.in_flight(), 1u);
}

}  // namespace
}  // namespace mts::bfm
