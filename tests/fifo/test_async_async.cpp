#include "fifo/async_async_fifo.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"

namespace mts::fifo {
namespace {

FifoConfig small_cfg(unsigned capacity = 4, unsigned width = 8) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

TEST(AsyncAsyncFifo, StartsIdle) {
  sim::Simulation sim;
  AsyncAsyncFifo dut(sim, "dut", small_cfg());
  sim.run_until(10000);
  EXPECT_EQ(dut.occupancy(), 0u);
  EXPECT_FALSE(dut.put_ack().read());
  EXPECT_FALSE(dut.get_ack().read());
}

TEST(AsyncAsyncFifo, FullySelfTimedRoundTrip) {
  sim::Simulation sim(1);
  FifoConfig cfg = small_cfg(8);
  AsyncAsyncFifo dut(sim, "dut", cfg);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, 0, 0xFF, &sb);
  bfm::AsyncGetDriver get(sim, "get", dut.get_req(), dut.get_ack(),
                          dut.get_data(), cfg.dm, 0, &sb);
  sim.run_until(2'000'000);  // 2us of free-running handshakes
  EXPECT_GT(get.completed(), 200u);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dut.overflow_count(), 0u);
  EXPECT_EQ(dut.underflow_count(), 0u);
}

TEST(AsyncAsyncFifo, GetBlocksOnEmptyPutBlocksOnFull) {
  sim::Simulation sim(1);
  FifoConfig cfg = small_cfg(4);
  AsyncAsyncFifo dut(sim, "dut", cfg);
  bfm::Scoreboard sb(sim, "sb");

  // Reader first: must hang.
  bfm::AsyncGetDriver get(sim, "get", dut.get_req(), dut.get_ack(),
                          dut.get_data(), cfg.dm, 0, &sb);
  sim.run_until(100'000);
  EXPECT_EQ(get.completed(), 0u);
  EXPECT_TRUE(dut.get_req().read());

  // Writer appears and saturates: reader unblocks; writer eventually rides
  // the full boundary.
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, 0, 0xFF, &sb);
  sim.run_until(2'000'000);
  EXPECT_GT(get.completed(), 100u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(AsyncAsyncFifo, FillsCompletelyThenStops) {
  sim::Simulation sim(1);
  FifoConfig cfg = small_cfg(4);
  AsyncAsyncFifo dut(sim, "dut", cfg);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, 0, 0xFF, &sb);
  sim.run_until(1'000'000);
  // No detectors on a purely asynchronous FIFO: every cell fills.
  EXPECT_EQ(dut.occupancy(), 4u);
  EXPECT_EQ(put.completed(), 4u);
  EXPECT_TRUE(dut.put_req().read());   // fifth put pending
  EXPECT_FALSE(dut.put_ack().read());  // ...unacknowledged
  EXPECT_EQ(dut.overflow_count(), 0u);
}

TEST(AsyncAsyncFifo, MismatchedRatesPreserveOrder) {
  sim::Simulation sim(7);
  FifoConfig cfg = small_cfg(4);
  AsyncAsyncFifo dut(sim, "dut", cfg);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, 12'000, 0xFF, &sb);
  bfm::AsyncGetDriver get(sim, "get", dut.get_req(), dut.get_ack(),
                          dut.get_data(), cfg.dm, 1'000, &sb);
  sim.run_until(3'000'000);
  EXPECT_GT(get.completed(), 100u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(AsyncAsyncFifo, RelayStationVariantRejected) {
  sim::Simulation sim;
  FifoConfig cfg = small_cfg();
  cfg.controller = ControllerKind::kRelayStation;
  EXPECT_THROW(AsyncAsyncFifo(sim, "f", cfg), ConfigError);
}

}  // namespace
}  // namespace mts::fifo
