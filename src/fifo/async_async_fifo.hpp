// Async-async FIFO: the token-ring asynchronous FIFO of Chelcea & Nowick,
// ASYNC'00 [4] -- the substrate design whose put half the paper reuses.
//
// Both interfaces are 4-phase single-rail bundled data. Cells are
// AsyncPutPart + AsyncGetPart glued by the serialized DV net. There are no
// clocks, detectors or synchronizers: a full FIFO withholds put_ack, an
// empty FIFO withholds get_ack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fifo/cell_parts.hpp"
#include "fifo/config.hpp"
#include "gates/netlist.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::fifo {

class AsyncAsyncFifo {
 public:
  AsyncAsyncFifo(sim::Simulation& sim, const std::string& name,
                 const FifoConfig& cfg);

  AsyncAsyncFifo(const AsyncAsyncFifo&) = delete;
  AsyncAsyncFifo& operator=(const AsyncAsyncFifo&) = delete;

  // --- put interface (asynchronous) ---
  sim::Wire& put_req() noexcept { return *put_req_; }
  sim::Word& put_data() noexcept { return *put_data_; }
  sim::Wire& put_ack() noexcept { return *put_ack_; }

  // --- get interface (asynchronous) ---
  sim::Wire& get_req() noexcept { return *get_req_; }
  sim::Wire& get_ack() noexcept { return *get_ack_; }
  sim::Word& get_data() noexcept { return *get_data_; }

  // --- diagnostics ---
  std::uint64_t overflow_count() const noexcept { return overflows_; }
  std::uint64_t underflow_count() const noexcept { return underflows_; }
  unsigned occupancy() const;

  const FifoConfig& config() const noexcept { return cfg_; }

 private:
  sim::Simulation& sim_;
  FifoConfig cfg_;
  gates::Netlist nl_;

  sim::Wire* put_req_ = nullptr;
  sim::Word* put_data_ = nullptr;
  sim::Wire* put_ack_ = nullptr;
  sim::Wire* get_req_ = nullptr;
  sim::Wire* get_ack_ = nullptr;
  sim::Word* get_data_ = nullptr;

  std::vector<sim::Wire*> e_;
  std::vector<sim::Wire*> f_;

  std::uint64_t overflows_ = 0;
  std::uint64_t underflows_ = 0;
};

}  // namespace mts::fifo
