#include "metrics/table.hpp"

#include <cstdio>
#include <utility>

#include "sim/error.hpp"

namespace mts::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw ConfigError("Table: needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw ConfigError("Table: row arity " + std::to_string(cells.size()) +
                      " != header arity " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

}  // namespace mts::metrics
