# Empty compiler generated dependencies file for mts_test_sim.
# This may be replaced when dependencies are built.
