// Parallel campaign engine: fans a declarative run matrix (config grid x
// replica range) across a worker thread pool, each worker owning one fully
// isolated simulation shard.
//
// The mixed-timing workloads that dominate this repo -- fuzz campaigns,
// accelerated MTBF soaks, the Table 1 / sync-depth / matrix sweeps -- are
// embarrassingly parallel: N independent Simulations with disjoint
// schedulers, pools and RNG streams. A Campaign exploits exactly that and
// nothing more:
//
//   * Sharding. Each worker thread owns a Simulation, a metrics::Registry
//     and a Report for its whole lifetime. Nothing inside a run body is
//     shared across threads; the only cross-thread state is the atomic
//     next-run cursor and the pre-sized result vector (each run writes its
//     own element).
//
//   * Arena reuse. Between runs a worker calls Simulation::reset(seed),
//     which drains the scheduler's delta ring and heap WITHOUT releasing
//     their grown storage -- so after the first run on each worker, runs
//     schedule into warm arenas and the steady state stays allocation-free
//     (the PR-1 kernel property, preserved under the pool).
//
//   * Determinism. Run `i`'s seed is campaign_run_seed(campaign seed, i) --
//     a pure function of the campaign seed and the run index, never of the
//     worker that happens to execute it. An N-worker campaign therefore
//     produces bit-identical per-run results to the 1-worker (sequential)
//     campaign; only completion order differs. Bodies that need
//     fault-injection randomness construct a FaultPlan(ctx.spec().seed)
//     inside the body: plan RNG is then per-run, not per-worker.
//
//   * Mergeable reduction. Per-worker registries and reports reduce into
//     one campaign-level artifact through metrics::Registry::merge /
//     Report::merge (commutative, associative), so the merged JSON is also
//     independent of worker count. Coverage is merged the same way on the
//     caller's side (metrics::Coverage::merge) because mts_sim cannot link
//     mts_metrics' attachers.
//
// The body runs on pool threads: it must only touch the CampaignContext,
// its per-run locals, and read-only captures (per-worker slots indexed by
// ctx.worker() are fine). gtest assertions belong on the caller's thread,
// after run() returns -- record findings in RunResult scalars instead.
//
// Run supervision (CampaignOptions knobs, all off by default):
//
//   * Failure capture. A thrown body exception records the demangled
//     exception TYPE alongside what(), the config/rep coordinates and the
//     seed -- enough to re-run that cell in isolation.
//   * Self-healing retries. With max_attempts > 1 a failed run is re-run
//     with the SAME seed (the simulation is deterministic, so a real bug
//     reproduces). All attempts failing identically classifies the run
//     "deterministic"; an eventual pass or differing errors classify it
//     "flaky" (host-dependent: thread timing in the body, wall-clock
//     deadlines).
//   * Quarantine. With quarantine_after > 0, once a config accumulates
//     that many finally-failed runs its remaining cells are skipped
//     ("quarantined") instead of executed, so one broken config cannot eat
//     the campaign's wall-clock budget. Which cells get skipped depends on
//     execution order, so quarantine is inherently placement-dependent:
//     leave it off in determinism-sensitive sweeps.
//   * Repro bundles. With repro_dir set, each finally-failed run writes
//     <repro_dir>/run-<index>.json: coordinates, seeds, error, scalars and
//     the run's recorded protocol violations -- a self-contained repro
//     recipe (see docs/ARCHITECTURE.md section 9).
//   * Deadlines. run_deadline_sec arms a per-attempt sim::Watchdog so a
//     hung run dies with DeadlineError instead of hanging the pool.
//   * Violation collection. collect_violations arms a per-worker
//     verify::Hub (record-and-continue) around every run, so components
//     constructed by the body carry protocol monitors and their findings
//     land in the run's report and repro bundle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "metrics/registry.hpp"  // header-only by design; no link edge
#include "metrics/timeseries.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace mts::verify {
class Hub;
}  // namespace mts::verify

namespace mts::sim {

class Telemetry;

/// A windowed-percentile service-level objective evaluated by the engine
/// after every run, against that run's ISOLATED registry (enabling
/// telemetry or an SLO switches the engine to a fresh per-run registry --
/// cumulative worker state would make the verdicts depend on run
/// placement; the isolated registry stays out of the campaign reduction,
/// whose artifact keeps only body-written ctx.metrics()). Every histogram
/// named `metric`, in any instance, is checked: its sliding-window
/// percentile (cumulative-bucket percentile when no window is armed) must
/// not exceed `budget`. Breaches are recorded per run (RunResult), folded
/// into the merged Report in run-index order, and -- with fail_run -- fail
/// the run like a thrown body exception.
struct SloGate {
  std::string metric = "latency_ps";  ///< histogram name to gate
  double percentile = 0.99;           ///< in (0, 1]
  double budget = 0.0;                ///< max allowed value; <= 0 disables
  bool fail_run = false;              ///< breach fails the run (vs flag)
};

/// Deterministic per-run seed: a splitmix64-style mix of the campaign seed
/// and the run index. Depends on nothing else (not the worker count, not
/// the schedule), which is what makes N-worker campaigns bit-identical to
/// sequential ones. Never returns 0.
std::uint64_t campaign_run_seed(std::uint64_t campaign_seed,
                                std::uint64_t run_index) noexcept;

struct CampaignOptions {
  /// Worker threads; 0 means one per hardware thread. Clamped to the run
  /// count (a 3-run campaign never spawns a 4th idle thread).
  unsigned workers = 0;
  /// Campaign seed: every run's seed derives from (seed, run index).
  std::uint64_t seed = 1;
  /// Store each run's Report as JSON in its RunResult (report_json). The
  /// kernel pool high-water is zeroed in these captures: it reflects the
  /// executing worker's warm arenas (a host detail that varies with run
  /// placement), not the run's behaviour, and per-run captures must be
  /// placement-independent.
  bool capture_run_reports = false;
  /// Total body executions per run (1 = no retries). A failed run re-runs
  /// with the same seed up to this many attempts and is classified
  /// "deterministic" (every attempt failed identically) or "flaky"
  /// (eventual pass, or differing failures).
  unsigned max_attempts = 1;
  /// After this many finally-failed runs of one config, skip its remaining
  /// cells (classification "quarantined"). 0 disables quarantine.
  unsigned quarantine_after = 0;
  /// When non-empty, each finally-failed run writes a self-contained repro
  /// bundle to <repro_dir>/run-<index>.json (directory is created).
  std::string repro_dir;
  /// Per-ATTEMPT wall-clock budget; a run exceeding it fails with
  /// sim::DeadlineError. 0 disables the per-run watchdog.
  double run_deadline_sec = 0.0;
  /// Arm a per-worker verify::Hub (policy kRecord) around every run:
  /// components the body constructs attach protocol monitors, and the
  /// run's violations land in its report, RunResult and repro bundle.
  bool collect_violations = false;

  // -- streaming run telemetry (sim/telemetry.hpp) ------------------------

  /// Sim-time sampling interval for an engine-armed per-run Telemetry.
  /// 0 disables the sampler. When set, the engine arms an Observability
  /// bundle (per-run registry + sampler) on the worker simulation before
  /// every attempt, so components the body constructs pick both up without
  /// body changes; bodies that arm their own bundle simply override it.
  Time telemetry_interval = 0;
  /// Per-series point cap of the per-run sampler (decimation beyond it).
  std::size_t telemetry_max_points = 2048;
  /// Histogram sliding-window capacity while the sampler is armed.
  std::size_t telemetry_window = 512;
  /// When non-empty, each sampled run writes its timeline to
  /// <timeline_dir>/run-<index>.jsonl (directory is created). Content is a
  /// pure function of (campaign seed, run index) -- worker-count
  /// independent.
  std::string timeline_dir;
  /// Store each sampled run's timeline JSONL in RunResult::timeline_jsonl
  /// (memory-heavy for big campaigns; prefer timeline_dir).
  bool capture_timelines = false;

  /// Windowed-percentile SLO gate evaluated after every run (see SloGate).
  SloGate slo;

  // -- streaming campaign health ------------------------------------------

  /// Called with one formatted campaign-health line every `health_every`
  /// completed runs (runs done/failed/quarantined, aggregate runs/sec,
  /// worst slo.metric percentile so far). Invoked under the engine's
  /// health lock, possibly from pool threads; keep it cheap. The line
  /// includes wall-clock rates, so it is a live progress stream, NOT a
  /// deterministic artifact -- that is health_json().
  std::function<void(const std::string&)> progress;
  /// Emit cadence for `progress`, in completed runs; 0 emits only the
  /// final summary line (when `progress` is set).
  std::size_t health_every = 0;
};

/// One cell of the run matrix, in row-major order over (config, rep).
struct RunSpec {
  std::size_t index = 0;   ///< global run index: config * reps + rep
  std::size_t config = 0;  ///< config-grid cell
  std::size_t rep = 0;     ///< replica within the cell (the "seed range")
  std::uint64_t seed = 0;  ///< campaign_run_seed(campaign seed, index)
};

/// What one run left behind. `scalars` is the body's own extract (escape
/// counts, scoreboard errors, throughput...); `artifact` is an optional
/// body-provided JSON fragment embedded verbatim in the campaign JSON.
struct RunResult {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;                      ///< exception text when !ok
  std::map<std::string, double> scalars;  ///< body-recorded per-run numbers
  std::string report_json;                ///< capture_run_reports only
  std::string artifact;                   ///< optional user JSON fragment

  // -- supervision fields (see CampaignOptions) ---------------------------
  std::string error_type;      ///< demangled exception type when !ok
  unsigned attempts = 1;       ///< body executions (0: quarantine-skipped)
  /// "", "deterministic", "flaky" or "quarantined".
  std::string classification;
  std::string repro_path;      ///< repro bundle file when one was written
  std::uint64_t violations = 0;  ///< hub total (collect_violations only)
  std::string violations_json;   ///< hub JSON when violations > 0

  // -- telemetry / SLO fields (engine telemetry or SLO armed only) --------
  std::string timeline_path;   ///< per-run timeline file (timeline_dir)
  std::string timeline_jsonl;  ///< capture_timelines only
  std::uint64_t telemetry_samples = 0;  ///< sampler ticks this run
  double slo_worst = 0.0;      ///< worst observed slo.metric percentile
  std::string slo_worst_instance;  ///< instance holding slo_worst
  std::uint64_t slo_breaches = 0;  ///< instances over budget this run
};

/// The body's window onto its shard: the worker's (reset, reseeded)
/// Simulation, the worker-lifetime metrics registry, this run's spec and
/// the result slot to fill.
class CampaignContext {
 public:
  CampaignContext(Simulation& sim, metrics::Registry& metrics,
                  const RunSpec& spec, unsigned worker, RunResult& result,
                  unsigned attempt = 1, verify::Hub* monitors = nullptr,
                  Telemetry* telemetry = nullptr)
      : sim_(sim),
        metrics_(metrics),
        spec_(spec),
        worker_(worker),
        result_(result),
        attempt_(attempt),
        monitors_(monitors),
        telemetry_(telemetry) {}

  CampaignContext(const CampaignContext&) = delete;
  CampaignContext& operator=(const CampaignContext&) = delete;

  /// This run's Simulation: already reset to time 0 and seeded with
  /// spec().seed, arenas warm from the worker's previous runs. Bodies that
  /// key their stimulus on a table of their own seeds may reset it again
  /// (ctx.sim().reset(my_seed)) -- arena reuse is unaffected.
  Simulation& sim() noexcept { return sim_; }

  /// The worker's registry: accumulates across every run this worker
  /// executes and reduces into Campaign::merged_metrics() at the end. For
  /// per-run isolated metrics, use a body-local Registry instead.
  metrics::Registry& metrics() noexcept { return metrics_; }

  const RunSpec& spec() const noexcept { return spec_; }

  /// Stable worker index in [0, workers()): the per-worker-slot key for
  /// caller-side sinks like Coverage that cannot live inside the engine.
  unsigned worker() const noexcept { return worker_; }

  RunResult& result() noexcept { return result_; }

  /// Shorthand: result().scalars[name] = v.
  void set(const std::string& name, double v) { result_.scalars[name] = v; }

  /// 1-based attempt number for this execution (retries re-run the same
  /// seed with increasing attempt numbers; see CampaignOptions).
  unsigned attempt() const noexcept { return attempt_; }

  /// The engine-armed violation hub (CampaignOptions::collect_violations),
  /// already armed on sim() and cleared for this attempt; nullptr when
  /// collection is off. Bodies may tighten policies on it per run.
  verify::Hub* monitors() const noexcept { return monitors_; }

  /// The engine-armed per-run telemetry sampler (telemetry_interval > 0),
  /// already started on sim() for this attempt; nullptr when engine
  /// telemetry is off. Bodies may add_source() their own probes.
  Telemetry* telemetry() const noexcept { return telemetry_; }

 private:
  Simulation& sim_;
  metrics::Registry& metrics_;
  const RunSpec& spec_;
  unsigned worker_;
  RunResult& result_;
  unsigned attempt_ = 1;
  verify::Hub* monitors_ = nullptr;
  Telemetry* telemetry_ = nullptr;
};

struct Observability;

/// Worker-lifetime shard state for the single-run executor: the Simulation
/// whose arenas stay warm across every run this shard executes, its
/// metric/report accumulators, and (collect_violations only) the hub its
/// runs' monitors report into. One shard is owned by one executor at a
/// time -- a pool thread inside Campaign::run, or a campaignd worker
/// process (src/campaignd) for its whole lifetime.
struct RunShard {
  /// `opt` sizes the optional engine-telemetry sampler (telemetry_interval
  /// > 0 allocates it with the campaign's TelemetryConfig).
  explicit RunShard(const CampaignOptions& opt);
  RunShard();
  ~RunShard();
  RunShard(const RunShard&) = delete;
  RunShard& operator=(const RunShard&) = delete;

  Simulation sim;
  /// Worker-lifetime accumulator behind CampaignContext::metrics().
  metrics::Registry registry;
  /// Engine telemetry / SLO isolated per-run registry: components the body
  /// builds resolve their metrics here -- cleared before every attempt --
  /// so per-run timelines and SLO verdicts never see another run's samples
  /// and stay independent of run placement.
  metrics::Registry run_registry;
  std::unique_ptr<verify::Hub> hub;  ///< collect_violations shard hub
  std::unique_ptr<Telemetry> tel;    ///< telemetry_interval > 0 only
  std::unique_ptr<Observability> obs;  ///< the engine-armed bundle
};

class Campaign {
 public:
  /// The run body. Invoked once per matrix cell, on a pool thread; must be
  /// safe to call concurrently from `workers()` threads (touch only the
  /// context, per-run locals, read-only captures and ctx.worker()-indexed
  /// slots). A thrown exception fails that run (RunResult::ok == false,
  /// error == what()) without stopping the campaign.
  using Body = std::function<void(CampaignContext&)>;

  /// A `configs` x `reps` matrix: run index = config * reps + rep.
  Campaign(std::size_t configs, std::size_t reps, CampaignOptions opt = {});

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  std::size_t configs() const noexcept { return configs_; }
  std::size_t reps() const noexcept { return reps_; }
  std::size_t runs() const noexcept { return configs_ * reps_; }
  unsigned workers() const noexcept { return workers_; }
  std::uint64_t seed() const noexcept { return opt_.seed; }

  /// Executes every cell of the matrix across the pool and reduces the
  /// shards. Blocks until all runs finish. May be called once.
  void run(const Body& body);

  // -- results (valid after run()) ----------------------------------------

  /// Per-run results in run-index order, independent of worker count.
  const std::vector<RunResult>& results() const noexcept { return results_; }

  /// Reduction of every worker's registry (counters add, gauges max,
  /// histogram buckets add).
  const metrics::Registry& merged_metrics() const noexcept { return merged_; }

  /// Reduction of every run's Report, folded in run-index order so entry
  /// order and the entry cap are worker-count independent too. Kernel
  /// counters aggregate across runs (events add, peak depth maxes); the
  /// pool high-water reads 0 -- arena capacity belongs to the worker, not
  /// to any run (see CampaignOptions::capture_run_reports).
  const Report& merged_report() const noexcept { return merged_report_; }

  /// Runs whose body threw (quarantine-skipped cells included).
  std::size_t failed() const noexcept;

  /// Config indices quarantined during the run (quarantine_after > 0);
  /// sorted ascending.
  const std::vector<std::size_t>& quarantined() const noexcept {
    return quarantined_;
  }
  bool config_quarantined(std::size_t config) const noexcept {
    for (std::size_t q : quarantined_) {
      if (q == config) return true;
    }
    return false;
  }

  /// Index-ordered fold of every sampled run's timeline (engine telemetry
  /// only): run 0's points first, then run 1's, series-by-series -- the
  /// same run-index-order contract as the Report fold, so the merged store
  /// (and its exports) are worker-count independent. Per-run sim times
  /// overlap (every run starts at t=0); consumers group by run via the
  /// per-run artifacts when they need separation.
  const metrics::TimeSeriesStore& merged_timeline() const noexcept {
    return merged_timeline_;
  }

  /// Deterministic campaign-health document: run totals (ok / failed /
  /// quarantined), SLO breach totals, the worst observed slo.metric
  /// percentile and its run, and the quarantined-config list -- all
  /// derived from results() in run-index order, so the document is
  /// byte-identical across worker counts. include_host_stats=true appends
  /// the volatile host section (workers, wall seconds, runs/sec).
  std::string health_json(bool include_host_stats = false) const;

  /// Writes health_json() to `path`; returns false (no throw) on I/O
  /// failure.
  bool write_health_json(const std::string& path,
                         bool include_host_stats = false) const;

  double wall_seconds() const noexcept { return wall_seconds_; }
  double runs_per_sec() const noexcept {
    return wall_seconds_ > 0.0
               ? static_cast<double>(runs()) / wall_seconds_
               : 0.0;
  }

  /// The campaign-level JSON artifact: matrix shape + seed, per-run
  /// results in index order, and the merged report/metrics reduction.
  /// With include_host_stats=false the volatile host section (worker
  /// count, wall time, runs/sec) is omitted and the document is
  /// bit-identical across worker counts -- the determinism suite diffs
  /// exactly this.
  std::string to_json(bool include_host_stats = true) const;

  /// Writes to_json() to `path`; returns false (with no throw) on I/O
  /// failure so benches can run from read-only trees.
  bool write_json(const std::string& path,
                  bool include_host_stats = true) const;

 private:
  void worker_loop(RunShard& w, unsigned worker_index, const Body& body);
  /// Streaming-health bookkeeping after one run completes: updates the
  /// shared tallies and emits a progress line on the configured cadence.
  void note_run_done(const RunResult& r);

  std::size_t configs_;
  std::size_t reps_;
  CampaignOptions opt_;
  unsigned workers_ = 1;
  bool ran_ = false;

  std::vector<RunResult> results_;
  std::vector<Report> run_reports_;  // merge staging; cleared after run()
  // Per-run timeline staging (engine telemetry only), folded in run-index
  // order into merged_timeline_ after the pool joins.
  std::vector<metrics::TimeSeriesStore> run_timelines_;
  metrics::Registry merged_;
  Report merged_report_;
  metrics::TimeSeriesStore merged_timeline_;
  std::vector<std::size_t> quarantined_;
  double wall_seconds_ = 0.0;

  // Work distribution: pool threads claim run indices from this cursor.
  // Defined in campaign.cpp to keep <atomic>/<thread> out of the header.
  struct Cursor;
  Cursor* cursor_ = nullptr;
  // Streaming-health accounting (progress sink); campaign.cpp-local type.
  struct Live;
  Live* live_ = nullptr;
};

// -- single-run executor (shared with src/campaignd) ------------------------

/// Executes every attempt of run `spec` on `shard`, exactly as a
/// Campaign::run pool thread would: same-seed retries with
/// flaky/deterministic classification, per-attempt watchdog deadline,
/// violation hub, engine telemetry and SLO verdicts. Fills `result` and --
/// when report_out is non-null -- the run's placement-independent Report
/// snapshot (kernel pool high-water zeroed). With engine telemetry armed
/// and timeline_out non-null, the run's sampled series are copied there
/// (left empty when the sampler never ticked). Quarantine gating and repro
/// bundles stay with the caller: this function never touches state outside
/// the shard and its three out-parameters, which is what lets a campaignd
/// worker process produce bit-identical runs to the in-process pool.
void execute_run(RunShard& shard, const CampaignOptions& opt,
                 const RunSpec& spec, unsigned worker_index,
                 const Campaign::Body& body, RunResult& result,
                 Report* report_out, metrics::TimeSeriesStore* timeline_out);

/// Writes <dir>/run-<index>.json -- the self-contained repro bundle
/// (coordinates incl. matrix shape, seeds, failure, scalars, violations)
/// for a finally-failed run -- and records its path in `result`. Returns
/// false on I/O failure without throwing: bundles are best-effort, the
/// in-memory RunResult is authoritative. Shared by Campaign and the
/// campaignd coordinator/worker so bundles are byte-identical either way.
bool write_repro_bundle(const std::string& dir, std::uint64_t campaign_seed,
                        std::size_t configs, std::size_t reps,
                        const RunSpec& spec, RunResult& result);

// -- canonical campaign artifacts (shared with src/campaignd) ---------------

/// Inputs to the canonical campaign artifact generators. Campaign::to_json
/// / health_json and the campaignd coordinator both render their documents
/// through these, so a distributed campaign's artifacts are byte-identical
/// to the in-process engine's by construction.
struct CampaignArtifacts {
  std::size_t configs = 0;
  std::size_t reps = 0;
  std::uint64_t seed = 1;
  const std::vector<RunResult>* results = nullptr;        ///< run-index order
  const Report* report = nullptr;                         ///< merged fold
  const metrics::Registry* metrics = nullptr;             ///< merged fold
  /// Quarantined config list (nullptr or empty: section omitted).
  const std::vector<std::size_t>* quarantined_configs = nullptr;
  SloGate slo;                ///< health/slo sections (budget <= 0: omitted)
  unsigned workers = 1;       ///< host section only
  double wall_seconds = 0.0;  ///< host section only
};

/// The campaign-level JSON artifact (see Campaign::to_json for the shape).
std::string campaign_json(const CampaignArtifacts& a, bool include_host_stats);

/// The deterministic campaign-health document (see Campaign::health_json).
std::string campaign_health_json(const CampaignArtifacts& a,
                                 bool include_host_stats);

/// Appends the failure and SLO manifests -- one merged-report entry per
/// failed / SLO-breaching run, folded in run-index order -- to `report`.
void append_campaign_manifests(const std::vector<RunResult>& results,
                               std::size_t reps, const SloGate& slo,
                               Report& report);

}  // namespace mts::sim
