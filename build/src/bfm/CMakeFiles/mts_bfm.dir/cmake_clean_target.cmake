file(REMOVE_RECURSE
  "libmts_bfm.a"
)
