#include "lip/micropipeline.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "gates/netlist.hpp"

namespace mts::lip {
namespace {

struct Fixture {
  sim::Simulation sim{1};
  gates::DelayModel dm = gates::DelayModel::hp06();
  gates::Netlist nl{sim, "t"};
  sim::Wire& in_req = nl.wire("in_req");
  sim::Wire& in_ack = nl.wire("in_ack");
  sim::Word& in_data = nl.word("in_data");
  sim::Wire& out_req = nl.wire("out_req");
  sim::Wire& out_ack = nl.wire("out_ack");
  sim::Word& out_data = nl.word("out_data");
  bfm::Scoreboard sb{sim, "sb"};
};

TEST(Micropipeline, SingleStagePassesOnePacket) {
  Fixture f;
  Micropipeline mp(f.sim, "mp", 1, f.in_req, f.in_ack, f.in_data, f.out_req,
                   f.out_ack, f.out_data, f.dm);
  bfm::AsyncPutDriver put(f.sim, "put", f.in_req, f.in_ack, f.in_data, f.dm,
                          bfm::AsyncPutDriver::kManual, 0xFF, &f.sb);
  f.sim.sched().at(1000, [&] { put.issue_one(); });
  f.sim.run_until(50'000);
  EXPECT_TRUE(f.out_req.read());
  EXPECT_EQ(f.out_data.read(), 1u);
  EXPECT_EQ(mp.occupancy(), 1u);

  // Downstream accepts: 4-phase completes, stage drains.
  f.out_ack.set(true);
  f.sim.run_until(60'000);
  EXPECT_FALSE(f.out_req.read());
  f.out_ack.set(false);
  f.sim.run_until(70'000);
  EXPECT_EQ(mp.occupancy(), 0u);
}

TEST(Micropipeline, ChainFillsWhenBlocked) {
  Fixture f;
  Micropipeline mp(f.sim, "mp", 4, f.in_req, f.in_ack, f.in_data, f.out_req,
                   f.out_ack, f.out_data, f.dm);
  bfm::AsyncPutDriver put(f.sim, "put", f.in_req, f.in_ack, f.in_data, f.dm, 0,
                          0xFF, &f.sb);
  // Nobody acknowledges the output: every stage fills, then input stalls.
  f.sim.run_until(200'000);
  EXPECT_EQ(mp.occupancy(), 4u);
  EXPECT_EQ(put.completed(), 4u);
  EXPECT_TRUE(f.in_req.read());  // fifth handshake pending
}

TEST(Micropipeline, StreamsInOrder) {
  Fixture f;
  Micropipeline mp(f.sim, "mp", 3, f.in_req, f.in_ack, f.in_data, f.out_req,
                   f.out_ack, f.out_data, f.dm);
  bfm::AsyncPutDriver put(f.sim, "put", f.in_req, f.in_ack, f.in_data, f.dm, 0,
                          0xFF, &f.sb);
  // The micropipeline output is push-style: acknowledge each req_out after
  // checking the bundled data.
  std::uint64_t received = 0;
  f.out_req.on_change([&](bool, bool now) {
    if (now) {
      f.sb.pop_check(f.out_data.read());
      ++received;
      f.out_ack.write(true, 100, sim::DelayKind::kTransport);
    } else {
      f.out_ack.write(false, 100, sim::DelayKind::kTransport);
    }
  });
  f.sim.run_until(2'000'000);
  EXPECT_GT(put.completed(), 100u);
  EXPECT_GT(received, 100u);
  EXPECT_EQ(f.sb.errors(), 0u);
}

TEST(Micropipeline, ZeroStagesRejected) {
  Fixture f;
  EXPECT_THROW(Micropipeline(f.sim, "mp", 0, f.in_req, f.in_ack, f.in_data,
                             f.out_req, f.out_ack, f.out_data, f.dm),
               ConfigError);
}

TEST(Micropipeline, LongerChainsAddLatencyNotThroughputLoss) {
  // Forward a burst through 2- and 8-stage pipelines with an eager
  // consumer; per-packet cycle time at the input should not degrade with
  // length (the latency-insensitivity property for the async segment).
  auto run = [](unsigned stages) {
    Fixture f;
    Micropipeline mp(f.sim, "mp", stages, f.in_req, f.in_ack, f.in_data,
                     f.out_req, f.out_ack, f.out_data, f.dm);
    bfm::AsyncPutDriver put(f.sim, "put", f.in_req, f.in_ack, f.in_data, f.dm,
                            0, 0xFF, &f.sb);
    // Eager push-consumer on the output handshake.
    f.out_req.on_change([&](bool, bool now) {
      if (now) {
        f.sb.pop_check(f.out_data.read());
        f.out_ack.write(true, 100, sim::DelayKind::kTransport);
      } else {
        f.out_ack.write(false, 100, sim::DelayKind::kTransport);
      }
    });
    f.sim.run_until(3'000'000);
    EXPECT_EQ(f.sb.errors(), 0u);
    return put.completed();
  };
  const auto short_chain = run(2);
  const auto long_chain = run(8);
  EXPECT_GT(short_chain, 200u);
  // Identical stage design: throughput within 10%.
  EXPECT_NEAR(static_cast<double>(long_chain), static_cast<double>(short_chain),
              0.1 * static_cast<double>(short_chain));
}

}  // namespace
}  // namespace mts::lip
