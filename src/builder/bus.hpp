// Multi-drop shared bus with round-robin arbitration for the generated
// arbitrated-bus topology.
//
// Synchronous LI component: each producer input has a 1-deep capture
// register with registered stop back-pressure; each consumer output has a
// 1-deep hold register drained under the LI convention. One bus grant per
// cycle: a round-robin arbiter scans the occupied input registers and moves
// the first packet whose destination output (PacketFormat dest = output
// index) is free -- the single shared transport resource that makes it a
// bus rather than a crossbar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/delay_model.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::builder {

class BusFabric {
 public:
  struct InPort {
    sim::Word* data;
    sim::Wire* valid;
    sim::Wire* stop;  ///< driven by the bus (back-pressure out)
  };
  struct OutPort {
    sim::Word* data;
    sim::Wire* valid;
    sim::Wire* stop;  ///< read by the bus (downstream back-pressure)
  };

  BusFabric(sim::Simulation& sim, std::string name, sim::Wire& clk,
            std::vector<InPort> inputs, std::vector<OutPort> outputs,
            const gates::DelayModel& dm);

  BusFabric(const BusFabric&) = delete;
  BusFabric& operator=(const BusFabric&) = delete;

  std::uint64_t granted() const noexcept { return granted_; }
  /// Packets addressed past the last output (dropped).
  std::uint64_t misroutes() const noexcept { return misroutes_; }
  unsigned occupancy() const;

 private:
  void on_edge();

  sim::Simulation& sim_;
  std::string name_;
  sim::Time clk_to_q_;
  std::vector<InPort> in_;
  std::vector<OutPort> out_;

  std::vector<std::uint64_t> capture_;  ///< per input, 1-deep
  std::vector<bool> capture_full_;
  std::vector<bool> prev_stop_;
  std::vector<std::uint64_t> held_;     ///< per output, 1-deep
  std::vector<bool> held_full_;
  std::size_t rr_ = 0;                  ///< arbiter scan start
  std::uint64_t granted_ = 0;
  std::uint64_t misroutes_ = 0;
};

}  // namespace mts::builder
