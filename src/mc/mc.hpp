// Umbrella header for the explicit-state model checker (ARCHITECTURE.md
// section 11): product model, search, differential net oracle, concrete
// replay, and the seeded mutant set.
#pragma once

#include "mc/checker.hpp"      // IWYU pragma: export
#include "mc/mutations.hpp"    // IWYU pragma: export
#include "mc/net_model.hpp"    // IWYU pragma: export
#include "mc/property.hpp"     // IWYU pragma: export
#include "mc/replay.hpp"       // IWYU pragma: export
#include "mc/ring_model.hpp"   // IWYU pragma: export
#include "mc/state_store.hpp"  // IWYU pragma: export
