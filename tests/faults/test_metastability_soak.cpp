// Metastability soak: the paper's robustness claim as a falsifiable
// experiment.
//
// A MetaFault stretches the susceptibility window and resolution tau of
// every synchronizer *front* stage ("Sync.ff0"), accelerating the rare
// events the two-parameter MTBF model rates until they are observable in a
// bounded run. With a depth-1 synchronizer the late-settling flag reaches
// the put/get controllers mid-cycle, glitches the we/re pulses and corrupts
// the FIFO state (scoreboard mismatches, overflow, underflow). With the
// paper's depth-2 (or deeper) chain the same injected stress -- same seed,
// same accelerated front-stage distribution -- is filtered by the healthy
// rear stages and the run stays clean. The depth-1 escape *rate* is also
// checked against the analytic sync::mtbf_seconds prediction (order of
// magnitude: the soak is a short run of a Poisson process).
//
// Seed override: MTS_FAULT_SEED=<n> (the nightly CI job sets one derived
// from the date). Failures print the FaultPlan and a one-line repro.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <iostream>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "sim/campaign.hpp"
#include "sim/fault.hpp"
#include "sync/clock.hpp"
#include "sync/mtbf.hpp"

#include "fault_test_util.hpp"

namespace mts {
namespace {

using sim::Time;

// Acceleration parameters: chosen so the depth-1 run expects tens of
// escapes (statistically solid) while the depth-2 run expects none (the
// rear stage runs at nominal tau, so a front escape would additionally
// need a nominal-tau escape -- probability ~exp(-slack/tau) ~ 1e-15).
constexpr double kWindowScale = 4.0;   // front-stage window: 100ps -> 400ps
constexpr double kTauScale = 15.0;     // front-stage tau: 80ps -> 1200ps
constexpr unsigned kSoakCycles = 6000; // put-clock cycles per run

struct SoakResult {
  std::uint64_t samples = 0;      // front-stage in-window samples
  std::uint64_t escapes = 0;      // resolutions past the slack threshold
  std::uint64_t sb_errors = 0;
  std::uint64_t overflow = 0;
  std::uint64_t underflow = 0;
  std::uint64_t dequeued = 0;
  double elapsed_sec = 0;         // simulated seconds
  double f_full = 0;              // measured raw-detector toggle rates (Hz)
  double f_ne = 0;
  double f_oe = 0;
  Time put_period = 0;
  Time get_period = 0;
  std::string plan_desc;

  std::uint64_t corruption() const { return sb_errors + overflow + underflow; }
};

SoakResult run_soak(sim::Simulation& sim, unsigned depth,
                    std::uint64_t seed) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  cfg.sync.depth = depth;
  cfg.sync.mode = sync::MetaMode::kStochastic;

  // Reseed with the soak's own (MTS_FAULT_SEED-overridable) seed: the run
  // is bit-identical to the historical standalone-Simulation version, the
  // campaign only contributes arena reuse and parallel placement.
  sim.reset(seed);
  // Generous, incommensurate periods: protocol timing is comfortable and
  // the domains' relative phase precesses, so raw-flag transitions sweep
  // uniformly across the receiving clocks' susceptibility windows.
  const Time base = fifo::SyncPutSide::min_period(cfg) * 2;
  const Time pp = base;
  const Time gp = base * 107 / 97 + 3;
  sync::Clock cp(sim, "clk_put", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "clk_get",
                 {gp, 4 * pp + static_cast<Time>(seed % gp), 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());

  // Escape thresholds: the per-stage resolution slack of the receiving
  // clock (mtbf.hpp's t_r). fullSync is clocked by clk_put, ne/oe by
  // clk_get; register the specific site first (first match wins).
  sim::FaultPlan plan(seed);
  const sim::MetaFault front{kWindowScale, kTauScale, 0.5,
                             sync::stage_slack({1, pp, 0, cfg.dm})};
  sim::MetaFault front_get = front;
  front_get.escape_threshold = sync::stage_slack({1, gp, 0, cfg.dm});
  plan.inject_meta("fullSync.ff0", front);
  plan.inject_meta("Sync.ff0", front_get);
  sim.arm_faults(&plan);

  // Raw-flag toggle counters give the measured f_data for the MTBF model.
  std::uint64_t tog_full = 0, tog_ne = 0, tog_oe = 0;
  dut.full_raw().on_change([&tog_full](bool, bool) { ++tog_full; });
  dut.ne_raw().on_change([&tog_ne](bool, bool) { ++tog_ne; });
  dut.oe_raw().on_change([&tog_oe](bool, bool) { ++tog_oe; });

  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {0.85, 1});

  const Time t0 = 4 * pp;
  const Time t1 = t0 + kSoakCycles * pp;
  sim.run_until(t1);

  SoakResult r;
  r.samples = plan.count("meta.sample");
  r.escapes = plan.count("meta.escape");
  r.sb_errors = sb.errors();
  r.overflow = dut.overflow_count();
  r.underflow = dut.underflow_count();
  r.dequeued = gm.dequeued();
  r.elapsed_sec = static_cast<double>(t1 - t0) * 1e-12;
  r.f_full = static_cast<double>(tog_full) / r.elapsed_sec;
  r.f_ne = static_cast<double>(tog_ne) / r.elapsed_sec;
  r.f_oe = static_cast<double>(tog_oe) / r.elapsed_sec;
  r.put_period = pp;
  r.get_period = gp;
  r.plan_desc = plan.describe();
  // The plan and every component above are about to leave scope; disarm so
  // the Simulation never holds a dangling plan pointer between runs.
  sim.arm_faults(nullptr);
  return r;
}

/// The three accelerated soaks (depths 1, 2, 3) as one sim::Campaign,
/// executed once and shared by the per-depth TESTs below. Config index c
/// maps to depth c+1; every run reseeds with the common fault seed, so the
/// depth-2/3 runs see the exact same injected front-stage stress as the
/// depth-1 run -- that sameness IS the experiment.
struct SoakCampaign {
  std::array<SoakResult, 3> by_depth;  // [depth-1]
  std::size_t failed = 0;
  std::string first_error;
};

const SoakCampaign& soak_campaign() {
  static const SoakCampaign shared = [] {
    SoakCampaign out;
    const std::uint64_t seed = faulttest::fault_seed(0x1EAF);
    sim::CampaignOptions opt;
    opt.workers = faulttest::campaign_jobs();
    opt.seed = 0x1EAF;
    sim::Campaign campaign(3, 1, opt);
    campaign.run([&out, seed](sim::CampaignContext& ctx) {
      const unsigned depth = static_cast<unsigned>(ctx.spec().config) + 1;
      out.by_depth[ctx.spec().config] = run_soak(ctx.sim(), depth, seed);
      ctx.set("escapes",
              static_cast<double>(out.by_depth[ctx.spec().config].escapes));
    });
    out.failed = campaign.failed();
    for (const sim::RunResult& r : campaign.results()) {
      if (!r.ok && out.first_error.empty()) out.first_error = r.error;
    }
    return out;
  }();
  return shared;
}

/// Expected escape count over the soak from the analytic model, using the
/// *injected* (accelerated) window and tau and the *measured* flag toggle
/// rates. The Etdff's nominal susceptibility window is its setup time.
double predicted_escapes(const SoakResult& r) {
  gates::DelayModel dm = gates::DelayModel::hp06();
  dm.meta_window =
      static_cast<Time>(static_cast<double>(dm.flop.setup) * kWindowScale);
  dm.meta_tau =
      static_cast<Time>(static_cast<double>(dm.meta_tau) * kTauScale);
  double rate = 0;  // failures per second, summed over the three chains
  rate += 1.0 / sync::mtbf_seconds({1, r.put_period, r.f_full, dm});
  rate += 1.0 / sync::mtbf_seconds({1, r.get_period, r.f_ne, dm});
  rate += 1.0 / sync::mtbf_seconds({1, r.get_period, r.f_oe, dm});
  return rate * r.elapsed_sec;
}

TEST(MetastabilitySoak, DepthOneCorruptsAndEscapeRateMatchesMtbfModel) {
  const std::uint64_t seed = faulttest::fault_seed(0x1EAF);
  ASSERT_EQ(soak_campaign().failed, 0u) << soak_campaign().first_error;
  const SoakResult& r = soak_campaign().by_depth[0];
  const double pred = predicted_escapes(r);
  const std::string diag =
      r.plan_desc + "\nsamples=" + std::to_string(r.samples) +
      " escapes=" + std::to_string(r.escapes) +
      " predicted=" + std::to_string(pred) +
      " sb_errors=" + std::to_string(r.sb_errors) +
      " overflow=" + std::to_string(r.overflow) +
      " underflow=" + std::to_string(r.underflow) +
      " dequeued=" + std::to_string(r.dequeued) + "\n" +
      faulttest::repro_hint("MetastabilitySoak.*", seed);
  std::cout << "[depth 1] " << diag << "\n";

  // The run still moves data (it is degraded, not deadlocked)...
  EXPECT_GT(r.dequeued, kSoakCycles / 8) << diag;
  // ...but a depth-1 synchronizer lets accelerated metastability through:
  // the scoreboard/occupancy checkers catch real corruption.
  EXPECT_GT(r.corruption(), 0u) << diag;
  // The escape rate tracks the analytic MTBF model. Both sides of the
  // bound matter: >pred/10 means the injection really runs at the modelled
  // rate, <pred*10 means it does not over-fire (e.g. no same-domain flag
  // transitions parked inside the window).
  ASSERT_GE(r.escapes, 5u) << diag;
  EXPECT_GT(static_cast<double>(r.escapes), pred / 10.0) << diag;
  EXPECT_LT(static_cast<double>(r.escapes), pred * 10.0) << diag;
}

TEST(MetastabilitySoak, DepthTwoStaysCleanUnderTheSameStress) {
  const std::uint64_t seed = faulttest::fault_seed(0x1EAF);
  ASSERT_EQ(soak_campaign().failed, 0u) << soak_campaign().first_error;
  const SoakResult& r = soak_campaign().by_depth[1];
  const std::string diag = r.plan_desc + "\n" +
                           faulttest::repro_hint("MetastabilitySoak.*", seed);
  std::cout << "[depth 2] samples=" << r.samples << " escapes=" << r.escapes
            << " corruption=" << r.corruption() << " dequeued=" << r.dequeued
            << "\n";
  // The front stage is stressed exactly as in the depth-1 run...
  EXPECT_GT(r.samples, 20u) << diag;
  // ...but the nominal-tau rear stage filters every late resolution: no
  // escapes are even *possible* to record (the threshold applies to the
  // final stage) and, decisively, nothing downstream corrupts.
  EXPECT_EQ(r.escapes, 0u) << diag;
  EXPECT_EQ(r.corruption(), 0u) << diag;
  EXPECT_GT(r.dequeued, kSoakCycles / 4) << diag;
}

TEST(MetastabilitySoak, DepthThreeStaysCleanUnderTheSameStress) {
  const std::uint64_t seed = faulttest::fault_seed(0x1EAF);
  ASSERT_EQ(soak_campaign().failed, 0u) << soak_campaign().first_error;
  const SoakResult& r = soak_campaign().by_depth[2];
  const std::string diag = r.plan_desc + "\n" +
                           faulttest::repro_hint("MetastabilitySoak.*", seed);
  EXPECT_GT(r.samples, 20u) << diag;
  EXPECT_EQ(r.escapes, 0u) << diag;
  EXPECT_EQ(r.corruption(), 0u) << diag;
  EXPECT_GT(r.dequeued, kSoakCycles / 4) << diag;
}

TEST(MetastabilitySoak, UnarmedStochasticDepthTwoBaselineIsClean) {
  // Nominal tau, no plan: the paper's configuration passes the same soak
  // (this is the control run for the accelerated experiments above).
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  cfg.sync.depth = 2;
  cfg.sync.mode = sync::MetaMode::kStochastic;
  sim::Simulation sim(faulttest::fault_seed(0x1EAF));
  const Time pp = fifo::SyncPutSide::min_period(cfg) * 2;
  const Time gp = pp * 107 / 97 + 3;
  sync::Clock cp(sim, "clk_put", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "clk_get", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {0.85, 1});
  sim.run_until(4 * pp + 2000 * pp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dut.overflow_count(), 0u);
  EXPECT_EQ(dut.underflow_count(), 0u);
}

}  // namespace
}  // namespace mts
