#include "fifo/cell_parts.hpp"

#include <string>
#include <vector>

#include "ctrl/specs.hpp"
#include "gates/celement.hpp"
#include "gates/combinational.hpp"
#include "gates/latch.hpp"

namespace mts::fifo {

namespace {
std::string cell_name(unsigned index, const char* leaf) {
  return "c" + std::to_string(index) + "." + leaf;
}
}  // namespace

// The environment's req_put/req_get are registered outputs: they settle
// clk-to-q after the edge (the BFM drivers honour this). The matched token
// delay therefore only needs to cover the controller gate + broadcast
// response, plus one gate of margin. Residual overlaps narrower than the
// we/re AND-gate delay are absorbed by its inertial behaviour.
sim::Time put_token_match_delay(const FifoConfig& cfg) {
  const gates::DelayModel& dm = cfg.dm;
  const sim::Time bcast = dm.broadcast(cfg.capacity, cfg.width + 2);
  if (cfg.controller == ControllerKind::kFifo) {
    return dm.gate(3) + bcast + dm.gate(1);
  }
  // Relay station: req_put is not a control input; the enable only follows
  // full_s through the inverter and broadcast.
  return dm.gate(1) + bcast + dm.gate(1);
}

sim::Time get_token_match_delay(const FifoConfig& cfg) {
  const gates::DelayModel& dm = cfg.dm;
  const sim::Time bcast = dm.broadcast(cfg.capacity, cfg.width + 2);
  if (cfg.controller == ControllerKind::kFifo) {
    return dm.gate(3) + bcast + dm.gate(1);
  }
  // Relay station: stopIn responses go through the NOR controller.
  return dm.gate(2, 2) + bcast + dm.gate(1);
}

SyncPutPart::SyncPutPart(gates::Netlist& nl, unsigned index, sim::Wire& clk,
                         sim::Wire& en_broadcast, sim::Wire& tok_in,
                         sim::Wire& tok_out, sim::Word& data_put,
                         sim::Wire& req_put, const FifoConfig& cfg,
                         gates::TimingDomain* domain, bool initial_token) {
  // Put-token ring stage: shifts on every enabled CLK_put edge.
  nl.add<gates::Etdff>(nl.sim(), nl.qualified(cell_name(index, "ptokff")), clk,
                       tok_in, &en_broadcast, tok_out, cfg.dm.flop, domain,
                       initial_token);

  // Token output buffering matched to the enable network (see
  // put_token_match_delay): the freshly arrived token must not outrun the
  // enable's deassertion after the edge.
  sim::Wire& tok_matched = gates::make_delay(
      nl, cell_name(index, "ptokm"), tok_out, put_token_match_delay(cfg));

  // we_i = ptok_i & en_put; drives REG enable, the v flop enable and the DV
  // set input (fanout 3).
  we_ = &gates::make_gate(nl, cell_name(index, "we"), gates::GateOp::kAnd,
                          {&tok_matched, &en_broadcast}, cfg.dm, 3);

  reg_q_ = &nl.word(cell_name(index, "reg"));
  nl.add<gates::WordRegister>(nl.sim(), nl.qualified(cell_name(index, "regff")),
                              clk, data_put, we_, *reg_q_, cfg.dm.flop, domain);

  // Validity bit: latches req_put alongside the data (Section 3.1: "latch
  // the data item and also the data validity bit (which is req_put)").
  v_q_ = &nl.wire(cell_name(index, "v"));
  nl.add<gates::Etdff>(nl.sim(), nl.qualified(cell_name(index, "vff")), clk,
                       req_put, we_, *v_q_, cfg.dm.flop, domain);
}

SyncGetPart::SyncGetPart(gates::Netlist& nl, unsigned index, sim::Wire& clk,
                         sim::Wire& en_broadcast, sim::Wire& tok_in,
                         sim::Wire& tok_out, const FifoConfig& cfg,
                         gates::TimingDomain* domain, bool initial_token) {
  nl.add<gates::Etdff>(nl.sim(), nl.qualified(cell_name(index, "gtokff")), clk,
                       tok_in, &en_broadcast, tok_out, cfg.dm.flop, domain,
                       initial_token);
  // Matched token buffering, as on the put side.
  sim::Wire& tok_matched = gates::make_delay(
      nl, cell_name(index, "gtokm"), tok_out, get_token_match_delay(cfg));
  // re_i = gtok_i & en_get; drives the data/valid tri-state enables and the
  // DV reset input (fanout 3).
  re_ = &gates::make_gate(nl, cell_name(index, "re"), gates::GateOp::kAnd,
                          {&tok_matched, &en_broadcast}, cfg.dm, 3);
}

AsyncPutPart::AsyncPutPart(gates::Netlist& nl, unsigned index,
                           sim::Wire& req_broadcast, sim::Word& put_data,
                           sim::Wire& we1, sim::Wire& e_i, sim::Wire& we_out,
                           const FifoConfig& cfg, bool initial_token) {
  ptok_ = &nl.wire(cell_name(index, "ptok"), initial_token);

  // Asymmetric C-element (paper footnote 1): we+ requires put_req & ptok &
  // e_i; we- requires only put_req-.
  sim::Wire& we_raw = nl.wire(cell_name(index, "we_raw"));
  nl.add<gates::CElement>(nl.sim(), nl.qualified(cell_name(index, "weC")),
                          std::vector<sim::Wire*>{&req_broadcast},
                          std::vector<sim::Wire*>{ptok_, &e_i}, we_raw,
                          cfg.dm.celement(3), false);

  // we drives a W-bit latch enable, the DV, the ack tree and the next
  // cell's we1: model the load as an intra-cell broadcast.
  gates::gate_into(nl, cell_name(index, "weBuf"), gates::GateOp::kBuf, {&we_raw},
                   we_out, cfg.dm.broadcast(1, cfg.width));
  we_ = &we_out;

  // REG write port: transparent while we is high; the bundled-data
  // constraint guarantees put_data is stable for that whole interval.
  reg_q_ = &nl.word(cell_name(index, "reg"));
  nl.add<gates::WordLatch>(nl.sim(), nl.qualified(cell_name(index, "reglat")),
                           put_data, *we_, *reg_q_, cfg.dm);

  // ObtainPutToken burst-mode machine (Fig. 10a).
  nl.add<ctrl::BurstModeMachine>(
      nl.sim(), nl.qualified(cell_name(index, "opt")), ctrl::opt_spec(),
      std::vector<sim::Wire*>{&we1, we_}, std::vector<sim::Wire*>{ptok_},
      cfg.dm.gate(2),
      initial_token ? ctrl::kOptStateHolding : ctrl::kOptStateIdle);
}

AsyncGetPart::AsyncGetPart(gates::Netlist& nl, unsigned index,
                           sim::Wire& req_broadcast, sim::Wire& re1,
                           sim::Wire& f_i, sim::Wire& re_out,
                           const FifoConfig& cfg, bool initial_token) {
  gtok_ = &nl.wire(cell_name(index, "gtok"), initial_token);

  sim::Wire& re_raw = nl.wire(cell_name(index, "re_raw"));
  nl.add<gates::CElement>(nl.sim(), nl.qualified(cell_name(index, "reC")),
                          std::vector<sim::Wire*>{&req_broadcast},
                          std::vector<sim::Wire*>{gtok_, &f_i}, re_raw,
                          cfg.dm.celement(3), false);

  // re drives the W-bit tri-state driver enable, the DV, the ack tree and
  // the next cell's re1.
  gates::gate_into(nl, cell_name(index, "reBuf"), gates::GateOp::kBuf, {&re_raw},
                   re_out, cfg.dm.broadcast(1, cfg.width));
  re_ = &re_out;

  nl.add<ctrl::BurstModeMachine>(
      nl.sim(), nl.qualified(cell_name(index, "ogt")), ctrl::opt_spec(),
      std::vector<sim::Wire*>{&re1, re_}, std::vector<sim::Wire*>{gtok_},
      cfg.dm.gate(2),
      initial_token ? ctrl::kOptStateHolding : ctrl::kOptStateIdle);
}

DvController::DvController(gates::Netlist& nl, unsigned index,
                           const ctrl::PetriNet& net, sim::Wire& we,
                           sim::Wire& re, sim::Time output_delay) {
  e_ = &nl.wire(cell_name(index, "e"), true);
  f_ = &nl.wire(cell_name(index, "f"), false);
  nl.add<ctrl::PetriEngine>(nl.sim(), nl.qualified(cell_name(index, "dv")), net,
                            std::vector<sim::Wire*>{&we, &re},
                            std::vector<sim::Wire*>{e_, f_}, output_delay);
}

}  // namespace mts::fifo
