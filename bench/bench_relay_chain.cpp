// Latency-insensitivity experiment (Figs. 11a / 14): steady-state
// throughput of the full mixed-timing links as a function of relay-chain
// length. The paper's central claim for relay stations is that breaking a
// long wire into clock-cycle segments preserves throughput; only the
// pipeline-fill latency grows.
//
// Usage: bench_relay_chain [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "lip/lip.hpp"
#include "metrics/table.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

struct ChainResult {
  double throughput;  // valid packets per consumer clock cycle
  double fill_latency_cycles;
  bool clean;
};

ChainResult run_mixed_clock(unsigned len) {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  sim::Simulation sim(1);
  const Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
  const Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 997, 0.5, 0});
  lip::MixedClockLink link(sim, "link", cfg, cp.out(), cg.out(), len, len);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", cp.out(), link.data_in(), link.valid_in(),
                    link.stop_out(), cfg.dm, 1.0, 0xFF, sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, 0.0, sb);

  // Steady-state throughput over a late window (after the pipeline fills).
  const Time start = 4 * pp;
  sim.run_until(start + 400 * pp);
  const auto before = sink.received_valid();
  const Time t0 = sim.now();
  sim.run_until(t0 + 500 * gp);
  const double tput =
      static_cast<double>(sink.received_valid() - before) / 500.0;

  ChainResult r{tput, 0.0, sb.errors() == 0};

  // Dedicated fill-latency measurement.
  {
    sim::Simulation sim2(1);
    sync::Clock cp2(sim2, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg2(sim2, "cg", {gp, 4 * pp + 997, 0.5, 0});
    lip::MixedClockLink link2(sim2, "link", cfg, cp2.out(), cg2.out(), len, len);
    bfm::Scoreboard sb2(sim2, "sb");
    bfm::RsSource src2(sim2, "src", cp2.out(), link2.data_in(),
                       link2.valid_in(), link2.stop_out(), cfg.dm, 1.0, 0xFF,
                       sb2);
    bfm::RsSink sink2(sim2, "sink", cg2.out(), link2.data_out(),
                      link2.valid_out(), link2.stop_in(), cfg.dm, 0.0, sb2);
    sim2.run_until(4 * pp + 300 * pp);
    if (sink2.received_valid() > 0) {
      r.fill_latency_cycles =
          static_cast<double>(sink2.last_receive_time() -
                              static_cast<Time>(4 * pp)) /
          static_cast<double>(gp) -
          static_cast<double>(sink2.received_valid() - 1);
    }
  }
  return r;
}

ChainResult run_async_sync(unsigned ars_len, unsigned srs_len) {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  sim::Simulation sim(1);
  const Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  lip::AsyncSyncLink link(sim, "link", cfg, cg.out(), ars_len, srs_len);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", link.put_req(), link.put_ack(),
                          link.put_data(), cfg.dm, 0, 0xFF, &sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, 0.0, sb);

  sim.run_until(4 * gp + 300 * gp);
  const auto before = sink.received_valid();
  const Time t0 = sim.now();
  sim.run_until(t0 + 500 * gp);
  return ChainResult{
      static_cast<double>(sink.received_valid() - before) / 500.0, 0.0,
      sb.errors() == 0};
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }

  std::printf("Latency-insensitivity (Fig. 11a topology): SRS chains of "
              "length L on each side of an MCRS;\nsteady-state throughput "
              "must be independent of L while fill latency grows ~2 cycles "
              "per station.\n\n");
  metrics::Table t1({"L (each side)", "throughput (pkt/cycle)",
                     "fill latency (cycles)", "order ok"});
  for (unsigned len : {0u, 1u, 2u, 4u, 8u, 16u}) {
    const ChainResult r = run_mixed_clock(len);
    t1.add_row({std::to_string(len), metrics::fmt(r.throughput, 3),
                metrics::fmt(r.fill_latency_cycles, 1),
                r.clean ? "yes" : "NO"});
  }
  std::fputs(csv ? t1.to_csv().c_str() : t1.to_string().c_str(), stdout);

  std::printf("\nFig. 14 topology: ARS (micropipeline) chain -> ASRS -> SRS "
              "chain.\n\n");
  metrics::Table t2({"ARS", "SRS", "throughput (pkt/cycle)", "order ok"});
  for (unsigned len : {0u, 2u, 4u, 8u}) {
    const ChainResult r = run_async_sync(len, len == 0 ? 1 : len);
    t2.add_row({std::to_string(len), std::to_string(len == 0 ? 1 : len),
                metrics::fmt(r.throughput, 3), r.clean ? "yes" : "NO"});
  }
  std::fputs(csv ? t2.to_csv().c_str() : t2.to_string().c_str(), stdout);
  return 0;
}
