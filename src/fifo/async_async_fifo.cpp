#include "fifo/async_async_fifo.hpp"

#include "ctrl/specs.hpp"
#include "gates/combinational.hpp"
#include "gates/tristate.hpp"
#include "sim/error.hpp"

namespace mts::fifo {

AsyncAsyncFifo::AsyncAsyncFifo(sim::Simulation& sim, const std::string& name,
                               const FifoConfig& cfg)
    : sim_(sim), cfg_(cfg), nl_(sim, name) {
  cfg_.validate();
  if (cfg_.controller != ControllerKind::kFifo) {
    throw ConfigError("AsyncAsyncFifo: asynchronous relay chains use "
                      "micropipelines (lip::Micropipeline), not this FIFO");
  }
  const unsigned n = cfg_.capacity;
  const gates::DelayModel& dm = cfg_.dm;

  put_req_ = &nl_.wire("put_req");
  put_data_ = &nl_.word("put_data");
  get_req_ = &nl_.wire("get_req");
  get_data_ = &nl_.word("get_data");

  sim::Wire& put_req_b =
      gates::make_delay(nl_, "put_req_b", *put_req_, dm.broadcast(n, 1));
  sim::Wire& get_req_b =
      gates::make_delay(nl_, "get_req_b", *get_req_, dm.broadcast(n, 1));

  std::vector<sim::Wire*> we(n);
  std::vector<sim::Wire*> re(n);
  for (unsigned i = 0; i < n; ++i) {
    we[i] = &nl_.wire("c" + std::to_string(i) + ".we");
    re[i] = &nl_.wire("c" + std::to_string(i) + ".re");
  }

  auto& data_bus = nl_.add<gates::TristateBus<std::uint64_t>>(
      sim, nl_.qualified("get_data_bus"), *get_data_,
      dm.tristate_bus(n, cfg_.width));

  e_.resize(n);
  f_.resize(n);
  std::vector<sim::Wire*> put_acks;
  std::vector<sim::Wire*> get_acks;
  for (unsigned i = 0; i < n; ++i) {
    const std::string ci = "c" + std::to_string(i);
    e_[i] = &nl_.wire(ci + ".e", true);
    f_[i] = &nl_.wire(ci + ".f", false);

    auto& put_part = nl_.add<AsyncPutPart>(nl_, i, put_req_b, *put_data_,
                                           *we[(i + n - 1) % n], *e_[i], *we[i],
                                           cfg_, i == 0);
    nl_.add<AsyncGetPart>(nl_, i, get_req_b, *re[(i + n - 1) % n], *f_[i],
                          *re[i], cfg_, i == 0);

    nl_.add<ctrl::PetriEngine>(nl_.sim(), nl_.qualified(ci + ".dv"),
                               ctrl::dv_linear_net(),
                               std::vector<sim::Wire*>{we[i], re[i]},
                               std::vector<sim::Wire*>{e_[i], f_[i]},
                               dm.sr_latch);

    data_bus.attach_driver(*re[i], put_part.reg_q());
    put_acks.push_back(we[i]);
    get_acks.push_back(re[i]);

    sim::Wire* fw = f_[i];
    we[i]->on_rise([this, fw] {
      if (fw->read()) {
        ++overflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "overflow",
                          nl_.prefix() + ": put into a full cell");
      }
    });
    re[i]->on_rise([this, fw] {
      if (!fw->read()) {
        ++underflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "underflow",
                          nl_.prefix() + ": get from an empty cell");
      }
    });
  }

  sim::Wire& put_ack_tree = gates::make_or_tree(nl_, "putAckTree", put_acks, dm);
  put_ack_ = &gates::make_delay(nl_, "put_ack", put_ack_tree, dm.gate(2, 4));
  sim::Wire& get_ack_tree = gates::make_or_tree(nl_, "getAckTree", get_acks, dm);
  get_ack_ = &gates::make_delay(nl_, "get_ack", get_ack_tree,
                                dm.tristate_bus(n, cfg_.width));
}

unsigned AsyncAsyncFifo::occupancy() const {
  unsigned count = 0;
  for (const sim::Wire* f : f_) count += f->read() ? 1u : 0u;
  return count;
}

}  // namespace mts::fifo
