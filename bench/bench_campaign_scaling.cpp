// Campaign scaling: runs/sec of the shared FIFO-soak campaign workload
// (campaign_workload.hpp) at 1, 2, 4 and 8 workers, plus a determinism
// spot-check (the 4-worker campaign JSON must be byte-identical to the
// 1-worker one with host stats excluded).
//
// Writes BENCH_campaign.json (current directory). The speedup column is
// meaningful only when the host has cores to scale onto -- host_cores is
// recorded next to every number so a 1-core CI box reporting ~1.0x reads
// as what it is.
//
// Usage: bench_campaign_scaling [--smoke]
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "campaign_workload.hpp"

namespace {

using namespace mts;

/// The full campaign JSON (host stats excluded) for a worker count, for
/// the determinism check.
std::string campaign_doc(unsigned workers, std::size_t configs,
                         std::size_t reps, unsigned cycles) {
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 99;
  opt.capture_run_reports = true;
  sim::Campaign campaign(configs, reps, opt);
  campaign.run([cycles](sim::CampaignContext& ctx) {
    benchwork::fifo_soak_body(ctx, cycles);
  });
  return campaign.to_json(/*include_host_stats=*/false);
}

/// Campaign-health artifacts for a worker count: the same FIFO soak with
/// the engine telemetry sampler and a latency SLO armed. Returns
/// {health_json, merged timeline JSONL} -- both must be byte-identical
/// across worker counts (run-index-ordered folds).
struct HealthDoc {
  std::string health;
  std::string timeline;
};

HealthDoc campaign_health(unsigned workers, std::size_t configs,
                          std::size_t reps, unsigned cycles) {
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 99;
  opt.telemetry_interval = 50 * sim::kNanosecond;
  opt.telemetry_max_points = 512;
  opt.telemetry_window = 256;
  opt.slo.metric = "latency_ps";
  opt.slo.percentile = 0.99;
  opt.slo.budget = 1e9;  // generous: record worst, don't fail runs
  sim::Campaign campaign(configs, reps, opt);
  campaign.run([cycles](sim::CampaignContext& ctx) {
    benchwork::fifo_soak_body(ctx, cycles);
  });
  if (workers == 1) campaign.write_health_json("campaign_health.json");
  return HealthDoc{campaign.health_json(),
                   campaign.merged_timeline().to_jsonl()};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t configs = 3;
  const std::size_t reps = smoke ? 4 : 16;
  const unsigned cycles = smoke ? 150 : 400;
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::printf("campaign scaling: %zu runs of the shared FIFO soak "
              "(%u put cycles each), host_cores=%u\n\n",
              configs * reps, cycles, host_cores);
  std::printf("  %8s %14s %10s\n", "workers", "runs/sec", "speedup");

  const unsigned worker_counts[] = {1, 2, 4, 8};
  std::vector<double> rps;
  for (unsigned w : worker_counts) {
    rps.push_back(benchwork::measure_campaign_runs_per_sec(w, configs, reps,
                                                           cycles));
    std::printf("  %8u %14.1f %9.2fx\n", w, rps.back(), rps.back() / rps[0]);
  }

  const std::string doc1 = campaign_doc(1, configs, reps, cycles);
  const std::string doc4 = campaign_doc(4, configs, reps, cycles);
  const bool deterministic = doc1 == doc4;
  std::printf("\n4-worker vs 1-worker campaign JSON (host stats excluded): "
              "%s\n", deterministic ? "IDENTICAL" : "MISMATCH");

  // Streaming-telemetry determinism: per-run samplers + SLO verdicts armed,
  // health document and index-folded timeline byte-compared across worker
  // counts. Also leaves campaign_health.json behind (CI uploads it).
  const HealthDoc health1 = campaign_health(1, configs, reps, cycles);
  const HealthDoc health4 = campaign_health(4, configs, reps, cycles);
  const bool health_deterministic = health1.health == health4.health &&
                                    health1.timeline == health4.timeline;
  std::printf("4-worker vs 1-worker campaign_health.json + merged timeline: "
              "%s\n", health_deterministic ? "IDENTICAL" : "MISMATCH");

  FILE* f = std::fopen("BENCH_campaign.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "bench_campaign_scaling: cannot write BENCH_campaign.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"note\": \"sim::Campaign scaling on the shared FIFO-"
                  "soak workload; speedup is bounded by host_cores, so a "
                  "1-core host legitimately reports ~1.0x\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"runs\": %zu,\n", configs * reps);
  std::fprintf(f, "  \"cycles_per_run\": %u,\n", cycles);
  std::fprintf(f, "  \"runs_per_sec\": {");
  for (std::size_t i = 0; i < std::size(worker_counts); ++i) {
    std::fprintf(f, "%s\"%u\": %.1f", i == 0 ? "" : ", ", worker_counts[i],
                 rps[i]);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"speedup_4w_vs_1w\": %.2f,\n", rps[2] / rps[0]);
  std::fprintf(f, "  \"deterministic_4w_vs_1w\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"telemetry_health_deterministic_4w_vs_1w\": %s\n",
               health_deterministic ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_campaign.json and campaign_health.json\n");
  return deterministic && health_deterministic ? 0 : 1;
}
