// Unit tests for the FaultPlan container itself: site matching, the
// dedicated random stream, injection accounting, and the describe() record
// that failing fault tests print for reproduction.
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace mts::sim {
namespace {

TEST(FaultPlan, SubstringSiteMatching) {
  FaultPlan plan(1);
  plan.inject_meta("neSync", MetaFault{2.0, 3.0, 0.5, 0});
  EXPECT_NE(plan.meta("dut.get.neSync"), nullptr);
  EXPECT_NE(plan.meta("dut.get.neSync.ff0"), nullptr);
  EXPECT_EQ(plan.meta("dut.get.oeSync"), nullptr);
  EXPECT_EQ(plan.meta("dut.put.fullSync"), nullptr);
  EXPECT_EQ(plan.clock("clk_put"), nullptr);  // different kind, no match
}

TEST(FaultPlan, EmptySubstringMatchesEverySite) {
  FaultPlan plan(1);
  plan.inject_meta("", MetaFault{5.0, 10.0, 0.5, 100});
  const MetaFault* f = plan.meta("anything.at.all");
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->window_scale, 5.0);
  EXPECT_DOUBLE_EQ(f->tau_scale, 10.0);
  EXPECT_EQ(f->escape_threshold, 100);
}

TEST(FaultPlan, FirstRegisteredMatchWins) {
  FaultPlan plan(1);
  plan.inject_clock("clk_get", ClockFault{0, 1.5});
  plan.inject_clock("", ClockFault{0, 0.9});
  EXPECT_DOUBLE_EQ(plan.clock("clk_get")->drift, 1.5);
  EXPECT_DOUBLE_EQ(plan.clock("clk_put")->drift, 0.9);
}

TEST(FaultPlan, WidenedWindowScalesTheNominalWindow) {
  MetaFault f;
  f.window_scale = 4.0;
  EXPECT_EQ(f.widened_window(100), 400);
  MetaFault unit;  // default scale leaves the window untouched
  EXPECT_EQ(unit.widened_window(100), 100);
}

TEST(FaultPlan, RngIsSeededAndIndependentOfSimulation) {
  FaultPlan a(42), b(42), c(43);
  EXPECT_EQ(a.seed(), 42u);
  EXPECT_EQ(a.rng()(), b.rng()());  // same seed, same stream
  EXPECT_NE(a.rng()(), c.rng()());  // (overwhelmingly likely)

  // Drawing from the plan must not advance the simulation's stream.
  Simulation sim(7);
  const auto probe = sim.rng()();
  Simulation sim2(7);
  FaultPlan plan(99);
  sim2.arm_faults(&plan);
  for (int i = 0; i < 100; ++i) plan.rng()();
  EXPECT_EQ(sim2.rng()(), probe);
}

TEST(FaultPlan, ArmingIsVisibleThroughTheSimulation) {
  Simulation sim(1);
  EXPECT_EQ(sim.faults(), nullptr);
  FaultPlan plan(5);
  sim.arm_faults(&plan);
  EXPECT_EQ(sim.faults(), &plan);
  sim.arm_faults(nullptr);
  EXPECT_EQ(sim.faults(), nullptr);
}

TEST(FaultPlan, CountsInjectionEvents) {
  FaultPlan plan(1);
  EXPECT_EQ(plan.count("meta.escape"), 0u);
  plan.note("meta.escape");
  plan.note("meta.escape");
  plan.note("bundling.lag");
  EXPECT_EQ(plan.count("meta.escape"), 2u);
  EXPECT_EQ(plan.count("bundling.lag"), 1u);
  EXPECT_EQ(plan.count("clock.perturb"), 0u);
}

TEST(FaultPlan, DescribeRecordsSeedFaultsAndCounters) {
  FaultPlan plan(31337);
  plan.inject_meta("neSync", MetaFault{4.0, 8.0, 0.75, 2500});
  plan.inject_clock("clk_get", ClockFault{120, 1.25});
  plan.inject_bundling("put", BundlingFault{1800});
  plan.note("meta.escape");
  const std::string d = plan.describe();
  EXPECT_NE(d.find("31337"), std::string::npos);
  EXPECT_NE(d.find("neSync"), std::string::npos);
  EXPECT_NE(d.find("clk_get"), std::string::npos);
  EXPECT_NE(d.find("1800"), std::string::npos);
  EXPECT_NE(d.find("meta.escape"), std::string::npos);
}

}  // namespace
}  // namespace mts::sim
