// Analytic mean-time-between-failures for synchronizer chains.
//
// Classic two-parameter metastability model: a flop whose data changes
// inside the susceptibility window T_w enters metastability and resolves
// with time constant tau; the probability that it is still unresolved after
// slack t_r is exp(-t_r / tau). For a chain clocked with period T, each
// stage contributes t_r = T - t_setup - t_clk_to_q of resolution slack, so
//
//   MTBF = exp(depth * t_r / tau) / (T_w * f_clk * f_data)
//
// This quantifies the paper's "arbitrarily robust with regard to
// metastability" claim: each added stage multiplies MTBF by exp(t_r/tau).
#pragma once

#include "gates/delay_model.hpp"
#include "sim/time.hpp"

namespace mts::sync {

struct MtbfParams {
  unsigned depth = 2;          ///< number of synchronizer stages (>= 1)
  sim::Time clock_period = 0;  ///< receiving clock period (ps)
  double data_rate_hz = 0;     ///< average toggle rate of the async input
  gates::DelayModel dm;        ///< supplies tau, window, flop timing
};

/// Mean time between synchronization failures, in seconds.
/// Returns +infinity when the data rate is zero.
double mtbf_seconds(const MtbfParams& p);

/// Resolution slack per stage, in ps (0 when the clock is too fast for the
/// flop: the synchronizer provides no protection at all).
sim::Time stage_slack(const MtbfParams& p);

}  // namespace mts::sync
